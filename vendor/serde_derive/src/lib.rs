//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace actually serializes values — the `#[derive(Serialize,
//! Deserialize)]` attributes exist so downstream consumers *could* wire in
//! real serde. The stub derives therefore accept the same surface syntax
//! (including `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` with optional `#[serde(...)]` helper
/// attributes and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` with optional `#[serde(...)]` helper
/// attributes and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

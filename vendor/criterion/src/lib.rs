//! Offline stub of `criterion`.
//!
//! Implements the subset of the Criterion.rs API the workspace benches use
//! — groups, throughput, `iter`/`iter_batched`, `BenchmarkId` — with a
//! simple wall-clock measurement loop (fixed warm-up, then timed samples)
//! and a plain-text report. No HTML, no statistics beyond mean/median/p95.
//!
//! Environment knobs:
//! * `KEPLER_BENCH_MEASURE_MS` — per-benchmark measurement budget
//!   (default 1000 ms).
//! * `KEPLER_BENCH_WARMUP_MS` — warm-up budget (default 200 ms).

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timing run (ignored by the stub).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier with an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

fn env_ms(var: &str, default_ms: u64) -> Duration {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .map(Duration::from_millis)
        .unwrap_or(Duration::from_millis(default_ms))
}

/// Per-iteration timing collector.
pub struct Bencher {
    samples: Vec<f64>,
    warmup: Duration,
    measure: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            warmup: env_ms("KEPLER_BENCH_WARMUP_MS", 200),
            measure: env_ms("KEPLER_BENCH_MEASURE_MS", 1000),
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (also lets the optimizer settle).
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
            warm_iters += 1;
        }
        // Pick a batch size aiming for ~1 ms per timing window.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.001 / per_iter.max(1e-9)).ceil() as u64).max(1);
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = t.elapsed().as_secs_f64();
            self.samples.push(elapsed / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            let out = routine(input);
            self.samples.push(t.elapsed().as_secs_f64());
            black_box(out);
        }
        let _ = warm_iters;
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{:.3} s", secs)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{:.1} {unit}/s", per_sec)
    }
}

fn report(full_name: &str, samples: &mut [f64], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{full_name:<50} (no samples)");
        return;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    let p95 = samples[(samples.len() - 1).min(samples.len() * 95 / 100)];
    let mut line = format!(
        "{full_name:<50} time: [{} {} {}]",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(p95)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            line.push_str(&format!("  thrpt: [{}]", fmt_rate(n as f64 / mean, "elem")));
        }
        Some(Throughput::Bytes(n)) => {
            line.push_str(&format!("  thrpt: [{}]", fmt_rate(n as f64 / mean, "B")));
        }
        None => {}
    }
    println!("{line}");
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Overrides the sample count (accepted, ignored by the stub).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement time (accepted, ignored by the stub).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.name), &mut b.samples, self.throughput);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.name), &mut b.samples, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args` (the stub ignores argv).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), throughput: None, _criterion: self }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        report(name, &mut b.samples, None);
        self
    }
}

/// Declares a group-runner function, mirroring Criterion.rs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring Criterion.rs.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        std::env::set_var("KEPLER_BENCH_WARMUP_MS", "5");
        std::env::set_var("KEPLER_BENCH_MEASURE_MS", "20");
        let mut b = Bencher::new();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(!b.samples.is_empty());
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn formatting() {
        assert!(fmt_time(5e-9).contains("ns"));
        assert!(fmt_time(5e-6).contains("µs"));
        assert!(fmt_time(5e-3).contains("ms"));
        assert!(fmt_rate(2.5e6, "elem").contains("Melem/s"));
        let id = BenchmarkId::new("x", 3);
        assert_eq!(id.name, "x/3");
    }
}

//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_filter`, `boxed`;
//! * strategies for integer/float ranges, `any::<T>()`, tuples, string
//!   character-class patterns (`"[a-z0-9]{1,20}"`), `prop::collection::vec`
//!   / `btree_set`, `prop::option::of`, `prop::sample::select`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`] and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from the real crate: cases are generated from a fixed
//! per-test seed (fully deterministic, no persistence files) and **failing
//! cases are not shrunk** — the panic message prints the generated inputs
//! instead.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic xoshiro256** generator used for all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator for one test case, derived from the test seed and case
    /// index.
    pub fn for_case(test_seed: u64, case: u32) -> Self {
        let mut sm = test_seed ^ ((case as u64).wrapping_mul(0xA24B_AED4_963E_E407));
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        TestRng { s }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A float in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A usize uniform in [0, bound).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }
}

/// Stable seed for a test, derived from its full path (FNV-1a).
pub fn seed_for_test(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Test-runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real default is 256; 64 keeps the offline suite fast while
        // still exercising the generators. Tests that need more set it via
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result type of a property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values. Unlike the real crate there is no value
/// tree and no shrinking: `generate` draws one value.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Discards values failing `pred` (regenerating, bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), pred }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.reason);
    }
}

/// Uniform choice among type-erased strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given branches (must be non-empty).
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "empty prop_oneof!");
        Union { branches }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len());
        self.branches[i].generate(rng)
    }
}

// ---- primitive strategies ----------------------------------------------

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = ((end as i128) - (start as i128) + 1) as u128;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64() as f32
    }
}

/// Strategy for `any::<T>()`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---- string pattern strategies -----------------------------------------

#[derive(Debug, Clone)]
struct Atom {
    /// Inclusive char ranges to draw from.
    class: Vec<(char, char)>,
    min: usize,
    max: usize,
}

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let class: Vec<(char, char)> = if chars[i] == '[' {
            let mut cls = Vec::new();
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                    cls.push((chars[i], chars[i + 2]));
                    i += 3;
                } else {
                    cls.push((chars[i], chars[i]));
                    i += 1;
                }
            }
            assert!(i < chars.len(), "unterminated char class in pattern {pat:?}");
            i += 1; // skip ']'
            cls
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![(c, c)]
        };
        // Optional {m} / {m,n} repetition.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated {") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (m.trim().parse().unwrap(), n.trim().parse().unwrap()),
                None => {
                    let n: usize = body.trim().parse().unwrap();
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { class, min, max });
    }
    atoms
}

fn sample_class(class: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u32 = class.iter().map(|&(a, b)| b as u32 - a as u32 + 1).sum();
    let mut pick = rng.below(total as usize) as u32;
    for &(a, b) in class {
        let n = b as u32 - a as u32 + 1;
        if pick < n {
            return char::from_u32(a as u32 + pick).expect("valid char");
        }
        pick -= n;
    }
    unreachable!()
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..n {
                out.push(sample_class(&atom.class, rng));
            }
        }
        out
    }
}

// ---- tuple strategies ---------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

// ---- collection / option / sample strategies ----------------------------

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

/// `prop::collection`.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::BTreeSet;

    /// See `proptest::collection::vec`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vec of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See `proptest::collection::btree_set`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A set of roughly `size` distinct elements drawn from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.min + rng.below(self.size.max - self.size.min + 1);
            let mut out = BTreeSet::new();
            // Bounded retries: small value domains may not reach `target`.
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// `prop::option`.
pub mod option {
    use super::{Strategy, TestRng};

    /// See `proptest::option::of`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some(value)` (evenly weighted).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// `prop::sample`.
pub mod sample {
    use super::{Strategy, TestRng};

    /// See `proptest::sample::select`.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A uniformly selected clone of one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty vec");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len())].clone()
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---- macros -------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond), file!(), line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format!($($fmt)*), file!(), line!()
            )));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?} at {}:{}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r, file!(), line!()
            )));
        }
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?} at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                file!(),
                line!()
            )));
        }
    }};
}

/// Defines property tests. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(seed, case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let inputs = {
                    let mut s = String::new();
                    $(
                        s.push_str(concat!("\n  ", stringify!($arg), " = "));
                        s.push_str(&format!("{:?}", &$arg));
                    )+
                    s
                };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    move || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    },
                ));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panic!(
                        "proptest case {}/{} failed: {}\ninputs:{}",
                        case + 1, config.cases, e, inputs
                    ),
                    Err(payload) => {
                        eprintln!(
                            "proptest case {}/{} panicked; inputs:{}",
                            case + 1, config.cases, inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generation_matches_class() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-zA-Z0-9 ]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '), "{s:?}");
        }
        let t = Strategy::generate(&"[A-Z][a-z]{2,8}", &mut rng);
        assert!(t.chars().next().unwrap().is_ascii_uppercase());
        assert!((3..=9).contains(&t.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_collections(
            x in 3u32..10,
            v in prop::collection::vec(any::<u8>(), 1..5),
            s in prop::collection::btree_set(0u8..50, 1..10),
            o in prop::option::of(0u8..3),
            pick in prop::sample::select(vec![1u8, 2, 3]),
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!(!s.is_empty() && s.len() < 10);
            if let Some(val) = o { prop_assert!(val < 3); }
            prop_assert!([1u8, 2, 3].contains(&pick));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u32),
            (100u32..104).prop_filter("never rejects", |_| true),
        ]) {
            prop_assert!(v < 4 || (100..104).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_reports_inputs() {
        // No #[test] meta on the inner property: it is invoked manually.
        proptest! {
            fn inner(x in 0u8..2) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case(9, 4);
        let mut b = crate::TestRng::for_case(9, 4);
        let s: Vec<u8> = (0..32).map(|_| Strategy::generate(&(0u8..255), &mut a)).collect();
        let t: Vec<u8> = (0..32).map(|_| Strategy::generate(&(0u8..255), &mut b)).collect();
        assert_eq!(s, t);
    }

    #[test]
    fn size_ranges() {
        let sr: super::SizeRange = (2..5usize).into();
        assert_eq!((sr.min, sr.max), (2, 4));
        let sr: super::SizeRange = (2..=5usize).into();
        assert_eq!((sr.min, sr.max), (2, 5));
        let sr: super::SizeRange = 3usize.into();
        assert_eq!((sr.min, sr.max), (3, 3));
    }
}

//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names (trait *and* derive-macro
//! namespaces, like the real crate) so `use serde::{Deserialize,
//! Serialize};` plus `#[derive(Serialize, Deserialize)]` compile without
//! network access. No actual serialization is implemented; nothing in this
//! workspace calls it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

//! Offline stub of `rand` 0.8.
//!
//! Implements the subset of the `rand` API this workspace uses —
//! `StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}` and
//! `SliceRandom::{choose, shuffle}` — on top of a deterministic
//! xoshiro256** generator (seeded via splitmix64, like the real
//! `SeedableRng::seed_from_u64`). The sequence differs from upstream
//! `StdRng` (which is ChaCha12); everything in this workspace treats the
//! RNG as an arbitrary deterministic source, so only reproducibility
//! matters, not the exact stream.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructor, matching `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot produce
            // four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by `Rng::gen()`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types with uniform sampling over an interval (mirrors
/// `rand::distributions::uniform::SampleUniform` closely enough for type
/// inference to flow through `gen_range` the way it does upstream).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from the half-open interval `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from the closed interval `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128).wrapping_sub(low as i128) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                let span = ((high as i128) - (low as i128) + 1) as u128;
                (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "cannot sample empty range");
                low + <$t as Standard>::from_rng(rng) * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "cannot sample empty range");
                low + <$t as Standard>::from_rng(rng) * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges samplable by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on empty ranges,
    /// like the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::from_rng(self) < p
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&w));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            assert!((0.0..1.0).contains(&rng.gen::<f64>()));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

//! The scenario-fuzzer sweep: generated worlds × generated failure
//! scripts, checked against the detector's safety invariants
//! ([`kepler::fuzz_harness`]).
//!
//! Three layers:
//!
//! * a **fixed-seed smoke subset** that must always pass (and prove the
//!   sweep non-vacuous: a majority of the smoke worlds actually detect
//!   their staged outage);
//! * an **environment-driven sweep** CI points at a fresh seed window
//!   every run (`FUZZ_SEED_BASE` derived from the workflow run number,
//!   `FUZZ_SEED_COUNT` ≥ 200); locally it defaults to a short sweep.
//!   Every failing world is serialized to `target/fuzz-artifacts/` so
//!   the exact scenario replays with
//!   `cargo run --release -p kepler-bench --bin repro -- --fuzz-seed <N>`;
//! * a **negative test**: a hand-authored known-bad script (a flapping
//!   facility run *without* closing hysteresis) must trip the invariant
//!   checker — proving the checker can actually fail;
//!
//! plus harness-level hysteresis boundary coverage: a flapping duty
//! cycle whose up phase straddles the restoration-check bin width.

mod common;

use kepler::fuzz_harness::{check_script, check_seed, write_artifact, FuzzVerdict, PowerReport};
use kepler::netsim::fuzz::{delay_surge, pure_seasonal, slow_drain};
use kepler::netsim::fuzz::{FailureKind, FailureScript, ScenarioScript};
use std::path::PathBuf;

/// Fixed smoke subset: always-run seeds covering every failure
/// archetype (see `archetypes_of_smoke_seeds` below, which pins the
/// coverage so generator drift cannot silently shrink it).
const SMOKE_SEEDS: [u64; 10] = [0, 1, 2, 3, 5, 6, 8, 9, 12, 16];

fn artifacts_dir() -> PathBuf {
    PathBuf::from("target").join("fuzz-artifacts")
}

/// Fails the test for a violating world after serializing its script.
fn report_failure(failed: &[FuzzVerdict]) {
    if failed.is_empty() {
        return;
    }
    let dir = artifacts_dir();
    let mut lines = Vec::new();
    for verdict in failed {
        let path = write_artifact(&dir, verdict).expect("write fuzz artifact");
        lines.push(format!(
            "seed {} ({:?}): {}\n  artifact: {}\n  replay:   cargo run --release -p kepler-bench \
             --bin repro -- --fuzz-seed {}",
            verdict.script.seed,
            verdict.script.script.kind(),
            verdict.violations.join("; "),
            path.display(),
            verdict.script.seed,
        ));
    }
    panic!("{} fuzz world(s) violated detector invariants:\n{}", failed.len(), lines.join("\n"));
}

#[test]
fn fixed_seed_smoke_worlds_hold_invariants() {
    let mut failed = Vec::new();
    let mut detected = 0usize;
    for &seed in &SMOKE_SEEDS {
        let verdict = check_seed(seed);
        detected += usize::from(verdict.detected());
        if !verdict.ok() {
            failed.push(verdict);
        }
    }
    report_failure(&failed);
    // Non-vacuity: the invariants are safety-only, so an all-silent
    // detector would trivially pass — demand that a majority of the
    // smoke worlds actually detect their staged outage.
    assert!(
        detected * 2 > SMOKE_SEEDS.len(),
        "only {detected}/{} smoke worlds detected their outage — the sweep is near-vacuous",
        SMOKE_SEEDS.len()
    );
}

/// Fused-archetype smoke: the three fusion world families run through
/// the multi-signal detector and the resulting [`PowerReport`] is
/// non-vacuous — the drain and surge rows actually detect (the safety
/// invariants alone would pass on an all-silent detector), while the
/// pure-seasonal row stays quiet. The deviation-only smoke seeds above
/// are untouched: these families enter only via their explicit
/// builders, never the seed→kind pool.
#[test]
fn fused_archetype_smoke_has_detection_power() {
    let seeds = [1u64, 2, 3];
    let mut verdicts = Vec::new();
    let mut failed = Vec::new();
    for &seed in &seeds {
        for fw in [slow_drain(seed), delay_surge(seed), pure_seasonal(seed)] {
            let verdict = kepler::fuzz_harness::check_world_fused(&fw);
            if !verdict.ok() {
                failed.push(verdict);
            } else {
                verdicts.push(verdict);
            }
        }
    }
    report_failure(&failed);
    let report = PowerReport::from_verdicts(verdicts.iter());
    let rendered = report.render();
    for archetype in ["slow-drain", "delay-surge", "seasonal"] {
        assert!(
            report.rows.contains_key(archetype),
            "power report must carry a {archetype} row:\n{rendered}"
        );
    }
    // The fusion sweep (tests/fusion.rs) guarantees at most two misses
    // per family across eight seeds; three seeds must yield at least one
    // detection for the two genuine-failure families.
    for archetype in ["slow-drain", "delay-surge"] {
        let row = &report.rows[archetype];
        assert!(
            row.detected >= 1,
            "{archetype}: 0/{} detected — fused sweep is vacuous\n{rendered}",
            row.worlds
        );
        assert!(
            !row.first_detector.is_empty(),
            "{archetype}: detections must attribute a first detector\n{rendered}"
        );
    }
    assert_eq!(
        report.rows["seasonal"].detected, 0,
        "a pure-seasonal world has no outage to detect\n{rendered}"
    );
}

/// The smoke subset must keep covering every archetype; if the
/// generator's seed→kind mapping shifts, this pins the fallout.
#[test]
fn archetypes_of_smoke_seeds_cover_every_kind() {
    let kinds: std::collections::BTreeSet<String> = SMOKE_SEEDS
        .iter()
        .map(|&s| format!("{:?}", ScenarioScript::generate(s).script.kind()))
        .collect();
    assert_eq!(kinds.len(), 5, "smoke seeds must cover all five failure archetypes, got {kinds:?}");
}

/// CI sweep: `FUZZ_SEED_BASE` + `FUZZ_SEED_COUNT` select the window
/// (the workflow derives the base from its run number so every PR run
/// explores fresh worlds). Locally, a short default window keeps
/// `cargo test` fast.
#[test]
fn seeded_sweep_holds_invariants() {
    let base: u64 =
        std::env::var("FUZZ_SEED_BASE").ok().and_then(|v| v.parse().ok()).unwrap_or(1000);
    let count: u64 =
        std::env::var("FUZZ_SEED_COUNT").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    let mut failed = Vec::new();
    for seed in base..base + count {
        let verdict = check_seed(seed);
        if !verdict.ok() {
            eprintln!("seed {seed}: VIOLATIONS: {:?}", verdict.violations);
            failed.push(verdict);
        }
    }
    report_failure(&failed);
}

/// Negative control: a known-bad script must trip the checker. A
/// flapping facility with **no** closing hysteresis (`close_after = 1`)
/// lets the restoration watch list close the incident during the first
/// up phase — and because the stable-path baseline prunes deviated
/// routes at bin close, the later down phases can never re-signal: the
/// early close forfeits the rest of the flap. The flapping-convergence
/// invariant rejects the short report.
#[test]
fn known_bad_script_trips_the_invariant_checker() {
    let mut script = ScenarioScript::generate_kind(23, Some(FailureKind::Flapping));
    let FailureScript::Flapping { facility, start, .. } = script.script else {
        panic!("forced flapping");
    };
    script.script = FailureScript::Flapping {
        facility,
        start,
        down_secs: 30 * 60,
        up_secs: 15 * 60,
        cycles: 3,
    };
    script.open_after = 1;
    script.close_after = 1; // the bad part: no closing hysteresis
    let verdict = check_script(&script);
    assert!(
        !verdict.ok(),
        "the known-bad flapping script should trip the checker; reports: {:?}",
        verdict.reports
    );
    assert!(
        verdict.violations.iter().any(|v| v.contains("mid-flap") || v.contains("instead of one")),
        "expected a flapping-convergence violation, got: {:?}",
        verdict.violations
    );
    // The same world with the hysteresis the generator would prescribe
    // (outlasting the up phase) rides the flap as a single incident.
    let mut fixed = script.clone();
    fixed.close_after = 15 + 8;
    let verdict = check_script(&fixed);
    assert!(verdict.ok(), "hysteresis should fix the flap: {:?}", verdict.violations);
}

/// Boundary: an up phase of one-and-a-half restoration-check bins. Even
/// a minimal closing hysteresis of two consecutive restored checks can
/// never be satisfied inside such a window, so the incident must ride
/// the flap — and the checker must agree.
#[test]
fn flap_duty_cycle_straddling_the_bin_width_stays_one_incident() {
    let mut script = ScenarioScript::generate_kind(24, Some(FailureKind::Flapping));
    let FailureScript::Flapping { facility, start, .. } = script.script else {
        panic!("forced flapping");
    };
    script.script = FailureScript::Flapping {
        facility,
        start,
        down_secs: 30 * 60,
        up_secs: 90, // 1.5 × the 60 s restoration-check bin
        cycles: 4,
    };
    script.open_after = 1;
    script.close_after = 2;
    let verdict = check_script(&script);
    if !verdict.ok() {
        report_failure(&[verdict]);
    }
}

/// Artifacts round-trip: a serialized failing world (script + `#`
/// annotations) parses back to the identical script.
#[test]
fn artifacts_replay_the_exact_scenario() {
    let verdict = check_seed(SMOKE_SEEDS[0]);
    let dir = artifacts_dir().join("selftest");
    let path = write_artifact(&dir, &verdict).expect("write artifact");
    let text = std::fs::read_to_string(&path).expect("read artifact back");
    let parsed = ScenarioScript::parse(&text).expect("artifact text parses");
    assert_eq!(parsed, verdict.script, "artifact must round-trip the script");
    std::fs::remove_dir_all(&dir).ok();
}

//! Cross-crate integration tests: the full pipeline from simulated world
//! through BGP emission to detection and evaluation.

use kepler::core::events::OutageScope;
use kepler::core::metrics::evaluate;
use kepler::core::KeplerConfig;
use kepler::glue::detector_for;
use kepler::netsim::scenario::amsix::{AmsIxScenario, OUTAGE_START};
use kepler::netsim::world::WorldConfig;

/// The AMS-IX case: a full IXP outage must be detected at (or sharpened
/// within) the right city, with a start time inside the outage window.
#[test]
fn amsix_outage_is_detected_and_localized() {
    let study = AmsIxScenario::new(21).with_config(WorldConfig::tiny(21)).build();
    let scenario = &study.scenario;
    let config = KeplerConfig::default();
    let detector = detector_for(scenario, config.clone());
    let reports = detector.run(scenario.records());
    assert!(!reports.is_empty(), "the outage must be detected");

    let world = &scenario.world;
    let amsix_city = world.colo.ixp(study.amsix).unwrap().city;
    let fabric = world.colo.facilities_of_ixp(study.amsix).clone();
    let window_ok = |r: &kepler::core::events::OutageReport| {
        r.start + 600 >= OUTAGE_START && r.start <= OUTAGE_START + 900
    };
    let located_ok = |r: &kepler::core::events::OutageReport| match r.scope {
        OutageScope::Ixp(x) => x == study.amsix,
        OutageScope::City(c) => c == amsix_city,
        OutageScope::Facility(f) => fabric.contains(&f),
    };
    assert!(
        reports.iter().any(|r| window_ok(r) && located_ok(r)),
        "no report localizes the AMS-IX outage: {reports:?}"
    );
    // No phantom outages long before the event.
    assert!(
        reports.iter().all(|r| r.start + 600 >= OUTAGE_START),
        "phantom outage before the event: {reports:?}"
    );
}

/// Outage duration tracking: the detected outage must end after the
/// repair, and within the slow-reconvergence envelope (hours, not days).
#[test]
fn amsix_outage_duration_is_tracked() {
    let study = AmsIxScenario::new(23).with_config(WorldConfig::tiny(23)).build();
    let scenario = &study.scenario;
    let reports = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    let Some(report) = reports.iter().find(|r| r.start + 600 >= OUTAGE_START) else {
        panic!("outage not detected");
    };
    if let Some(end) = report.end {
        assert!(end >= OUTAGE_START + 600, "cannot end before the repair");
        assert!(end <= OUTAGE_START + 600 + 6 * 3600, "ends within the reconvergence envelope");
    }
    assert!(report.affected_near.len() >= 3, "PoP-level incidents involve ≥3 near-end ASes");
    assert!(report.affected_far.len() >= 3);
}

/// Full-study evaluation on the compact five-year scenario: good precision
/// and recall against ground truth, and detections outnumber the publicly
/// reported subset (the paper's headline 4× result).
#[test]
fn five_year_compact_evaluation() {
    use kepler::glue::truth_outages_observed;
    use kepler::netsim::scenario::five_year::{build, FiveYearConfig};
    let scenario = build(FiveYearConfig::compact(31));
    let config = KeplerConfig::default();
    let mut detector = detector_for(&scenario, config.clone());
    for r in scenario.records() {
        detector.process_record(&r);
    }
    let truth = truth_outages_observed(&scenario, &config, &mut detector);
    let reports = detector.finish();
    let eval = evaluate(&reports, &truth, 1800);
    assert!(eval.true_positives >= 2, "at least some real outages detected: {eval:?}");
    assert!(
        eval.precision() >= 0.5,
        "precision {:.2} too low ({} TP, {} FP)",
        eval.precision(),
        eval.true_positives,
        eval.false_positives
    );
    // Misses, if any, must be the paper's §5.3 failure mode: small
    // facilities (the paper's were <30 tenants, misclassified AS-level).
    for missed_id in &eval.missed {
        let t = truth.iter().find(|t| t.id == *missed_id).unwrap();
        if let kepler::core::events::OutageScope::Facility(f) = t.scope {
            let members = scenario.world.colo.members_of_facility(f).len();
            assert!(members < 30, "missed a large facility ({members} members): {t:?}");
        }
    }
    let reported = scenario.reported();
    let detected_infra = eval.true_positives;
    assert!(
        detected_infra >= reported.len() / 2,
        "detections ({detected_infra}) should be comparable to or exceed public reports ({})",
        reported.len()
    );
}

/// MRT round-trip: archiving the scenario stream to MRT bytes and reading
/// it back must not change what the detector sees.
#[test]
fn detection_survives_mrt_roundtrip() {
    use kepler::bgp::mrt::{MrtReader, MrtWriter};
    use kepler::bgp::Asn;
    use kepler::bgpstream::BgpRecord;

    let study = AmsIxScenario::new(25).with_config(WorldConfig::tiny(25)).build();
    let scenario = &study.scenario;
    let records = scenario.records();

    // Archive.
    let mut bytes = Vec::new();
    {
        let mut w = MrtWriter::new(&mut bytes);
        for r in &records {
            w.write_record(&r.to_mrt(Asn(64_700), "192.0.2.254".parse().unwrap())).unwrap();
        }
    }
    // Restore (collector ids are per-archive here; reuse the originals).
    let mut restored = Vec::with_capacity(records.len());
    for (rec, orig) in MrtReader::new(&bytes[..]).zip(records.iter()) {
        let rec = rec.expect("valid archive");
        let back = BgpRecord::from_mrt(&rec, orig.collector).expect("bgp record");
        restored.push(back);
    }
    assert_eq!(restored.len(), records.len());

    let config = KeplerConfig::default();
    let direct = detector_for(scenario, config.clone()).run(records);
    let via_mrt = detector_for(scenario, config).run(restored);
    assert_eq!(direct, via_mrt, "MRT round-trip must be transparent");
}

/// The mined dictionary agrees with ground truth well enough to drive
/// detection (no wrong tags; most documented values recovered).
#[test]
fn mined_dictionary_quality() {
    use kepler::docmine::dictionary::validate;
    let study = AmsIxScenario::new(27).with_config(WorldConfig::small(27)).build();
    let scenario = &study.scenario;
    let dict = scenario.mined_dictionary();
    let report = validate(&dict, &scenario.world.schemes);
    assert_eq!(report.wrong_tag, 0, "no mis-tagged communities");
    assert!(report.recall() > 0.9, "recall {:.2}", report.recall());
    assert!(report.precision() > 0.95, "precision {:.2}", report.precision());
}

//! Helpers shared by the integration suites (`chaos`, `lifecycle`,
//! `probe_validation`, `london_case`, `fuzz_sweep`): the canonical seed
//! sweeps, the world builders, and the safety assertions that every
//! suite repeats over the colocation-twin scenario.
//!
//! Each integration-test binary compiles this module independently and
//! uses a different subset, hence the file-wide `dead_code` allowance.
#![allow(dead_code)]

use kepler::core::events::{OutageReport, OutageScope, ValidationStatus};
use kepler::core::KeplerConfig;
use kepler::glue::detector_for;
use kepler::netsim::scenario::twin::{TwinFacilityScenario, TwinStudy};
use kepler::netsim::scenario::Scenario;

/// The canonical colocation-twin seed sweep (chaos, lifecycle and
/// probe-validation suites).
pub const TWIN_SEEDS: [u64; 8] = [2, 3, 4, 5, 6, 7, 8, 9];

/// The London dual-outage seed sweep (recalibrated for the offline
/// `rand` stub, see ROADMAP "recalibrated seeds").
pub const LONDON_SEEDS: [u64; 8] = [1, 2, 3, 4, 6, 7, 8, 10];

/// Timing slack granted to report boundaries across the suites: one
/// detection bin of stamping latency plus the evaluation slack the
/// metrics module uses.
pub const SLACK_SECS: u64 = 900;

/// Whether two timestamps agree within [`SLACK_SECS`].
pub fn near(a: u64, b: u64) -> bool {
    a.abs_diff(b) <= SLACK_SECS
}

/// Builds the colocation-twin study for a sweep seed.
pub fn twin_study(seed: u64) -> TwinStudy {
    TwinFacilityScenario::new(seed).build()
}

/// Runs the passive detector over a scenario.
pub fn run_passive(scenario: &Scenario, config: KeplerConfig) -> Vec<OutageReport> {
    detector_for(scenario, config).run(scenario.records())
}

/// Whether a report scope names the twin study's dark building —
/// directly, or abstracted to its city by incident merging. (Blaming
/// the exchange is never accepted as naming the truth.)
pub fn names_down(study: &TwinStudy, scope: OutageScope) -> bool {
    match scope {
        OutageScope::Facility(f) => f == study.down,
        OutageScope::City(c) => c == study.city,
        OutageScope::Ixp(_) => false,
    }
}

/// Asserts the study's healthy twin is never blamed.
pub fn assert_twin_never_blamed(
    seed: u64,
    label: &str,
    study: &TwinStudy,
    reports: &[OutageReport],
) {
    assert!(
        !reports.iter().any(|r| r.scope == OutageScope::Facility(study.twin)),
        "seed {seed} ({label}): healthy twin blamed: {reports:?}"
    );
}

/// Asserts every probe-confirmed verdict names something actually dark
/// (the failed building or its city) and carries hop evidence — probing
/// must never manufacture confirmations of healthy buildings.
pub fn assert_confirmed_names_truth(seed: u64, study: &TwinStudy, reports: &[OutageReport]) {
    for r in reports {
        if r.validation == ValidationStatus::Confirmed {
            assert!(
                names_down(study, r.scope),
                "seed {seed}: up facility probe-confirmed down: {r:?}"
            );
            assert!(
                !r.probe_evidence.is_empty(),
                "seed {seed}: confirmed report without hop evidence: {r:?}"
            );
        }
    }
}

//! Multi-signal fusion sweeps: the detection classes the deviation test
//! cannot see, caught by the fused forecast and delay sources — plus
//! the negative controls that keep the fusion honest.
//!
//! Three world families from the scenario fuzzer:
//!
//! * **slow drains** — a facility's tenants withdraw one per step,
//!   spaced wider than a bin, so no bin reaches the ≥3 disjoint-near-AS
//!   localization quorum. Deviation alone stays silent; the seasonal
//!   forecast sees the aggregate presence decline and a targeted probe
//!   campaign confirms the husk.
//! * **delay surges** — a congestion brownout with the control plane
//!   untouched. Only the differential-RTT detector (canary panel over
//!   the simulated data plane) can see it.
//! * **pure seasonality** — the same members dip at the same hour every
//!   day. Nothing is broken; the seasonal-naive forecaster must predict
//!   the dip after one period and raise *zero* alarms.
//!
//! Plus the bit-identity control: a fused detector with every auxiliary
//! source disabled must reproduce the deviation-only pipeline exactly.

mod common;

use common::SLACK_SECS;
use kepler::core::events::OutageScope;
use kepler::core::KeplerConfig;
use kepler::fuzz_harness::{check_world, check_world_fused, FuzzVerdict, PowerReport};
use kepler::glue::{detector_with_fusion, detector_with_prober, FusionOptions};
use kepler::netsim::fuzz::{delay_surge, pure_seasonal, slow_drain, FuzzWorld};

/// Fusion-sweep seeds (8 per family, as the roadmap's detection-power
/// acceptance demands).
const SEEDS: [u64; 8] = [0, 1, 2, 3, 4, 5, 6, 7];

/// Whether a verdict's reports caught the staged failure inside its
/// window — the same rule `PowerReport` scores with.
fn caught(verdict: &FuzzVerdict) -> bool {
    PowerReport::from_verdicts([verdict]).detected() == 1
}

fn assert_safe(tag: &str, seed: u64, verdict: &FuzzVerdict) {
    assert!(verdict.ok(), "{tag} seed {seed} violated safety invariants: {:?}", verdict.violations);
}

#[test]
fn slow_drains_invisible_to_deviation_are_caught_by_forecast_fusion() {
    let mut deviation_hits = 0usize;
    let mut fused_rescues = 0usize;
    for &seed in &SEEDS {
        let fw = slow_drain(seed);
        let deviation = check_world(&fw);
        let fused = check_world_fused(&fw);
        assert_safe("slow-drain (deviation)", seed, &deviation);
        assert_safe("slow-drain (fused)", seed, &fused);
        let dev_caught = caught(&deviation);
        if dev_caught {
            deviation_hits += 1;
        }
        if !dev_caught && caught(&fused) {
            fused_rescues += 1;
            assert!(
                fused.counts.forecast_signals > 0,
                "seed {seed}: a fused rescue must come from forecast signals: {:?}",
                fused.counts
            );
            assert!(
                fused.counts.fused_opens + fused.counts.fused_corroborations > 0,
                "seed {seed}: fusion bookkeeping missing: {:?}",
                fused.counts
            );
        }
    }
    // The archetype is built to evade the deviation test…
    assert!(
        deviation_hits <= 2,
        "slow drains should be (near-)invisible to deviation alone, \
         but {deviation_hits}/{} were caught",
        SEEDS.len()
    );
    // …and the fused detector must rescue at least six of the eight.
    assert!(
        fused_rescues >= 6,
        "fusion rescued only {fused_rescues}/{} slow drains deviation missed",
        SEEDS.len()
    );
}

#[test]
fn delay_surges_are_caught_by_the_rtt_detector_alone() {
    let mut rescued = 0usize;
    for &seed in &SEEDS {
        let fw = delay_surge(seed);
        let deviation = check_world(&fw);
        // A latency surge never touches routing: the deviation pipeline
        // has literally nothing to see.
        assert!(
            deviation.reports.is_empty(),
            "seed {seed}: a pure data-plane surge produced control-plane reports: {:?}",
            deviation.reports
        );
        let fused = check_world_fused(&fw);
        assert_safe("delay-surge (fused)", seed, &fused);
        if caught(&fused) {
            rescued += 1;
            assert!(
                fused.counts.delay_signals > 0,
                "seed {seed}: surge detection without delay signals: {:?}",
                fused.counts
            );
        }
    }
    assert!(
        rescued >= 6,
        "the delay detector caught only {rescued}/{} routing-invisible surges",
        SEEDS.len()
    );
}

#[test]
fn pure_seasonality_raises_no_forecast_alarms() {
    for &seed in &SEEDS {
        let fw = pure_seasonal(seed);
        let fused = check_world_fused(&fw);
        assert_eq!(
            fused.counts.forecast_signals, 0,
            "seed {seed}: the seasonal-naive forecast alarmed on a pure daily pattern: {:?}",
            fused.counts
        );
        assert_eq!(
            fused.counts.fused_opens, 0,
            "seed {seed}: fusion opened an incident on a healthy world: {:?}",
            fused.counts
        );
        // No validated report may exist at all: nothing is broken.
        assert!(
            !fused
                .reports
                .iter()
                .any(|r| r.validation == kepler::core::events::ValidationStatus::Confirmed),
            "seed {seed}: confirmed report on a pure-seasonal world: {:?}",
            fused.reports
        );
    }
}

/// Disabling every auxiliary source must reproduce the deviation-only
/// pipeline bit for bit: same reports, same order, same stamps. The
/// telemetry tap and the fusion plumbing may not perturb the baseline.
#[test]
fn disabled_fusion_is_bit_identical_to_the_deviation_pipeline() {
    for &seed in &SEEDS[..3] {
        let fw: FuzzWorld = slow_drain(seed);
        let config =
            KeplerConfig::default().with_hysteresis(fw.script.open_after, fw.script.close_after);
        let baseline =
            detector_with_prober(&fw.scenario, config.clone()).run(fw.scenario.records());
        let disabled = detector_with_fusion(
            &fw.scenario,
            config,
            FusionOptions { forecast: false, delay: false, canaries_per_facility: 0 },
        )
        .run(fw.scenario.records());
        assert_eq!(
            baseline, disabled,
            "seed {seed}: a fully-disabled fusion stack must be a no-op"
        );
    }
}

/// The fused opens carry per-source attribution all the way into the
/// report stream, and the power report surfaces it per archetype.
#[test]
fn power_report_attributes_first_detector_per_archetype() {
    let drain = check_world_fused(&slow_drain(1));
    let surge = check_world_fused(&delay_surge(1));
    let report = PowerReport::from_verdicts([&drain, &surge]);
    let rendered = report.render();
    assert!(
        rendered.contains("slow-drain") && rendered.contains("delay-surge"),
        "power table must carry one row per archetype:\n{rendered}"
    );
    for row in report.rows.values() {
        assert_eq!(row.worlds, 1);
        assert_eq!(row.detected + row.missed(), row.worlds);
    }
    if let Some(row) = report.rows.get("slow-drain") {
        for kind in row.first_detector.keys() {
            assert!(
                kind == "forecast" || kind == "delay" || kind == "deviation",
                "unknown first-detector attribution {kind}"
            );
        }
    }
    // A detected surge must be attributed to the delay detector — no
    // other source can see it.
    if let Some(row) = report.rows.get("delay-surge") {
        if row.detected > 0 {
            assert!(
                row.first_detector.contains_key("delay"),
                "surge detection must be delay-attributed: {row:?}"
            );
        }
    }
    // Every matched report starts inside its script window (the rule
    // PowerReport scores with) — spot-check the drain's earliest report.
    if let Some(r) = drain.reports.iter().min_by_key(|r| r.start) {
        let (onset, end) = drain.script.script.window();
        if PowerReport::from_verdicts([&drain]).detected() == 1 {
            assert!(
                matches!(
                    r.scope,
                    OutageScope::Facility(_) | OutageScope::City(_) | OutageScope::Ixp(_)
                ),
                "matched report has a scope"
            );
            assert!(r.start + SLACK_SECS >= onset && r.start <= end + SLACK_SECS);
        }
    }
}

//! Outcome ablations for the design choices DESIGN.md calls out. Each test
//! removes one mechanism and shows the detection quality that is lost —
//! the experimental backing for the paper's §3/§4 design arguments.

use kepler::core::events::OutageScope;
use kepler::core::KeplerConfig;
use kepler::core::{Kepler, KeplerInputs};
use kepler::glue::detector_for;
use kepler::netsim::scenario::amsix::{AmsIxScenario, OUTAGE_START};
use kepler::netsim::scenario::london::LondonScenario;
use kepler::netsim::world::WorldConfig;

/// Ablation 1 — community-tag monitoring vs AS-path-only. With an empty
/// dictionary (no location communities interpreted), Kepler sees the same
/// BGP stream but can localize nothing: the paper's core claim that AS
/// paths alone cannot pinpoint infrastructure.
#[test]
fn ablate_dictionary_kills_detection() {
    let study = AmsIxScenario::new(21).with_config(WorldConfig::tiny(21)).build();
    let scenario = &study.scenario;

    let with_dict = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    assert!(!with_dict.is_empty(), "baseline detects the outage");

    let without_dict = Kepler::new(KeplerInputs {
        config: KeplerConfig::default(),
        dictionary: kepler::docmine::CommunityDictionary::new(),
        colo: scenario.detector_colo(),
        orgs: scenario.world.orgs.clone(),
    })
    .run(scenario.records());
    assert!(
        without_dict.is_empty(),
        "without the community dictionary nothing can be localized: {without_dict:?}"
    );
}

/// Ablation 2 — colocation-map disambiguation. Without the colocation map
/// the epicenters of the London case cannot be told apart: signals still
/// exist, but localization has no members_of_facility evidence, so the
/// true buildings are never named.
#[test]
fn ablate_colomap_breaks_disambiguation() {
    let study = LondonScenario::new(3).with_config(WorldConfig::small(3)).build();
    let scenario = &study.scenario;

    let baseline = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    let baseline_names: Vec<OutageScope> = baseline.iter().map(|r| r.scope).collect();
    assert!(
        baseline_names.contains(&OutageScope::Facility(study.tc_hex))
            || baseline_names.contains(&OutageScope::City(study.city)),
        "baseline localizes epicenter A"
    );

    // Empty colocation map: dictionary still works (it was mined earlier),
    // but membership evidence is gone.
    let crippled = Kepler::new(KeplerInputs {
        config: KeplerConfig::default(),
        dictionary: scenario.mined_dictionary(),
        colo: kepler::topology::ColocationMap::new(),
        orgs: scenario.world.orgs.clone(),
    })
    .run(scenario.records());
    assert!(
        !crippled.iter().any(|r| r.scope == OutageScope::Facility(study.tc_hex)
            && r.start.abs_diff(study.time_a) < 900),
        "without the colocation map the exact epicenter cannot be pinned: {crippled:?}"
    );
}

/// Ablation 3 — the paper's threshold choice. At T_fail = 50% partial
/// outages shrink or vanish relative to the 10% default (Figure 7a's
/// argument for a low threshold).
#[test]
fn ablate_high_threshold_loses_sensitivity() {
    use kepler::netsim::scenario::five_year::{build, FiveYearConfig};
    let scenario = build(FiveYearConfig::compact(31));
    let low =
        detector_for(&scenario, KeplerConfig::default().with_t_fail(0.10)).run(scenario.records());
    let high =
        detector_for(&scenario, KeplerConfig::default().with_t_fail(0.50)).run(scenario.records());
    assert!(
        high.len() <= low.len(),
        "raising the threshold cannot find more outages (low={}, high={})",
        low.len(),
        high.len()
    );
}

/// Ablation 4 — collector-feed gap handling. Disabling the quarantine
/// must not create phantom outages in this stream (session flaps carry
/// state messages that the gap tracker suppresses; the monitor's stable
/// baseline gives a second line of defense).
#[test]
fn session_flaps_do_not_become_outages() {
    use kepler::netsim::engine::{CollectorSetup, Simulation};
    use kepler::netsim::events::{EventKind, ScheduledEvent};
    use kepler::netsim::scenario::Scenario;
    use kepler::netsim::world::World;

    let world = World::generate(WorldConfig::tiny(55));
    let start = 1_400_000_000u64;
    let timeline = vec![
        ScheduledEvent {
            start: start + 2 * 86_400 + 3600,
            duration: 900,
            kind: EventKind::CollectorFlap { peer_slot: 0 },
        },
        ScheduledEvent {
            start: start + 2 * 86_400 + 7200,
            duration: 600,
            kind: EventKind::CollectorFlap { peer_slot: 1 },
        },
    ];
    let setup = CollectorSetup::default_for(&world, 2, 16, 55);
    let output = Simulation::new(&world, setup, start, 55).run(&timeline, start + 3 * 86_400);
    let scenario = Scenario { world, output, timeline, start, end: start + 3 * 86_400, seed: 55 };
    let reports = detector_for(&scenario, KeplerConfig::default()).run(scenario.records());
    assert!(reports.is_empty(), "collector flaps mistaken for outages: {reports:?}");
}

/// Time anchor sanity for the AMS-IX study referenced in other tests.
#[test]
fn amsix_outage_start_constant_is_2015_05_13() {
    // 2015-05-13 09:22 UTC.
    assert_eq!(OUTAGE_START, 1_431_475_200 + 9 * 3600 + 22 * 60);
}

/// Ablation 5 — the multi-signal fusion stack, one signal combination at
/// a time. Each fuzz-world family is detectable by exactly one auxiliary
/// source: slow drains only by the seasonal forecast, congestion surges
/// only by the differential-RTT detector. The ranking that comes out —
/// printed as a table for CI logs — is the experimental backing for
/// running all sources together.
#[test]
fn ablate_signal_combinations_rank_by_detection_power() {
    use kepler::fuzz_harness::{check_world_with, PowerReport};
    use kepler::glue::FusionOptions;
    use kepler::netsim::fuzz::{delay_surge, slow_drain, FuzzWorld};

    let combos: [(&str, FusionOptions); 4] = [
        (
            "deviation-only",
            FusionOptions { forecast: false, delay: false, canaries_per_facility: 0 },
        ),
        ("+forecast", FusionOptions { forecast: true, delay: false, canaries_per_facility: 0 }),
        ("+delay", FusionOptions { forecast: false, delay: true, canaries_per_facility: 4 }),
        ("all", FusionOptions { forecast: true, delay: true, canaries_per_facility: 4 }),
    ];
    let seeds = [1u64, 2, 5];
    type FamilyBuilder = fn(u64) -> FuzzWorld;
    let families: [(&str, FamilyBuilder); 2] =
        [("slow-drain", slow_drain), ("delay-surge", delay_surge)];

    // detected[family][combo], plus a rendered table per combination.
    let mut detected = std::collections::BTreeMap::new();
    println!("family       combo            detected  median-latency-s");
    for (family, build) in families {
        let worlds: Vec<FuzzWorld> = seeds.iter().map(|&s| build(s)).collect();
        for (combo, opts) in &combos {
            let verdicts: Vec<_> = worlds.iter().map(|fw| check_world_with(fw, *opts)).collect();
            for v in &verdicts {
                assert!(v.ok(), "{family}/{combo}: safety violations {:?}", v.violations);
            }
            let report = PowerReport::from_verdicts(verdicts.iter());
            let row = &report.rows[family];
            let latency =
                row.median_latency_secs().map(|l| l.to_string()).unwrap_or_else(|| "-".into());
            println!(
                "{family:<12} {combo:<16} {:>3}/{:<5} {latency:>16}",
                row.detected, row.worlds
            );
            detected.insert((family, *combo), row.detected);
        }
    }

    // The ranking: each family is invisible to the deviation pipeline
    // and to the *other* family's auxiliary source, caught only by its
    // own — and the full stack is never worse than any single source.
    assert_eq!(detected[&("slow-drain", "deviation-only")], 0);
    assert_eq!(detected[&("slow-drain", "+delay")], 0);
    assert!(detected[&("slow-drain", "+forecast")] >= 2);
    assert_eq!(detected[&("delay-surge", "deviation-only")], 0);
    assert_eq!(detected[&("delay-surge", "+forecast")], 0);
    assert!(detected[&("delay-surge", "+delay")] >= 2);
    for (family, _) in families {
        for (combo, _) in &combos {
            assert!(
                detected[&(family, "all")] >= detected[&(family, *combo)],
                "{family}: the full stack regressed below {combo}"
            );
        }
    }
}

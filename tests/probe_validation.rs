//! Probe-verdict safety and power over the colocation-twin scenario
//! (property sweep in the style of `london_case.rs`).
//!
//! Two buildings with identical colocation records and city-granularity
//! tags; one goes dark. Passive localization is ambiguous by
//! construction, so the sweep asserts, for **every** seed, the safety
//! invariants of the probe subsystem:
//!
//! * a facility that is up in the scenario world is never probe-confirmed
//!   down (in particular the healthy twin is never blamed);
//! * refuted/unresolved suspicions never fabricate a facility-level
//!   report;
//! * enabling the prober never changes outcomes for events it does not
//!   touch (every unvalidated report of the probed run exists bit-identically
//!   in the passive run).
//!
//! Detection/disambiguation power is asserted on a measured majority —
//! individual small worlds legitimately fail to wire enough observable
//! near-ends (same caveat as the London sweep).

mod common;

use common::{
    assert_confirmed_names_truth, assert_twin_never_blamed, near, run_passive, twin_study,
    TWIN_SEEDS,
};
use kepler::core::events::{OutageReport, OutageScope, ValidationStatus};
use kepler::core::KeplerConfig;
use kepler::glue::detector_with_prober;
use kepler::netsim::scenario::twin::TwinStudy;

fn run(seed: u64) -> (TwinStudy, Vec<OutageReport>, Vec<OutageReport>) {
    let study = twin_study(seed);
    let passive = run_passive(&study.scenario, KeplerConfig::default());
    let probed = {
        let scenario = &study.scenario;
        detector_with_prober(scenario, KeplerConfig::default()).run(scenario.records())
    };
    (study, passive, probed)
}

#[test]
fn twin_disambiguation_properties_across_seeds() {
    let mut seeds_resolving = 0usize;
    let mut seeds_passively_ambiguous = 0usize;
    for &seed in &TWIN_SEEDS {
        let (study, passive, probed) = run(seed);
        // --- Safety: every seed. ---
        assert_twin_never_blamed(seed, "passive", &study, &passive);
        assert_twin_never_blamed(seed, "probed", &study, &probed);
        // A probe-confirmed verdict may only name something that is
        // actually dark: the failed building (possibly abstracted to
        // its city by incident merging), never any other facility.
        assert_confirmed_names_truth(seed, &study, &probed);
        // Differential: events the prober did not touch are bit-identical
        // to the passive run.
        for r in &probed {
            if r.validation == ValidationStatus::Unvalidated {
                assert!(
                    passive.contains(r),
                    "seed {seed}: prober changed an untouched event: {r:?}\npassive: {passive:?}"
                );
            }
        }
        // --- Power: measured per seed, asserted on the majority. ---
        let passive_named = passive.iter().any(|r| {
            r.scope == OutageScope::Facility(study.down) && near(r.start, study.outage_start)
        });
        seeds_passively_ambiguous += usize::from(!passive_named);
        let resolved = probed.iter().any(|r| {
            r.scope == OutageScope::Facility(study.down)
                && near(r.start, study.outage_start)
                && r.validation == ValidationStatus::Confirmed
        });
        seeds_resolving += usize::from(resolved);
    }
    // Passive localization alone must be stuck on (at least) a clear
    // majority of twin worlds — otherwise the scenario isn't testing the
    // ambiguity it was built for.
    assert!(
        seeds_passively_ambiguous * 2 > TWIN_SEEDS.len(),
        "only {seeds_passively_ambiguous}/{} seeds were passively ambiguous",
        TWIN_SEEDS.len()
    );
    // With probing, a clear majority resolves to the correct building
    // with a confirmed validation status (measured: 6/8).
    assert!(
        seeds_resolving * 2 > TWIN_SEEDS.len(),
        "only {seeds_resolving}/{} seeds resolved the dark twin via probes",
        TWIN_SEEDS.len()
    );
}

//! Probe-verdict safety and power over the colocation-twin scenario
//! (property sweep in the style of `london_case.rs`).
//!
//! Two buildings with identical colocation records and city-granularity
//! tags; one goes dark. Passive localization is ambiguous by
//! construction, so the sweep asserts, for **every** seed, the safety
//! invariants of the probe subsystem:
//!
//! * a facility that is up in the scenario world is never probe-confirmed
//!   down (in particular the healthy twin is never blamed);
//! * refuted/unresolved suspicions never fabricate a facility-level
//!   report;
//! * enabling the prober never changes outcomes for events it does not
//!   touch (every unvalidated report of the probed run exists bit-identically
//!   in the passive run).
//!
//! Detection/disambiguation power is asserted on a measured majority —
//! individual small worlds legitimately fail to wire enough observable
//! near-ends (same caveat as the London sweep).

use kepler::core::events::{OutageReport, OutageScope, ValidationStatus};
use kepler::core::KeplerConfig;
use kepler::glue::{detector_for, detector_with_prober};
use kepler::netsim::scenario::twin::{TwinFacilityScenario, TwinStudy};

const SEEDS: [u64; 8] = [2, 3, 4, 5, 6, 7, 8, 9];

fn near(a: u64, b: u64) -> bool {
    a.abs_diff(b) <= 900
}

fn run(seed: u64) -> (TwinStudy, Vec<OutageReport>, Vec<OutageReport>) {
    let study = TwinFacilityScenario::new(seed).build();
    let passive = {
        let scenario = &study.scenario;
        detector_for(scenario, KeplerConfig::default()).run(scenario.records())
    };
    let probed = {
        let scenario = &study.scenario;
        detector_with_prober(scenario, KeplerConfig::default()).run(scenario.records())
    };
    (study, passive, probed)
}

#[test]
fn twin_disambiguation_properties_across_seeds() {
    let mut seeds_resolving = 0usize;
    let mut seeds_passively_ambiguous = 0usize;
    for &seed in &SEEDS {
        let (study, passive, probed) = run(seed);
        // --- Safety: every seed. ---
        for (label, reports) in [("passive", &passive), ("probed", &probed)] {
            // The healthy twin is never blamed.
            assert!(
                !reports.iter().any(|r| r.scope == OutageScope::Facility(study.twin)),
                "seed {seed} ({label}): healthy twin blamed: {reports:?}"
            );
        }
        for r in &probed {
            // A probe-confirmed verdict may only name something that is
            // actually dark: the failed building (possibly abstracted to
            // its city by incident merging), never any other facility.
            if r.validation == ValidationStatus::Confirmed {
                let names_truth = match r.scope {
                    OutageScope::Facility(f) => f == study.down,
                    OutageScope::City(c) => c == study.city,
                    OutageScope::Ixp(_) => false,
                };
                assert!(names_truth, "seed {seed}: up facility probe-confirmed down: {r:?}");
                assert!(
                    !r.probe_evidence.is_empty(),
                    "seed {seed}: confirmed report without hop evidence: {r:?}"
                );
            }
        }
        // Differential: events the prober did not touch are bit-identical
        // to the passive run.
        for r in &probed {
            if r.validation == ValidationStatus::Unvalidated {
                assert!(
                    passive.contains(r),
                    "seed {seed}: prober changed an untouched event: {r:?}\npassive: {passive:?}"
                );
            }
        }
        // --- Power: measured per seed, asserted on the majority. ---
        let passive_named = passive.iter().any(|r| {
            r.scope == OutageScope::Facility(study.down) && near(r.start, study.outage_start)
        });
        seeds_passively_ambiguous += usize::from(!passive_named);
        let resolved = probed.iter().any(|r| {
            r.scope == OutageScope::Facility(study.down)
                && near(r.start, study.outage_start)
                && r.validation == ValidationStatus::Confirmed
        });
        seeds_resolving += usize::from(resolved);
    }
    // Passive localization alone must be stuck on (at least) a clear
    // majority of twin worlds — otherwise the scenario isn't testing the
    // ambiguity it was built for.
    assert!(
        seeds_passively_ambiguous * 2 > SEEDS.len(),
        "only {seeds_passively_ambiguous}/{} seeds were passively ambiguous",
        SEEDS.len()
    );
    // With probing, a clear majority resolves to the correct building
    // with a confirmed validation status (measured: 6/8).
    assert!(
        seeds_resolving * 2 > SEEDS.len(),
        "only {seeds_resolving}/{} seeds resolved the dark twin via probes",
        SEEDS.len()
    );
}

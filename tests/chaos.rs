//! Fault-injection sweep over the colocation-twin scenario: the full
//! detector measuring through a [`FaultyBackend`] that drops ~30% of
//! probes, delays others past their deadline, truncates and duplicates
//! hop lists, churns vantages, and rejects every submission inside a
//! scripted brownout window around the outage onset.
//!
//! The sweep asserts, for **every** seed, that the safety invariants of
//! the probe subsystem survive the chaos:
//!
//! * the run completes — nothing on the probe path blocks or panics on a
//!   misbehaving backend;
//! * the healthy twin is never blamed;
//! * a probe-confirmed verdict only ever names something actually dark
//!   (the failed building, or its city after incident merging);
//! * no false close: lost probes and brownouts never fabricate a
//!   restoration, so no incident at the failed building ends before the
//!   repair;
//!
//! and, across the sweep, that degradation is *visible*: campaigns below
//! the completeness quorum settle passively and are counted in
//! [`ClassCounts::degraded_passive`] rather than silently dropped.
//!
//! A second test exercises the recorded-fixture mode end-to-end: a
//! campaign journaled through a [`RecordingBackend`] replays
//! bit-identically — verdicts, evidence, retry and timeout counters —
//! from the serialized transcript alone, with no backend behind it.

mod common;

use common::{
    assert_confirmed_names_truth, assert_twin_never_blamed, names_down, twin_study, SLACK_SECS,
    TWIN_SEEDS,
};
use kepler::core::KeplerConfig;
use kepler::glue::{detector_with_faulty_prober, recording_prober_for, vantage_registry_for};
use kepler::netsim::FaultConfig;
use kepler::probe::{ProbeEngine, ProbeEngineConfig, ProbeRequest, Prober, ReplayBackend};

#[test]
fn chaos_sweep_holds_safety_invariants_under_fault_injection() {
    let mut total_degraded = 0usize;
    for &seed in &TWIN_SEEDS {
        let study = twin_study(seed);
        let scenario = &study.scenario;
        // 30% probe loss, deadline blowouts, truncation, duplication,
        // vantage churn — plus a hard brownout from just before the
        // outage until an hour in, when the detector needs probes most.
        let fault = FaultConfig::chaos(seed)
            .with_brownout(study.outage_start.saturating_sub(600), study.outage_start + 3_600);
        let mut detector = detector_with_faulty_prober(scenario, KeplerConfig::default(), fault);
        for rec in scenario.records() {
            detector.process_record_owned(rec);
        }
        let reports = detector.finalize();
        let counts = detector.class_counts();
        total_degraded += counts.degraded_passive;
        // The healthy twin is never blamed, chaos or not. Fault
        // injection must not manufacture confirmations of healthy
        // buildings either.
        assert_twin_never_blamed(seed, "chaos", &study, &reports);
        assert_confirmed_names_truth(seed, &study, &reports);
        for r in &reports {
            // No false close: lost probes yield Inconclusive, never
            // Restored, so nothing at the failed building may end before
            // the repair (one bin of slack for close stamping).
            if names_down(&study, r.scope) {
                if let Some(end) = r.end {
                    assert!(
                        end.saturating_add(SLACK_SECS)
                            >= study.outage_start + study.outage_duration,
                        "seed {seed}: incident closed before the repair: {r:?}"
                    );
                }
            }
        }
    }
    // Degradation must be visible somewhere in the sweep: with a hard
    // brownout across the detection window, at least one campaign fell
    // below quorum and settled passively.
    assert!(total_degraded > 0, "no campaign ever degraded across {} seeds", TWIN_SEEDS.len());
}

#[test]
fn recorded_campaign_replays_bit_identically() {
    let study = twin_study(5);
    let scenario = &study.scenario;
    let request = ProbeRequest {
        pop: kepler::docmine::LocationTag::City(study.city),
        bin_start: study.outage_start + 600,
        candidates: vec![study.down, study.twin],
        affected_far: scenario
            .world
            .colo
            .members_of_facility(study.down)
            .iter()
            .copied()
            .take(10)
            .collect(),
        affected_near: Vec::new(),
    };
    // Record: a live campaign through the faulty backend, every attempt
    // outcome journaled.
    let fault = FaultConfig::chaos(5);
    let mut recorder = recording_prober_for(scenario, ProbeEngineConfig::default(), fault);
    let live = recorder.validate(&request, request.bin_start);
    assert!(!live.verdicts.is_empty(), "fixture campaign judged nothing: {live:?}");
    // Serialize the transcript, parse it back, and replay with *no*
    // backend behind it — zero network (or simulator) access.
    let text = recorder.backend().transcript.serialize();
    let parsed = kepler::probe::CampaignTranscript::parse(&text).expect("transcript round-trips");
    let mut replayer = ProbeEngine::with_async(
        ReplayBackend::new(parsed),
        vantage_registry_for(&scenario.world),
        scenario.detector_colo(),
        ProbeEngineConfig::default(),
    );
    let replayed = replayer.validate(&request, request.bin_start);
    // Bit-identical: verdicts, evidence, completeness, and the retry /
    // timeout counters the lifecycle accumulated along the way.
    assert_eq!(live, replayed, "replay diverged from the recorded campaign");
}

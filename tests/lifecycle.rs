//! Incident-lifecycle property sweep over the colocation-twin scenario:
//! Open → Recovering → Closed, driven by probe-based restoration
//! detection (style of `probe_validation.rs` / `london_case.rs`).
//!
//! One building goes dark for two hours, then is repaired; the stream
//! runs a full day past the repair. Each seed runs the lifecycle
//! detector twice: with the default configuration (control-plane and
//! probe-driven restoration racing), and with `restore_fraction` set
//! above 1.0 — a configuration in which the BGP watch list can *never*
//! close an incident, so any close proves the restoration-probing path
//! end-to-end.
//!
//! Safety, asserted on **every** seed and both runs:
//!
//! * no incident on the dark building (or its city) is ever observed
//!   `Recovering`, and none ends, before the repair actually happens —
//!   restoration probing must not close a still-down facility;
//! * the healthy twin is never blamed (carried over from the probe
//!   sweep).
//!
//! Power, asserted on a measured majority: the injected outage is
//! observed `Open`, transitions through `Recovering`, and its final
//! report is `Closed` with an end near the repair — in the probe-only
//! run specifically via `probe_closed` — and, where the passive run also
//! closed, the probe-driven end never comes later than BGP convergence.

mod common;

use common::{assert_twin_never_blamed, names_down, run_passive, twin_study, TWIN_SEEDS};
use kepler::core::events::{IncidentState, OutageReport};
use kepler::core::{Kepler, KeplerConfig};
use kepler::glue::detector_with_lifecycle;
use kepler::netsim::scenario::twin::TwinStudy;

struct LifecycleRun {
    /// (record time, state) transition samples for the dark building.
    observed: Vec<(u64, IncidentState)>,
    reports: Vec<OutageReport>,
    probe_closed: usize,
}

fn drive(study: &TwinStudy, mut detector: Kepler) -> LifecycleRun {
    let mut observed: Vec<(u64, IncidentState)> = Vec::new();
    for r in study.scenario.records() {
        let t = r.time;
        detector.process_record_owned(r);
        for (scope, state) in detector.incident_states() {
            if names_down(study, scope) && observed.last().map(|(_, s)| *s != state).unwrap_or(true)
            {
                observed.push((t, state));
            }
        }
    }
    let reports = detector.finalize();
    let probe_closed = detector.class_counts().probe_closed;
    LifecycleRun { observed, reports, probe_closed }
}

fn assert_safety(seed: u64, label: &str, study: &TwinStudy, run: &LifecycleRun) {
    let repair = study.outage_start + study.outage_duration;
    for &(t, state) in &run.observed {
        assert!(
            state == IncidentState::Open || t >= repair,
            "seed {seed} ({label}): observed {state} at {t}, before the repair at {repair}"
        );
    }
    for rep in &run.reports {
        if !names_down(study, rep.scope) {
            continue;
        }
        if let Some(end) = rep.end {
            assert!(
                end >= repair,
                "seed {seed} ({label}): still-down facility closed at {end} < repair {repair}: \
                 {rep:?}"
            );
        }
    }
    assert_twin_never_blamed(seed, label, study, &run.reports);
}

/// Full lifecycle on this run: Open and Recovering both observed, and a
/// final Closed report ending within `slack` of the repair.
fn walked_lifecycle(study: &TwinStudy, run: &LifecycleRun, slack: u64) -> bool {
    let repair = study.outage_start + study.outage_duration;
    run.observed.iter().any(|(_, s)| *s == IncidentState::Open)
        && run.observed.iter().any(|(_, s)| *s == IncidentState::Recovering)
        && run.reports.iter().any(|rep| {
            names_down(study, rep.scope)
                && rep.state == IncidentState::Closed
                && rep.end.map(|e| e >= repair && e <= repair + slack).unwrap_or(false)
        })
}

#[test]
fn lifecycle_properties_across_seeds() {
    let mut seeds_full_lifecycle = 0usize;
    let mut seeds_probe_only_close = 0usize;
    let mut seeds_with_passive_close = 0usize;
    let mut seeds_not_slower_than_bgp = 0usize;
    for &seed in &TWIN_SEEDS {
        let study = twin_study(seed);
        let passive = run_passive(&study.scenario, KeplerConfig::default());
        let lifecycle =
            drive(&study, detector_with_lifecycle(&study.scenario, KeplerConfig::default()));
        // BGP restoration disabled outright (the watch fraction can never
        // exceed 1.0): only restoration probes can close incidents here.
        let probe_only_config = KeplerConfig { restore_fraction: 2.0, ..KeplerConfig::default() };
        let probe_only = drive(&study, detector_with_lifecycle(&study.scenario, probe_only_config));

        // --- Safety: every seed, both lifecycle runs. ---
        assert_safety(seed, "default", &study, &lifecycle);
        assert_safety(seed, "probe-only-close", &study, &probe_only);
        assert_twin_never_blamed(seed, "passive", &study, &passive);

        // --- Power: measured per seed, asserted on the majority. ---
        seeds_full_lifecycle += usize::from(walked_lifecycle(&study, &lifecycle, 4 * 3600));
        // In the probe-only run a close *is* a probe close; demand the
        // counter to prove the path taken.
        seeds_probe_only_close += usize::from(
            walked_lifecycle(&study, &probe_only, 4 * 3600) && probe_only.probe_closed > 0,
        );
        // Where the passive run closed at all, the probe-driven end must
        // not be later (restoration detection is at least as fast as BGP).
        let passive_end = passive
            .iter()
            .filter(|rep| names_down(&study, rep.scope))
            .filter_map(|rep| rep.end)
            .min();
        let probed_end = lifecycle
            .reports
            .iter()
            .filter(|rep| names_down(&study, rep.scope))
            .filter_map(|rep| rep.end)
            .min();
        if let Some(p) = passive_end {
            seeds_with_passive_close += 1;
            if probed_end.map(|e| e <= p).unwrap_or(false) {
                seeds_not_slower_than_bgp += 1;
            }
        }
    }
    assert!(
        seeds_full_lifecycle * 2 > TWIN_SEEDS.len(),
        "only {seeds_full_lifecycle}/{} seeds walked Open -> Recovering -> Closed",
        TWIN_SEEDS.len()
    );
    assert!(
        seeds_probe_only_close * 2 > TWIN_SEEDS.len(),
        "only {seeds_probe_only_close}/{} seeds closed via restoration probes \
         when BGP restoration was disabled",
        TWIN_SEEDS.len()
    );
    assert!(
        seeds_not_slower_than_bgp * 2 >= seeds_with_passive_close,
        "probe closes slower than BGP too often: \
         {seeds_not_slower_than_bgp}/{seeds_with_passive_close}"
    );
}

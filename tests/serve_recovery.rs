//! Crash-recovery suite for the serve subsystem.
//!
//! The durability contract under test: a daemon killed mid-scenario and
//! restarted from snapshot + WAL must (a) recover **bit-identical**
//! tracker state — asserted on the encoded snapshot bytes, not on a
//! lossy summary — and (b) finish the run reporting the same incidents,
//! lifecycle states and boundaries as an uninterrupted detector. The
//! WAL-damage tests then check that a truncated tail or a torn (bit
//! flipped) frame rolls recovery back to exactly the previous durable
//! commit instead of corrupting state or failing open.

mod common;

use common::{run_passive, twin_study, SLACK_SECS, TWIN_SEEDS};
use kepler::core::{KeplerConfig, TrackerState};
use kepler::glue::detector_for;
use kepler::serve::store::encode_snapshot;
use kepler::serve::{Daemon, DaemonConfig, IncidentStore};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kepler-serve-rec-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The state bytes two stores must agree on bit-for-bit. Sequence and
/// bin stamp are pinned so only the tracker state itself is compared.
fn state_bytes(state: &TrackerState) -> Vec<u8> {
    encode_snapshot(state, 0, 0)
}

/// Runs the kill-and-restart round trip for one twin-study seed:
/// daemon A is killed (dropped without `finish`) two commits after the
/// first live incident reaches the store; daemon B recovers from the
/// same directory and replays the remaining records.
fn kill_restart_roundtrip(seed: u64) {
    let study = twin_study(seed);
    let config = KeplerConfig::default();
    let baseline = run_passive(&study.scenario, config.clone());
    let records = study.scenario.records();

    let dir = tmpdir(&format!("kill-{seed}"));
    let mut daemon_config = DaemonConfig::new(dir.clone());
    // Small cadence so the kill point lands past at least one
    // compaction and recovery exercises WAL-over-snapshot, not WAL-only.
    daemon_config.snapshot_every_bins = 4;

    let mut daemon =
        Daemon::new(detector_for(&study.scenario, config.clone()), &daemon_config).unwrap();
    let mut committed = daemon.detector().export_incidents();
    let mut committed_bin = 0u64;
    let mut commits_seen = 0u64;
    let mut live_at_commit = None;
    let mut killed = false;

    for rec in records.iter().cloned() {
        daemon.ingest(rec).unwrap();
        if daemon.summary().commits == commits_seen {
            continue;
        }
        commits_seen = daemon.summary().commits;
        committed = daemon.detector().export_incidents();
        committed_bin = daemon.detector().last_bin_end();
        if live_at_commit.is_none() && !daemon.view().load().live().is_empty() {
            live_at_commit = Some(commits_seen);
        }
        // Kill two commits into the live incident so its onset bins are
        // durably closed but the outage is still in progress.
        if live_at_commit.is_some_and(|at| commits_seen >= at + 2) {
            killed = true;
            break;
        }
    }
    if !killed {
        // Some sweep seeds build worlds whose disturbance never crosses
        // the detection threshold; the kill point is then unreachable,
        // and the only correct durability outcome is "nothing to lose".
        assert!(
            baseline.is_empty(),
            "seed {seed}: baseline detects {baseline:?} but no live incident reached the store"
        );
        let _ = std::fs::remove_dir_all(&dir);
        return;
    }
    assert!(
        !committed.ongoing.is_empty(),
        "seed {seed}: kill point has no open incident: {committed:?}"
    );
    // Crash: drop the daemon without `finish` — the WAL tail stays
    // exactly as the last fsync left it.
    drop(daemon);

    // (a) Recovery is bit-identical to the last committed export. The
    // durable bin stamp may trail the in-memory one: quiet bins write no
    // WAL frame (by design), so the stamp on disk is the last *framed*
    // commit — but the state across that gap is, by the same token,
    // unchanged.
    let (recovered, last_bin, _) = IncidentStore::recover_state(&dir).unwrap();
    assert!(
        last_bin <= committed_bin,
        "seed {seed}: recovered bin stamp {last_bin} ahead of the kill point {committed_bin}"
    );
    assert_eq!(
        state_bytes(&recovered),
        state_bytes(&committed),
        "seed {seed}: recovered state is not bit-identical to the committed export"
    );

    // (b) A restarted daemon resumes with the same open incidents…
    let mut daemon2 =
        Daemon::new(detector_for(&study.scenario, config.clone()), &daemon_config).unwrap();
    let recovery = daemon2.recovery().clone();
    assert!(
        recovery.had_snapshot || recovery.frames_applied > 0,
        "seed {seed}: restart recovered nothing: {recovery:?}"
    );
    assert_eq!(
        state_bytes(&daemon2.detector().export_incidents()),
        state_bytes(&committed),
        "seed {seed}: restarted detector does not carry the committed incidents"
    );
    assert!(
        !daemon2.view().load().live().is_empty(),
        "seed {seed}: restarted query view lost the open incident"
    );

    // …and replays the records the durable bins do not cover: the
    // stream is time-sorted, so that is everything at or after the
    // recovered bin boundary (the open bin plus any quiet, frameless
    // bins — replaying quiet bins is idempotent).
    let resume_idx = records.iter().position(|r| r.time >= last_bin).unwrap_or(records.len());
    daemon2.run_stream(records[resume_idx..].to_vec()).unwrap();
    let (resumed, _) = daemon2.finish().unwrap();

    // Final lifecycle agreement with the uninterrupted run: same
    // incident set, same states, same onsets; ends within the suite's
    // timing slack (probe cadence restarts on the recovered boundary).
    let key = |r: &kepler::core::events::OutageReport| (r.scope, r.state, r.start, r.end);
    let mut want: Vec<_> = baseline.iter().map(key).collect();
    let mut got: Vec<_> = resumed.iter().map(key).collect();
    want.sort();
    got.sort();
    assert_eq!(
        got.len(),
        want.len(),
        "seed {seed}: report count diverged\nbaseline: {want:?}\nresumed: {got:?}"
    );
    for (g, w) in got.iter().zip(&want) {
        assert_eq!((g.0, g.1), (w.0, w.1), "seed {seed}: scope/state diverged: {g:?} vs {w:?}");
        assert!(g.2.abs_diff(w.2) <= SLACK_SECS, "seed {seed}: onset diverged: {g:?} vs {w:?}");
        match (g.3, w.3) {
            (Some(ge), Some(we)) => {
                assert!(ge.abs_diff(we) <= SLACK_SECS, "seed {seed}: end diverged: {g:?} vs {w:?}")
            }
            (None, None) => {}
            _ => panic!("seed {seed}: closed/open diverged: {g:?} vs {w:?}"),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_daemon_resumes_identically_across_seeds() {
    // ≥4 seeds per the acceptance criterion; the full canonical sweep.
    for &seed in &TWIN_SEEDS[..4] {
        kill_restart_roundtrip(seed);
    }
}

#[test]
fn killed_daemon_resumes_identically_across_seeds_tail() {
    for &seed in &TWIN_SEEDS[4..] {
        kill_restart_roundtrip(seed);
    }
}

/// Drives a raw [`IncidentStore`] (no snapshots) over a seeded scenario,
/// recording the WAL length and exported state after every commit.
fn store_trail(seed: u64, name: &str) -> (PathBuf, Vec<(u64, TrackerState)>) {
    let study = twin_study(seed);
    let mut detector = detector_for(&study.scenario, KeplerConfig::default());
    let dir = tmpdir(name);
    let (mut store, _) = IncidentStore::open(&dir, 0).unwrap();
    let wal = dir.join("wal.log");
    let mut trail = Vec::new();
    let mut seq = 0u64;
    for rec in study.scenario.records() {
        detector.process_record_owned(rec);
        if detector.bins_closed() > seq {
            seq = detector.bins_closed();
            let state = detector.export_incidents();
            store.commit_bin(seq, detector.last_bin_end(), &state).unwrap();
            trail.push((std::fs::metadata(&wal).unwrap().len(), state));
        }
    }
    drop(store);
    (dir, trail)
}

/// Index of the last commit that appended a WAL frame (the WAL grew).
fn last_framed_commit(trail: &[(u64, TrackerState)]) -> usize {
    let k = (1..trail.len())
        .rev()
        .find(|&i| trail[i].0 > trail[i - 1].0)
        .expect("scenario writes at least two WAL frames");
    assert_ne!(trail[k].1, trail[k - 1].1, "a frame means the state changed");
    k
}

#[test]
fn truncated_wal_tail_rolls_back_to_previous_commit() {
    let (dir, trail) = store_trail(7, "trunc");
    let k = last_framed_commit(&trail);
    // Chop 3 bytes off the final frame — a torn write that died
    // mid-`write_all`.
    let wal = dir.join("wal.log");
    let f = std::fs::OpenOptions::new().write(true).open(&wal).unwrap();
    f.set_len(trail[k].0 - 3).unwrap();
    drop(f);
    let (state, _, rec) = IncidentStore::recover_state(&dir).unwrap();
    assert_eq!(
        state_bytes(&state),
        state_bytes(&trail[k - 1].1),
        "truncated tail must roll back to the previous durable commit"
    );
    assert_eq!(
        rec.dropped_bytes,
        trail[k].0 - 3 - trail[k - 1].0,
        "exactly the torn frame is dropped: {rec:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_frame_crc_rolls_back_to_previous_commit() {
    let (dir, trail) = store_trail(7, "torn");
    let k = last_framed_commit(&trail);
    // Flip one payload byte inside the final frame: length intact, CRC
    // mismatch.
    let wal = dir.join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    let n = bytes.len();
    assert_eq!(n as u64, trail[k].0);
    bytes[n - 1] ^= 0x01;
    std::fs::write(&wal, &bytes).unwrap();
    let (state, _, rec) = IncidentStore::recover_state(&dir).unwrap();
    assert_eq!(
        state_bytes(&state),
        state_bytes(&trail[k - 1].1),
        "a CRC-failed frame must roll back to the previous durable commit"
    );
    assert!(rec.dropped_bytes > 0, "{rec:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_plus_wal_replay_is_bit_identical_on_scenario() {
    // Aggressive compaction cadence: recovery must cross several
    // snapshot generations and still land on the exact export bytes.
    let study = twin_study(5);
    let mut detector = detector_for(&study.scenario, KeplerConfig::default());
    let dir = tmpdir("snapwal");
    let (mut store, _) = IncidentStore::open(&dir, 3).unwrap();
    let mut seq = 0u64;
    let mut last = TrackerState::default();
    for rec in study.scenario.records() {
        detector.process_record_owned(rec);
        if detector.bins_closed() > seq {
            seq = detector.bins_closed();
            last = detector.export_incidents();
            store.commit_bin(seq, detector.last_bin_end(), &last).unwrap();
        }
    }
    drop(store);
    let (state, _, rec) = IncidentStore::recover_state(&dir).unwrap();
    assert!(rec.had_snapshot, "cadence 3 must have compacted: {rec:?}");
    assert_eq!(
        state_bytes(&state),
        state_bytes(&last),
        "snapshot + WAL replay must reproduce the final export bit-for-bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

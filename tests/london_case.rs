//! The London dual-outage disambiguation case (paper Figures 9a–b):
//! two facility outages on consecutive days, both visible through the same
//! bystander facility tag and exchange, plus an unrelated AS-level event
//! in between.
//!
//! Formerly these assertions were pinned to one hand-recalibrated RNG
//! seed (the offline `rand` stub generates different worlds than upstream
//! `StdRng`, see ROADMAP "recalibrated seeds"). They are now *property
//! checks across a seed sweep*: the safety invariants (never blame the
//! bystander building, never report the AS-level event as an
//! infrastructure outage, remote impact crosses city borders) must hold
//! for **every** seed, and the detection/localization power must hold for
//! a clear majority — individual small worlds legitimately fail to wire
//! both epicenters observably.

mod common;

use common::{near, run_passive, LONDON_SEEDS};
use kepler::core::events::{OutageReport, OutageScope};
use kepler::core::KeplerConfig;
use kepler::netsim::scenario::london::{LondonScenario, LondonStudy};
use kepler::netsim::world::WorldConfig;

fn run(seed: u64) -> (LondonStudy, Vec<OutageReport>) {
    let study = LondonScenario::new(seed).with_config(WorldConfig::small(seed)).build();
    let reports = run_passive(&study.scenario, KeplerConfig::default());
    (study, reports)
}

/// Whether a report localizes the outage at `t` to its true epicenter —
/// either named exactly or through its city (the abstraction is
/// acceptable, blaming the *wrong building* or the exchange is not).
fn localized(
    study: &LondonStudy,
    reports: &[OutageReport],
    t: u64,
    fac: kepler::topology::FacilityId,
) -> bool {
    reports.iter().any(|r| {
        near(r.start, t)
            && match r.scope {
                OutageScope::Facility(f) => f == fac,
                OutageScope::City(c) => c == study.city,
                OutageScope::Ixp(_) => false,
            }
    })
}

/// One sweep, every property: the scenario build dominates runtime, so
/// localization and remote-impact checks share it.
#[test]
fn london_dual_outage_properties_across_seeds() {
    let mut seeds_detecting = 0usize;
    let mut epicenter_hits = 0usize;
    let mut seeds_with_remote_impact = 0usize;
    for &seed in &LONDON_SEEDS {
        let (study, reports) = run(seed);
        // Safety invariants: must hold for every seed.
        assert!(
            !reports.iter().any(|r| r.scope == OutageScope::Facility(study.th_east)),
            "seed {seed}: bystander facility blamed: {reports:?}"
        );
        assert!(
            !reports.iter().any(|r| near(r.start, study.time_b)),
            "seed {seed}: AS-level event at B reported as outage: {reports:?}"
        );
        // Power: count how often each epicenter is pinned.
        let a = localized(&study, &reports, study.time_a, study.tc_hex);
        let c = localized(&study, &reports, study.time_c, study.th_north);
        epicenter_hits += usize::from(a) + usize::from(c);
        seeds_detecting += usize::from(a || c);
        // Paper Figure 9c mechanism: whenever anything is detected, the
        // affected ASes must include networks homed outside the outage
        // city (remote peering / long-haul PNIs).
        if !reports.is_empty() {
            let world = &study.scenario.world;
            let mut remote = 0usize;
            let mut local = 0usize;
            for r in &reports {
                for asn in r.affected_near.union(&r.affected_far) {
                    if let Some(node) = world.node(*asn) {
                        if node.info.home_city == study.city {
                            local += 1;
                        } else {
                            remote += 1;
                        }
                    }
                }
            }
            assert!(
                remote > 0,
                "seed {seed}: no remote impact (local={local}, remote={remote}): {reports:?}"
            );
            seeds_with_remote_impact += 1;
        }
    }
    // Across the sweep a clear majority of worlds must detect and
    // correctly localize (measured: 6/8 seeds, 7 epicenter hits).
    assert!(
        seeds_detecting * 2 > LONDON_SEEDS.len(),
        "only {seeds_detecting}/{} seeds localized an epicenter",
        LONDON_SEEDS.len()
    );
    assert!(
        epicenter_hits >= LONDON_SEEDS.len() / 2 + 2,
        "only {epicenter_hits} epicenter localizations across {} seeds",
        LONDON_SEEDS.len()
    );
    assert!(
        seeds_with_remote_impact * 2 > LONDON_SEEDS.len(),
        "only {seeds_with_remote_impact}/{} seeds produced reports with remote impact",
        LONDON_SEEDS.len()
    );
}

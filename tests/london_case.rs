//! The London dual-outage disambiguation case (paper Figures 9a–b):
//! two facility outages on consecutive days, both visible through the same
//! bystander facility tag and exchange, plus an unrelated AS-level event
//! in between. Kepler must localize each outage to its true epicenter and
//! must not raise an infrastructure outage for the AS-level event.

use kepler::core::events::OutageScope;
use kepler::core::KeplerConfig;
use kepler::glue::detector_for;
use kepler::netsim::scenario::london::LondonScenario;
use kepler::netsim::world::WorldConfig;

#[test]
fn london_dual_outages_are_disambiguated() {
    let study = LondonScenario::new(1).with_config(WorldConfig::small(1)).build();
    let scenario = &study.scenario;
    let reports = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    assert!(!reports.is_empty(), "the outages must be detected");

    let near = |a: u64, b: u64| a.abs_diff(b) <= 900;
    // Each epicenter must be hit by a report at the right time — either
    // named exactly or through its city (the abstraction is acceptable,
    // blaming the *wrong building* or the exchange is not).
    for (t, fac, label) in [(study.time_a, study.tc_hex, "A"), (study.time_c, study.th_north, "C")]
    {
        let hit = reports.iter().any(|r| {
            near(r.start, t)
                && match r.scope {
                    OutageScope::Facility(f) => f == fac,
                    OutageScope::City(c) => c == study.city,
                    OutageScope::Ixp(_) => false,
                }
        });
        assert!(hit, "outage {label} not localized: {reports:?}");
    }
    // The bystander facility must never be blamed.
    assert!(
        !reports.iter().any(|r| r.scope == OutageScope::Facility(study.th_east)),
        "bystander facility blamed: {reports:?}"
    );
    // The time-B AS-level event must not produce an infrastructure outage.
    assert!(
        !reports.iter().any(|r| near(r.start, study.time_b)),
        "AS-level event at B reported as outage: {reports:?}"
    );
}

#[test]
fn remote_impact_reaches_other_countries() {
    // Paper Figure 9c: >45% of affected far-end interfaces were outside
    // the outage country. We verify the mechanism: affected far-end ASes
    // of the first outage include networks whose home city differs from
    // the outage city (remote peering / long-haul PNIs).
    let study = LondonScenario::new(1).with_config(WorldConfig::small(1)).build();
    let scenario = &study.scenario;
    let reports = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    let world = &scenario.world;
    let mut remote = 0usize;
    let mut local = 0usize;
    for r in &reports {
        for asn in r.affected_near.union(&r.affected_far) {
            if let Some(node) = world.node(*asn) {
                if node.info.home_city == study.city {
                    local += 1;
                } else {
                    remote += 1;
                }
            }
        }
    }
    assert!(remote > 0, "some affected ASes are remote (local={local}, remote={remote})");
}

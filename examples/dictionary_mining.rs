//! Community-dictionary mining (paper §3.2): render operator documentation
//! from ground-truth schemes, mine it back with the gazetteer-NER pipeline,
//! and validate the result — including the attrition comparison against an
//! "older" dictionary.
//!
//! ```sh
//! cargo run --release --example dictionary_mining
//! ```

use kepler::docmine::attrition::compare;
use kepler::docmine::corpus::render_corpus;
use kepler::docmine::dictionary::{dictionary_from_schemes, validate, DictionaryMiner};
use kepler::netsim::world::{World, WorldConfig};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(13u64);
    let world = World::generate(WorldConfig::small(seed));
    let colo = world.detector_colomap();

    // Render the documentation corpus the way IRR remarks / support pages
    // would publish it.
    let corpus = render_corpus(&world.schemes, seed);
    println!(
        "corpus: {} documents from {} schemes ({} documented)",
        corpus.len(),
        world.schemes.len(),
        world.schemes.iter().filter(|s| s.documented).count()
    );
    println!("\n--- sample document ---");
    for line in corpus[0].text.lines().take(8) {
        println!("{line}");
    }
    println!("-----------------------\n");

    // Mine it.
    let miner = DictionaryMiner::new(&colo, &world.gazetteer);
    let (mut dict, stats) = miner.mine(&corpus);
    dict.add_route_servers_from(&colo);
    println!(
        "mining: {} lines scanned, {} outbound dropped, {} unrecognized, {} admitted",
        stats.lines, stats.outbound_dropped, stats.unrecognized, stats.admitted
    );

    // Dictionary statistics (paper's §3.2 table).
    let dstats = dict.stats(&world.gazetteer, &colo);
    println!("\ndictionary statistics:");
    println!("  communities:   {}", dstats.communities);
    println!("  tagging ASes:  {}", dstats.ases);
    println!("  route servers: {}", dstats.route_servers);
    println!("  cities:        {} in {} countries", dstats.cities, dstats.countries);
    println!("  IXPs:          {}", dstats.ixps);
    println!("  facilities:    {}", dstats.facilities);

    // Validation against ground truth.
    let report = validate(&dict, &world.schemes);
    println!(
        "\nvalidation vs ground truth: {} exact, {} wrong tag, {} spurious, {} missed",
        report.true_positives, report.wrong_tag, report.false_positives, report.false_negatives
    );
    println!("  precision {:.3}, recall {:.3}", report.precision(), report.recall());

    // Attrition: compare with an "older" dictionary — a world generated
    // with lower community adoption stands in for Donnet & Bonaventure's
    // 2008 snapshot.
    let mut older_cfg = WorldConfig::small(seed);
    older_cfg.documentation_rate = 0.4;
    let old_world = World::generate(older_cfg);
    let old_dict = dictionary_from_schemes(&old_world.schemes, false);
    let att = compare(&old_dict, &dict);
    println!("\nattrition vs the older dictionary:");
    println!("  old size {}, new size {}", att.old_size, att.new_size);
    println!(
        "  shared {}, meaning changed {} ({:.1}%)",
        att.shared,
        att.changed_meaning,
        att.meaning_change_rate() * 100.0
    );
    println!("  retired {}, newly adopted {}", att.retired, att.adopted);
}

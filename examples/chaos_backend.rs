//! Fault-tolerant measurement backend demo: the colocation-twin study
//! run against a backend that drops ~30% of probes, blows deadlines,
//! truncates and duplicates hop lists, churns vantages and browns out
//! entirely around the outage onset — then a recorded campaign replayed
//! bit-identically from its serialized transcript.
//!
//! ```sh
//! cargo run --release --example chaos_backend [seed] [--transcript FILE]
//! ```

use kepler::core::KeplerConfig;
use kepler::glue::{detector_with_faulty_prober, recording_prober_for, vantage_registry_for};
use kepler::netsim::scenario::twin::TwinFacilityScenario;
use kepler::netsim::FaultConfig;
use kepler::probe::{ProbeEngine, ProbeEngineConfig, ProbeRequest, Prober, ReplayBackend};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = args.first().and_then(|s| s.parse().ok()).unwrap_or(5u64);
    let transcript_out =
        args.iter().position(|a| a == "--transcript").and_then(|i| args.get(i + 1)).cloned();

    let study = TwinFacilityScenario::new(seed).build();
    let scenario = &study.scenario;
    println!(
        "twin study seed {seed}: facility {} fails at t={} for {}s (twin {} stays up)",
        study.down.0, study.outage_start, study.outage_duration, study.twin.0
    );

    // --- 1. The detector under chaos. -----------------------------------
    let fault = FaultConfig::chaos(seed)
        .with_brownout(study.outage_start.saturating_sub(600), study.outage_start + 3_600);
    println!(
        "\nfault profile: drop {:.0}%, delay {:.0}%, truncate {:.0}%, duplicate {:.0}%, \
         churn {:.0}%, brownout [{}, {})",
        fault.drop_rate * 100.0,
        fault.delay_rate * 100.0,
        fault.truncate_rate * 100.0,
        fault.duplicate_rate * 100.0,
        fault.churn_rate * 100.0,
        study.outage_start.saturating_sub(600),
        study.outage_start + 3_600,
    );
    let mut detector = detector_with_faulty_prober(scenario, KeplerConfig::default(), fault);
    for rec in scenario.records() {
        detector.process_record_owned(rec);
    }
    let reports = detector.finalize();
    let counts = detector.class_counts();
    println!("\ndetector survived the chaos: {} report(s)", reports.len());
    for r in &reports {
        println!("  {r}  (campaign completeness {:.2})", r.probe_completeness);
    }
    println!(
        "counts: probe-confirmed {}, degraded-to-passive {}, re-validated after recovery {}, \
         probe-closed {}",
        counts.probe_confirmed,
        counts.degraded_passive,
        counts.deferred_revalidated,
        counts.probe_closed,
    );

    // --- 2. Record a campaign, replay it bit-identically. ----------------
    let request = ProbeRequest {
        pop: kepler::docmine::LocationTag::City(study.city),
        bin_start: study.outage_start + 600,
        candidates: vec![study.down, study.twin],
        affected_far: scenario
            .world
            .colo
            .members_of_facility(study.down)
            .iter()
            .copied()
            .take(10)
            .collect(),
        affected_near: Vec::new(),
    };
    let mut recorder =
        recording_prober_for(scenario, ProbeEngineConfig::default(), FaultConfig::chaos(seed));
    let live = recorder.validate(&request, request.bin_start);
    let text = recorder.backend().transcript.serialize();
    println!(
        "\nrecorded campaign: {} verdict(s), completeness {:.2}, {} retries, {} timeouts, \
         transcript {} entries / {} bytes",
        live.verdicts.len(),
        live.completeness,
        live.retries,
        live.timeouts,
        recorder.backend().transcript.len(),
        text.len(),
    );
    if let Some(path) = transcript_out {
        std::fs::write(&path, &text).expect("write transcript");
        println!("transcript written to {path}");
    }
    let parsed = kepler::probe::CampaignTranscript::parse(&text).expect("transcript round-trips");
    let mut replayer = ProbeEngine::with_async(
        ReplayBackend::new(parsed),
        vantage_registry_for(&scenario.world),
        scenario.detector_colo(),
        ProbeEngineConfig::default(),
    );
    let replayed = replayer.validate(&request, request.bin_start);
    assert_eq!(live, replayed, "replay diverged from the recorded campaign");
    println!("replayed from transcript alone: bit-identical to the live campaign");
}

//! The London July 2016 dual-outage disambiguation case (paper §6.2,
//! Figures 9a–b): two facility outages a day apart, both visible through a
//! bystander facility's tag and the exchange, plus an unrelated AS-level
//! event in between. Kepler must name the right buildings.
//!
//! ```sh
//! cargo run --release --example london_disambiguation
//! ```

use kepler::core::KeplerConfig;
use kepler::docmine::LocationTag;
use kepler::glue::detector_for;
use kepler::netsim::scenario::london::LondonScenario;
use kepler::netsim::world::WorldConfig;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3u64);
    let study = LondonScenario::new(seed).with_config(WorldConfig::small(seed)).build();
    let scenario = &study.scenario;
    let world = &scenario.world;
    let name = |f| world.colo.facility(f).map(|f| f.name.clone()).unwrap_or_default();

    println!(
        "the cast (all in {}):",
        world.gazetteer.by_index(study.city.0 as usize).unwrap().name
    );
    println!("  epicenter A (day 1): {}", name(study.tc_hex));
    println!("  epicenter C (day 2): {}", name(study.th_north));
    println!("  bystander:           {}", name(study.th_east));
    println!("  exchange:            {}", world.colo.ixp(study.linx).unwrap().name);
    println!("  time-B actor:        {}", study.rerouting_as);

    // Watch the three aggregations of Figure 9a.
    let mut detector = detector_for(scenario, KeplerConfig::default());
    let east_tag = LocationTag::Facility(study.th_east);
    let linx_tag = LocationTag::Ixp(study.linx);
    let city_tag = LocationTag::City(study.city);
    for tag in [east_tag, linx_tag, city_tag] {
        detector.watch(tag);
    }
    for r in scenario.records() {
        detector.process_record(&r);
    }

    println!("\npath-change fractions through the bystander views:");
    println!("{:>12} {:>9} {:>9} {:>9}", "time", "TH-East", "IXP", "city");
    let all: Vec<_> = [east_tag, linx_tag, city_tag]
        .iter()
        .map(|t| detector.watch_series(*t).unwrap_or(&[]).to_vec())
        .collect();
    let mut rows: std::collections::BTreeMap<u64, [f64; 3]> = std::collections::BTreeMap::new();
    for (i, s) in all.iter().enumerate() {
        for (t, f) in s {
            if *f > 0.0 {
                rows.entry(*t).or_insert([0.0; 3])[i] = *f;
            }
        }
    }
    for (t, v) in &rows {
        let label = if t.abs_diff(study.time_a) < 600 {
            "(A)"
        } else if t.abs_diff(study.time_b) < 600 {
            "(B)"
        } else if t.abs_diff(study.time_c) < 600 {
            "(C)"
        } else {
            ""
        };
        println!("{:>12} {:>9.3} {:>9.3} {:>9.3} {label}", t, v[0], v[1], v[2]);
    }

    let reports = detector.finish();
    println!(
        "\ndetected outages (times A={} B={} C={}):",
        study.time_a, study.time_b, study.time_c
    );
    for r in &reports {
        let what = match r.scope {
            kepler::core::events::OutageScope::Facility(f) => name(f),
            kepler::core::events::OutageScope::Ixp(x) => {
                world.colo.ixp(x).map(|x| x.name.clone()).unwrap_or_default()
            }
            kepler::core::events::OutageScope::City(c) => world
                .gazetteer
                .by_index(c.0 as usize)
                .map(|c| c.name.to_string())
                .unwrap_or_default(),
        };
        println!("  {r}  <- {what}");
    }

    // Figure 9c flavor: how far from the epicenter are the affected ASes?
    let epicenter = world.gazetteer.by_index(study.city.0 as usize).unwrap().point;
    let mut local = 0;
    let mut far = Vec::new();
    for r in &reports {
        for asn in r.affected_near.union(&r.affected_far) {
            let Some(node) = world.node(*asn) else { continue };
            let home = world.gazetteer.by_index(node.info.home_city.0 as usize).unwrap();
            let km = epicenter.distance_km(&home.point);
            if km < 50.0 {
                local += 1;
            } else {
                far.push((km, node.info.name.clone()));
            }
        }
    }
    far.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    println!("\nremote impact: {local} affected ASes are local, {} are remote:", far.len());
    for (km, who) in far.iter().rev().take(8) {
        println!("  {km:>7.0} km away: {who}");
    }
}

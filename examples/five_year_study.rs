//! The 2012–2016 historical study (paper §6.1, Figure 1): run Kepler over
//! five simulated years of BGP data and compare what it detects with what
//! the public mailing lists would have reported.
//!
//! ```sh
//! cargo run --release --example five_year_study            # compact
//! cargo run --release --example five_year_study -- full    # paper-shaped counts
//! ```

use kepler::core::events::OutageScope;
use kepler::core::metrics::evaluate;
use kepler::core::KeplerConfig;
use kepler::glue::{detector_for, truth_outages_observed};
use kepler::netsim::scenario::five_year::{build, FiveYearConfig, STUDY_START};

fn main() {
    let full = std::env::args().any(|a| a == "full");
    let seed = 31u64;
    let cfg = if full { FiveYearConfig::standard(seed) } else { FiveYearConfig::compact(seed) };
    println!(
        "building five-year scenario ({} facility + {} IXP outages, {} background events)...",
        cfg.facility_outages + cfg.sandy_cluster,
        cfg.ixp_outages,
        cfg.depeerings + cfg.member_leaves + cfg.operator_events
    );
    let scenario = build(cfg);
    println!("stream: {} records", scenario.output.records.len());

    let config = KeplerConfig::default();
    let mut detector = detector_for(&scenario, config.clone());
    for r in scenario.records() {
        detector.process_record(&r);
    }
    let truth = truth_outages_observed(&scenario, &config, &mut detector);
    let counts = detector.class_counts();
    let reports = detector.finish();

    // Figure 1: detections vs public reports per semester.
    let reported = scenario.reported();
    let semester = |t: u64| (t.saturating_sub(STUDY_START)) / (182 * 86_400);
    let mut bins: std::collections::BTreeMap<u64, (usize, usize, usize)> = Default::default();
    for r in &reports {
        let e = bins.entry(semester(r.start)).or_default();
        match r.scope {
            OutageScope::Ixp(_) => e.1 += 1,
            _ => e.0 += 1,
        }
    }
    for rep in &reported {
        if let Some(gt) = scenario.output.ground_truth.iter().find(|g| g.id == rep.event_id) {
            bins.entry(semester(gt.start)).or_default().2 += 1;
        }
    }
    println!("\nFigure 1 — detected vs reported infrastructure outages per semester:");
    println!("{:>9} {:>10} {:>6} {:>9}", "semester", "facilities", "IXPs", "reported");
    for (s, (fac, ixp, rep)) in &bins {
        println!(
            "{:>9} {:>10} {:>6} {:>9}",
            format!("{}H{}", 2012 + s / 2, 1 + s % 2),
            fac,
            ixp,
            rep
        );
    }
    let detected = reports.len();
    println!(
        "\ntotals: {} detected vs {} publicly reported ({:.1}x)",
        detected,
        reported.len(),
        detected as f64 / reported.len().max(1) as f64
    );

    // §5.3-style validation.
    let eval = evaluate(&reports, &truth, 1800);
    println!(
        "\nvalidation: {} TP, {} FP, {} FN — precision {:.2}, recall {:.2}",
        eval.true_positives,
        eval.false_positives,
        eval.false_negatives,
        eval.precision(),
        eval.recall()
    );
    println!(
        "signal classification over the run: {} link-level, {} AS-level, {} operator-level, {} PoP-level",
        counts.link_level, counts.as_level, counts.operator_level, counts.pop_level
    );

    // Figure 8b flavor: duration distribution of detections.
    let mut durations: Vec<u64> = reports.iter().filter_map(|r| r.duration()).collect();
    durations.sort_unstable();
    if !durations.is_empty() {
        let med = durations[durations.len() / 2];
        let over_hour = durations.iter().filter(|&&d| d > 3600).count();
        println!(
            "\ndurations: median {} min, {}/{} over an hour",
            med / 60,
            over_hour,
            durations.len()
        );
    }
}

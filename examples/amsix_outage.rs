//! The AMS-IX May 2015 case study (paper §6.2–6.3): a 10-minute outage of
//! the largest exchange, watched through three community granularities,
//! confirmed in the data plane, with RTT impact and remote-IXP traffic dip.
//!
//! ```sh
//! cargo run --release --example amsix_outage
//! ```

use kepler::core::KeplerConfig;
use kepler::docmine::LocationTag;
use kepler::glue::detector_for;
use kepler::netsim::dataplane::DataplaneSim;
use kepler::netsim::scenario::amsix::{AmsIxScenario, OUTAGE_DURATION, OUTAGE_START};
use kepler::netsim::traffic::TrafficSim;
use kepler::netsim::world::WorldConfig;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(7u64);
    let study = AmsIxScenario::new(seed).with_config(WorldConfig::small(seed)).build();
    let scenario = &study.scenario;
    let world = &scenario.world;
    let ixp_name = world.colo.ixp(study.amsix).unwrap().name.clone();
    println!(
        "case study: outage of {ixp_name} ({} members) at t={OUTAGE_START} for {OUTAGE_DURATION}s",
        world.colo.members_of_ixp(study.amsix).len()
    );

    // Control plane: watch the three aggregation granularities (Fig 8c).
    let mut detector = detector_for(scenario, KeplerConfig::default());
    let fac_tag = LocationTag::Facility(study.sara_facility);
    let ixp_tag = LocationTag::Ixp(study.amsix);
    let city_tag = LocationTag::City(world.colo.ixp(study.amsix).unwrap().city);
    for tag in [fac_tag, ixp_tag, city_tag] {
        detector.watch(tag);
    }
    for r in scenario.records() {
        detector.process_record(&r);
    }
    println!("\npath-change fraction by community granularity (around the outage):");
    println!("{:>10} {:>10} {:>10} {:>10}", "t-rel(s)", "facility", "ixp", "city");
    let series: Vec<_> = [fac_tag, ixp_tag, city_tag]
        .iter()
        .map(|t| detector.watch_series(*t).unwrap_or(&[]).to_vec())
        .collect();
    let window = (OUTAGE_START - 600)..(OUTAGE_START + OUTAGE_DURATION + 900);
    let mut rows: std::collections::BTreeMap<u64, [f64; 3]> = std::collections::BTreeMap::new();
    for (i, s) in series.iter().enumerate() {
        for (t, f) in s {
            if window.contains(t) {
                rows.entry(*t).or_insert([0.0; 3])[i] = *f;
            }
        }
    }
    for (t, v) in &rows {
        println!(
            "{:>10} {:>10.3} {:>10.3} {:>10.3}",
            *t as i64 - OUTAGE_START as i64,
            v[0],
            v[1],
            v[2]
        );
    }
    let reports = detector.finish();
    println!("\ndetected outages:");
    for r in &reports {
        println!("  {r}");
    }

    // Data plane: traceroute view (Fig 10b) and RTT impact (Fig 10c).
    let dp = DataplaneSim::new(world, &scenario.timeline, seed);
    let pairs = dp.default_pairs(200);
    let crossing = |t: u64| {
        let paths = dp.campaign(&pairs, t);
        paths.iter().filter(|p| p.crosses_ixp(study.amsix)).count()
    };
    let before = crossing(OUTAGE_START - 1200);
    println!("\ntraceroute paths crossing {ixp_name}:");
    for (label, t) in [
        ("before", OUTAGE_START - 1200),
        ("during", OUTAGE_START + 300),
        ("+20min", OUTAGE_START + OUTAGE_DURATION + 1200),
        ("+1h", OUTAGE_START + OUTAGE_DURATION + 3600),
        ("+4h", OUTAGE_START + OUTAGE_DURATION + 4 * 3600),
    ] {
        let n = crossing(t);
        println!(
            "  {label:>7}: {n:>4} ({:.0}% of baseline)",
            100.0 * n as f64 / before.max(1) as f64
        );
    }

    // RTT distribution for baseline-crossing pairs (Fig 10c).
    let base_paths = dp.campaign(&pairs, OUTAGE_START - 1200);
    let amsix_pairs: Vec<_> =
        base_paths.iter().filter(|p| p.crosses_ixp(study.amsix)).map(|p| p.pair).collect();
    let median = |mut v: Vec<f64>| -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let rtts = |t: u64| -> Vec<f64> {
        dp.campaign(&amsix_pairs, t).iter().filter_map(|p| p.rtt_ms()).collect()
    };
    println!("\nmedian RTT of {ixp_name}-crossing pairs:");
    println!("  before: {:>7.1} ms", median(rtts(OUTAGE_START - 1200)));
    println!("  during: {:>7.1} ms", median(rtts(OUTAGE_START + 300)));
    println!("  after:  {:>7.1} ms", median(rtts(OUTAGE_START + OUTAGE_DURATION + 1200)));

    // Remote impact: traffic at the second exchange (Fig 10d).
    let ts = TrafficSim::new(world, study.eu_ixp, study.amsix, seed);
    let eu_name = world.colo.ixp(study.eu_ixp).unwrap().name.clone();
    println!("\nIPv4 traffic at remote {eu_name} (Gbps):");
    let series = ts.series(
        OUTAGE_START - 1500,
        OUTAGE_START + 3000,
        300,
        OUTAGE_START,
        OUTAGE_START + OUTAGE_DURATION,
    );
    for p in &series {
        println!("  t{:+6}s {:>9.1}", p.time as i64 - OUTAGE_START as i64, p.gbps);
    }
    let impact = ts.impact_summary(OUTAGE_START, OUTAGE_START + OUTAGE_DURATION);
    println!(
        "  {} of {} members lose traffic; top-25 losers carry {:.0}% of the loss",
        impact.members_losing,
        impact.members,
        impact.top25_share * 100.0
    );
}

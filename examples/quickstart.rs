//! Quickstart: build a small synthetic Internet, fail its busiest
//! facility, and let Kepler find the outage from BGP communities alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kepler::core::KeplerConfig;
use kepler::glue::{detector_for, truth_outages};
use kepler::netsim::engine::{CollectorSetup, Simulation};
use kepler::netsim::events::{EventKind, ScheduledEvent};
use kepler::netsim::scenario::Scenario;
use kepler::netsim::world::{World, WorldConfig};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(42u64);

    // 1. Generate a world: facilities, IXPs, ASes, peering, communities.
    let world = World::generate(WorldConfig::tiny(seed));
    println!(
        "world: {} ASes, {} facilities, {} IXPs, {} prefixes, {} adjacencies",
        world.ases.len(),
        world.colo.facilities().len(),
        world.colo.ixps().len(),
        world.prefixes.len(),
        world.adjacencies.len()
    );

    // 2. Find a *trackable* building — one whose member interconnections
    //    the community dictionary can actually locate from the vantage
    //    points (the paper's ≥3 near-end + ≥3 far-end rule) — and schedule
    //    an outage there, two days into the stream (Kepler needs two days
    //    to form its stable baseline).
    let survey = kepler::glue::survey_trackable_facilities(&world, seed);
    let (fac_id, nears, fars) = survey[0];
    let facility = world.colo.facility(fac_id).expect("facility exists").clone();
    println!(
        "scheduling outage: {} ({} members; observed coverage {} near / {} far ASes) for 30 minutes",
        facility.name,
        world.colo.members_of_facility(facility.id).len(),
        nears,
        fars
    );
    let start = 1_400_000_000u64;
    let outage_at = start + 2 * 86_400 + 3 * 3600;
    let timeline = vec![ScheduledEvent {
        start: outage_at,
        duration: 1800,
        kind: EventKind::FacilityOutage { facility: facility.id, affected_fraction: 1.0 },
    }];

    // 3. Emit the multi-collector BGP stream.
    let setup = CollectorSetup::default_for(&world, 4, 32, seed);
    let output = Simulation::new(&world, setup, start, seed).run(&timeline, outage_at + 86_400);
    println!(
        "emitted {} BGP records across {} collectors",
        output.records.len(),
        output.collector_names.len()
    );

    let scenario = Scenario { world, output, timeline, start, end: outage_at + 86_400, seed };

    // 4. Run Kepler: mined dictionary + merged colocation map + monitoring.
    let config = KeplerConfig::default();
    let detector = detector_for(&scenario, config.clone());
    let reports = detector.run(scenario.records());

    println!("\ndetected {} outage(s):", reports.len());
    for r in &reports {
        let name = match r.scope {
            kepler::core::events::OutageScope::Facility(f) => {
                scenario.world.colo.facility(f).map(|f| f.name.clone()).unwrap_or_default()
            }
            kepler::core::events::OutageScope::Ixp(x) => {
                scenario.world.colo.ixp(x).map(|x| x.name.clone()).unwrap_or_default()
            }
            kepler::core::events::OutageScope::City(c) => scenario
                .world
                .gazetteer
                .by_index(c.0 as usize)
                .map(|c| c.name.to_string())
                .unwrap_or_default(),
        };
        println!("  {r}  <- {name}");
    }

    // 5. Score against ground truth.
    let truth = truth_outages(&scenario, &config);
    let eval = kepler::core::metrics::evaluate(&reports, &truth, 900);
    println!(
        "\nevaluation: {} TP, {} FP, {} FN (precision {:.2}, recall {:.2})",
        eval.true_positives,
        eval.false_positives,
        eval.false_negatives,
        eval.precision(),
        eval.recall()
    );
}

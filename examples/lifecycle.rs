//! The incident lifecycle end-to-end: Open → Recovering → Closed.
//!
//! A colocation twin goes dark for two hours and is then repaired. The
//! detector runs with the full lifecycle machinery — targeted validation
//! probes (disambiguating the twins), cross-bin evidence accumulation,
//! and restoration re-probes on an exponential backoff — and this example
//! prints the observed state transitions plus the final reports, next to
//! a passive-only run for comparison.
//!
//! ```sh
//! cargo run --release --example lifecycle [seed]
//! ```
//!
//! Exits non-zero unless the injected outage walks the full lifecycle
//! (observed Open, observed Recovering, final report Closed) without any
//! premature close — CI runs this as a smoke test.

use kepler::core::events::{IncidentState, OutageScope};
use kepler::core::KeplerConfig;
use kepler::glue::{detector_for, detector_with_lifecycle};
use kepler::netsim::scenario::twin::TwinFacilityScenario;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3u64);
    let study = TwinFacilityScenario::new(seed).build();
    let scenario = &study.scenario;
    let world = &scenario.world;
    let name = |f| world.colo.facility(f).map(|f| f.name.clone()).unwrap_or_default();
    let repair = study.outage_start + study.outage_duration;
    println!("the stage ({}):", world.gazetteer.cities()[study.city.0 as usize].name);
    println!("  dark  {} .. {} (2h): {}", study.outage_start, repair, name(study.down));
    println!("  up throughout:           {}", name(study.twin));

    let names_down = |scope: OutageScope| match scope {
        OutageScope::Facility(f) => f == study.down,
        OutageScope::City(c) => c == study.city,
        OutageScope::Ixp(_) => false,
    };

    println!("\nlifecycle run (validation + restoration probes):");
    let mut detector = detector_with_lifecycle(scenario, KeplerConfig::default());
    let mut transitions: Vec<(u64, IncidentState)> = Vec::new();
    for r in scenario.records() {
        let t = r.time;
        detector.process_record_owned(r);
        for (scope, state) in detector.incident_states() {
            if names_down(scope) && transitions.last().map(|(_, s)| *s != state).unwrap_or(true) {
                transitions.push((t, state));
            }
        }
    }
    for (t, state) in &transitions {
        println!("  t{:+7}s (rel. repair) -> {state}", *t as i64 - repair as i64);
    }
    let reports = detector.finalize();
    let counts = detector.class_counts(); // includes trailing-flush closes
    for r in &reports {
        println!("  {r}");
    }
    println!(
        "  counters: probe_confirmed {}, evidence_reused {}, probe_closed {}",
        counts.probe_confirmed, counts.evidence_reused, counts.probe_closed
    );

    println!("\npassive-only run (BGP restoration alone):");
    let passive = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    for r in &passive {
        println!("  {r}");
    }
    let passive_end = passive.iter().filter(|r| names_down(r.scope)).filter_map(|r| r.end).min();
    let probed_end = reports.iter().filter(|r| names_down(r.scope)).filter_map(|r| r.end).min();
    if let (Some(p), Some(e)) = (passive_end, probed_end) {
        println!(
            "\nclose times (rel. repair): probe-driven {:+}s vs BGP {:+}s",
            e as i64 - repair as i64,
            p as i64 - repair as i64
        );
    }

    // Smoke assertions (CI).
    let saw_open = transitions.iter().any(|(_, s)| *s == IncidentState::Open);
    let saw_recovering = transitions.iter().any(|(_, s)| *s == IncidentState::Recovering);
    assert!(saw_open, "the outage was never observed Open: {transitions:?}");
    assert!(saw_recovering, "restoration was never observed: {transitions:?}");
    for (t, state) in &transitions {
        assert!(
            *state == IncidentState::Open || *t >= repair,
            "premature {state} at {t} (repair {repair})"
        );
    }
    let closed = reports.iter().any(|r| {
        names_down(r.scope)
            && r.state == IncidentState::Closed
            && r.end.map(|e| e >= repair).unwrap_or(false)
    });
    assert!(closed, "no Closed report near the repair: {reports:?}");
    println!("\nlifecycle OK: Open -> Recovering -> Closed, no premature close");
}

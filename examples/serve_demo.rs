//! The serve daemon end-to-end over a flapping facility.
//!
//! A fuzz-generated world flaps one building down/up for several cycles.
//! The daemon ingests the BGP stream on its bin clock, commits every
//! closed bin to a WAL-backed store, fans lifecycle alerts out through
//! two rate-limited channels, and publishes an O(1) status view that
//! this example queries **mid-outage**, concurrently with ingest.
//!
//! ```sh
//! cargo run --release --example serve_demo [seed]
//! ```
//!
//! Exits non-zero unless (a) a mid-outage query saw the epicenter down
//! while the truth window was open, (b) the captured alert stream is in
//! lifecycle order (Opened first; Recovering only out of Open; Reopened
//! only out of Recovering; nothing after the run's close) with
//! non-decreasing bin stamps, and (c) the run ends with the incident
//! closed — CI runs this as a smoke test.

use kepler::core::events::{IncidentState, OutageScope};
use kepler::core::KeplerConfig;
use kepler::glue::detector_with_lifecycle;
use kepler::netsim::fuzz;
use kepler::serve::store::TransitionKind;
use kepler::serve::{Alert, CallbackSink, Channel, Daemon, DaemonConfig, FileSink, TokenBucket};
use std::sync::{Arc, Mutex};

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(13u64);
    let fw = fuzz::flapping(seed);
    let script = &fw.script;
    let (truth_start, truth_end) = script.script.window();
    let epicenters = script.script.epicenters();
    println!("world (fuzz seed {seed}): {}", script.render().lines().next().unwrap_or(""));
    println!("  flapping facility {:?}, truth window {truth_start} .. {truth_end}", epicenters);

    // Blame may land on the building or be abstracted to its metro.
    let names_epicenter = |scope: OutageScope| match scope {
        OutageScope::Facility(f) => epicenters.contains(&f),
        OutageScope::City(c) => c == fw.city,
        OutageScope::Ixp(_) => false,
    };

    // The script prescribes the hysteresis that rides the flap as one
    // Open <-> Recovering lifecycle instead of N separate incidents.
    let config = KeplerConfig::default().with_hysteresis(script.open_after, script.close_after);

    let dir = std::env::temp_dir().join(format!("kepler-serve-demo-{seed}"));
    let _ = std::fs::remove_dir_all(&dir);
    let mut daemon =
        Daemon::new(detector_with_lifecycle(&fw.scenario, config), &DaemonConfig::new(dir.clone()))
            .expect("store open");

    // Channel 1: capture every alert (generous bucket) for the ordering
    // assertions below.
    let captured: Arc<Mutex<Vec<Alert>>> = Arc::new(Mutex::new(Vec::new()));
    let sink_log = Arc::clone(&captured);
    daemon.add_channel(Channel::new(
        "capture",
        Box::new(CallbackSink(move |a: &Alert| sink_log.lock().unwrap().push(a.clone()))),
        TokenBucket::new(1024, 1),
    ));
    // Channel 2: a deliberately slow pager-style channel (1 alert/min,
    // burst 2) writing to a file — flap storms coalesce here.
    daemon.add_channel(Channel::new(
        "pager",
        Box::new(FileSink::new(dir.join("pager.log"))),
        TokenBucket::new(2, 60),
    ));

    // Ingest record-by-record, querying the shared view mid-stream the
    // way an operator dashboard would.
    let view = daemon.view();
    let mut saw_down_mid_outage = false;
    let mut mid_outage_status = None;
    for rec in fw.scenario.records() {
        let now = rec.time;
        daemon.ingest(rec).expect("ingest");
        if now >= truth_start && now <= truth_end {
            let v = view.load();
            if let Some(s) = v.live().into_iter().find(|s| names_epicenter(s.scope)) {
                saw_down_mid_outage = true;
                if mid_outage_status.is_none() {
                    mid_outage_status = Some(s.clone());
                    println!(
                        "\nmid-outage query at t{:+}s (rel. flap start): {} is {} since {}",
                        now as i64 - truth_start as i64,
                        s.scope,
                        s.state,
                        s.started
                    );
                }
            }
        }
    }
    let (reports, summary) = daemon.finish().expect("finish");

    println!(
        "\nrun: {} events, {} commits, {} transitions",
        summary.events, summary.commits, summary.transitions
    );
    for r in &reports {
        println!("  {r}");
    }

    let alerts = captured.lock().unwrap();
    println!("\nalert stream ({} delivered on 'capture'):", alerts.len());
    for a in alerts.iter().filter(|a| names_epicenter(a.transition.scope)) {
        println!("  {a}");
    }
    let pager = std::fs::read_to_string(dir.join("pager.log")).unwrap_or_default();
    println!("pager channel delivered {} lines (rate-limited)", pager.lines().count());

    // Smoke assertions (CI).
    assert!(
        saw_down_mid_outage,
        "the query surface never showed the epicenter down inside the truth window"
    );

    // Alert ordering: the epicenter's lifecycle must be well-formed.
    let kinds: Vec<TransitionKind> = alerts
        .iter()
        .filter(|a| names_epicenter(a.transition.scope))
        .map(|a| a.transition.kind)
        .collect();
    assert!(!kinds.is_empty(), "no alerts for the epicenter");
    assert_eq!(kinds[0], TransitionKind::Opened, "lifecycle must start Opened: {kinds:?}");
    let mut prev = kinds[0];
    for &k in &kinds[1..] {
        let legal = match k {
            TransitionKind::Opened => prev == TransitionKind::Closed,
            TransitionKind::Recovering => {
                prev == TransitionKind::Opened || prev == TransitionKind::Reopened
            }
            TransitionKind::Reopened => prev == TransitionKind::Recovering,
            TransitionKind::Closed => prev != TransitionKind::Closed,
        };
        assert!(legal, "illegal alert transition {prev:?} -> {k:?} in {kinds:?}");
        prev = k;
    }
    // Bin stamps never run backwards across the whole stream.
    for w in alerts.windows(2) {
        assert!(
            w[0].transition.at <= w[1].transition.at,
            "alert stamps regressed: {} then {}",
            w[0].transition.at,
            w[1].transition.at
        );
    }

    // The run must end with the flap resolved: a closed report naming
    // the epicenter, and no live incident left in the final view.
    let closed =
        reports.iter().any(|r| names_epicenter(r.scope) && r.state == IncidentState::Closed);
    assert!(closed, "no Closed report for the epicenter: {reports:?}");
    assert!(view.load().live().is_empty(), "live incidents survived finish");

    let _ = std::fs::remove_dir_all(&dir);
    println!("\nserve demo OK: mid-outage queries answered, alerts in lifecycle order");
}

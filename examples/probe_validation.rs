//! Active-measurement validation end-to-end: the colocation-twin case.
//!
//! Two facilities in one metro carry identical colocation records and
//! only city-granularity community tags. When one goes dark, passive
//! inference cannot name the building — the affected far-ends are
//! contained in both candidates and neither clears the 95% rule. The
//! probe subsystem (`kepler-probe`) disambiguates: targeted traceroutes
//! show baseline paths through the dark building gone while the twin
//! keeps forwarding.
//!
//! ```sh
//! cargo run --release --example probe_validation [seed]
//! ```
//!
//! Exits non-zero unless probing resolves the correct building with a
//! confirmed validation status — CI runs this as a smoke test.

use kepler::core::events::{OutageScope, ValidationStatus};
use kepler::core::KeplerConfig;
use kepler::glue::{detector_for, detector_with_prober};
use kepler::netsim::scenario::twin::TwinFacilityScenario;

fn main() {
    let seed = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3u64);
    let study = TwinFacilityScenario::new(seed).build();
    let scenario = &study.scenario;
    let world = &scenario.world;
    let name = |f| world.colo.facility(f).map(|f| f.name.clone()).unwrap_or_default();

    println!(
        "the twins (both in {}, identical colocation records):",
        world.gazetteer.cities()[study.city.0 as usize].name
    );
    println!("  goes dark at {}: {}", study.outage_start, name(study.down));
    println!("  stays up:          {}", name(study.twin));

    println!("\npassive-only run:");
    let passive = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    for r in &passive {
        println!("  {r}");
    }
    let passive_named = passive
        .iter()
        .any(|r| r.scope == OutageScope::Facility(study.down) && near(r.start, study.outage_start));
    println!(
        "  -> passive localization {} the dark building",
        if passive_named { "named (this seed got lucky)" } else { "could not name" }
    );

    println!("\nwith targeted probes (with_prober):");
    let probed = detector_with_prober(scenario, KeplerConfig::default()).run(scenario.records());
    for r in &probed {
        println!("  {r}");
        for e in r.probe_evidence.iter().take(6) {
            println!(
                "      evidence: {} -> {} crossed {} at hop {} pre-event; post: {:?}",
                e.vantage,
                e.target,
                name(e.facility),
                e.pre_hop,
                e.post
            );
        }
        if r.probe_evidence.len() > 6 {
            println!("      ... and {} more pairs", r.probe_evidence.len() - 6);
        }
    }

    let resolved = probed.iter().find(|r| {
        r.scope == OutageScope::Facility(study.down)
            && near(r.start, study.outage_start)
            && r.validation == ValidationStatus::Confirmed
    });
    match resolved {
        Some(r) => {
            assert!(!r.probe_evidence.is_empty(), "confirmed reports carry hop evidence");
            println!(
                "\nprobing resolved the outage to {} with {} hop-evidence pairs",
                name(study.down),
                r.probe_evidence.len()
            );
        }
        None => {
            eprintln!("\nFAILED: probing did not confirm the dark building\n{probed:#?}");
            std::process::exit(1);
        }
    }
    // Suppressed twin: no report may blame the healthy building.
    if probed.iter().any(|r| r.scope == OutageScope::Facility(study.twin)) {
        eprintln!("FAILED: the healthy twin was blamed\n{probed:#?}");
        std::process::exit(1);
    }
}

fn near(a: u64, b: u64) -> bool {
    a.abs_diff(b) <= 900
}

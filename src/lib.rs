//! # Kepler — detecting peering infrastructure outages in the wild
//!
//! Umbrella crate re-exporting the whole Kepler workspace: a reproduction of
//! Giotsas et al., *"Detecting Peering Infrastructure Outages in the Wild"*
//! (ACM SIGCOMM 2017).
//!
//! Kepler locates outages of colocation facilities and Internet exchange
//! points (IXPs) down to the level of a building, purely from passive BGP
//! control-plane data, by monitoring **location-encoding BGP communities**
//! and correlating routing deviations with a **colocation map**.
//!
//! The workspace is organized bottom-up:
//!
//! * [`bgp`] — BGP protocol substrate (prefixes, AS paths, communities,
//!   UPDATE messages, the MRT binary archive format).
//! * [`bgpstream`] — multi-collector record streams merged into one
//!   time-sorted feed, as provided by the BGPStream framework.
//! * [`topology`] — the colocation map: facilities, IXPs, organizations,
//!   and the merging of heterogeneous data sources.
//! * [`docmine`] — the community-dictionary miner that turns operator
//!   documentation into a machine-readable location dictionary.
//! * [`probe`] — the active-measurement subsystem: vantage registry,
//!   rate-limited probe scheduling, traceroute campaigns, the path
//!   analysis that disambiguates colocated facilities, and probe-driven
//!   restoration detection that closes incidents faster than BGP
//!   convergence.
//! * [`netsim`] — a seeded Internet simulator standing in for the real
//!   RouteViews/RIS archives, traceroute platforms and IXP traffic feeds.
//! * [`core`] — the Kepler detector itself: monitoring, signal
//!   investigation, localization and duration tracking.
//! * [`serve`] — Kepler as a live service: the daemon loop, the durable
//!   incident store (CRC-framed WAL + atomic snapshots, bit-identical
//!   recovery), rate-limited alert fan-out, and the O(1) shared query
//!   view behind `repro serve` / `repro query`.
//! * [`glue`] — adapters wiring the simulator into the detector (data
//!   plane probes, targeted-probe backends, ground-truth conversion).
//! * [`fuzz_harness`] — runs [`netsim::fuzz`] worlds through the
//!   detector and checks the safety invariants (no bystander blamed,
//!   no false close, flapping convergence, remote peers never
//!   mislocalized); failing seeds serialize to replayable artifacts.
//!
//! `ARCHITECTURE.md` at the repository root carries the full pipeline
//! diagram, the dense-id data-flow and a "where does X live" crate map;
//! `README.md` has the quickstart commands.
//!
//! ## Quickstart
//!
//! ```no_run
//! use kepler::core::KeplerConfig;
//! use kepler::glue::{detector_for, truth_outages};
//! use kepler::netsim::scenario::amsix::AmsIxScenario;
//!
//! // Build the AMS-IX 2015 case study and run the detector over it.
//! let study = AmsIxScenario::new(7).build();
//! let config = KeplerConfig::default();
//! let detector = detector_for(&study.scenario, config.clone());
//! let outages = detector.run(study.scenario.records());
//! for outage in &outages {
//!     println!("{outage}");
//! }
//! // Compare against ground truth.
//! let truth = truth_outages(&study.scenario, &config);
//! let eval = kepler::core::metrics::evaluate(&outages, &truth, 900);
//! println!("precision {:.2} recall {:.2}", eval.precision(), eval.recall());
//! ```

pub mod fuzz_harness;
pub mod glue;

pub use kepler_bgp as bgp;
pub use kepler_bgpstream as bgpstream;
pub use kepler_core as core;
pub use kepler_docmine as docmine;
pub use kepler_netsim as netsim;
pub use kepler_probe as probe;
pub use kepler_serve as serve;
pub use kepler_topology as topology;

//! Glue between the simulator and the detector.
//!
//! `kepler-netsim` deliberately does not depend on `kepler-core` (the
//! detector must stay substrate-agnostic), so the adapters that wire a
//! simulated world into the detection pipeline live here:
//!
//! * [`SimProbe`] — implements the detector's [`DataPlaneProbe`] trait on
//!   top of the simulated traceroute plane, including the baseline-path
//!   selection the paper's §4.4 describes;
//! * [`SimTraceBackend`] — implements `kepler-probe`'s [`TraceBackend`]
//!   over the same plane, so the targeted-probe engine can disambiguate
//!   colocated facilities ([`prober_for`] / [`detector_with_prober`]);
//! * [`detector_for`] — builds a ready-to-run [`Kepler`] instance from a
//!   scenario (mined dictionary + merged colocation map + org map);
//! * [`truth_outages`] — converts simulator ground truth into the
//!   detector-agnostic [`TruthOutage`] records used for evaluation,
//!   including the paper's trackability rule.

use kepler_core::dataplane::{DataPlaneProbe, ProbeResult};
use kepler_core::events::OutageScope;
use kepler_core::metrics::TruthOutage;
use kepler_core::signal::{CanaryPair, DelayDetector, ForecastDetector};
use kepler_core::{Kepler, KeplerConfig, KeplerInputs};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_netsim::dataplane::{
    DataplaneConfig, DataplaneSim, ProbePair, TraceroutePath, TreeCache,
};
use kepler_netsim::events::{Epicenter, ScheduledEvent};
use kepler_netsim::scenario::Scenario;
use kepler_netsim::world::World;
use kepler_netsim::{FaultConfig, FaultyBackend};
use kepler_probe::{
    ProbeEngine, ProbeEngineConfig, RecordingBackend, SyncAdapter, Trace, TraceBackend,
    VantagePoint, VantageRegistry,
};
use kepler_topology::{AsType, FacilityId};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// A data-plane backend over the simulated traceroute plane.
///
/// At construction it measures a probe set during the quiet warm-up and
/// indexes which pairs' baseline paths cross which facility/IXP — exactly
/// the "stable subpaths from archived weekly dumps" selection of §4.4.
/// Probing a scope re-traces only those pairs.
pub struct SimProbe {
    world: Arc<World>,
    timeline: Vec<ScheduledEvent>,
    seed: u64,
    baseline: HashMap<OutageScope, Vec<ProbePair>>,
}

impl SimProbe {
    /// Builds the probe backend. `quiet_t` must lie in the warm-up period
    /// (before the first event); `n_pairs` bounds the probe set.
    pub fn new(
        world: Arc<World>,
        timeline: &[ScheduledEvent],
        seed: u64,
        quiet_t: u64,
        n_pairs: usize,
    ) -> Self {
        let mut baseline: HashMap<OutageScope, Vec<ProbePair>> = HashMap::new();
        {
            let dp = DataplaneSim::probe_only(&world, timeline, seed);
            let pairs = dp.default_pairs(n_pairs);
            for tr in dp.campaign(&pairs, quiet_t) {
                if !tr.reached {
                    continue;
                }
                for scope in scopes_of(&world, &tr) {
                    baseline.entry(scope).or_default().push(tr.pair);
                }
            }
        }
        SimProbe { world, timeline: timeline.to_vec(), seed, baseline }
    }

    /// Number of scopes with baseline coverage.
    pub fn covered_scopes(&self) -> usize {
        self.baseline.len()
    }
}

/// All outage scopes a traceroute path traverses (facilities, IXPs, and
/// their cities).
fn scopes_of(world: &World, tr: &TraceroutePath) -> Vec<OutageScope> {
    use kepler_netsim::dataplane::IfaceOwner;
    let mut out = Vec::new();
    for h in &tr.hops {
        match h.owner {
            IfaceOwner::FacilityPort { facility, .. } => {
                out.push(OutageScope::Facility(facility));
                if let Some(f) = world.colo.facility(facility) {
                    out.push(OutageScope::City(f.city));
                }
            }
            IfaceOwner::IxpLan { ixp, .. } => {
                out.push(OutageScope::Ixp(ixp));
                if let Some(x) = world.colo.ixp(ixp) {
                    out.push(OutageScope::City(x.city));
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn crosses(world: &World, tr: &TraceroutePath, scope: &OutageScope) -> bool {
    match scope {
        OutageScope::Facility(f) => tr.crosses_facility(*f),
        OutageScope::Ixp(x) => tr.crosses_ixp(*x),
        OutageScope::City(c) => scopes_of(world, tr).contains(&OutageScope::City(*c)),
    }
}

impl DataPlaneProbe for SimProbe {
    fn probe(&self, scope: &OutageScope, t: u64) -> Option<ProbeResult> {
        let pairs = self.baseline.get(scope)?;
        if pairs.is_empty() {
            return None;
        }
        let dp = DataplaneSim::probe_only(&self.world, &self.timeline, self.seed);
        // A re-probe is a campaign against one failure state: share the
        // routing trees across the whole baseline set.
        let mut cache = TreeCache::new();
        let still = pairs
            .iter()
            .filter(|&&p| {
                let tr = dp.traceroute_with(&mut cache, p, t);
                tr.reached && crosses(&self.world, &tr, scope)
            })
            .count();
        Some(ProbeResult { still_crossing: still, baseline: pairs.len() })
    }
}

/// A targeted-probe measurement backend over the simulated data plane:
/// `kepler-probe`'s [`TraceBackend`] expressed in (vantage AS, target AS)
/// terms, resolved to concrete probe pairs per trace. Past timestamps are
/// archive lookups, the present is a live campaign — the simulator
/// answers both from the same timeline.
///
/// By default the backend holds a persistent [`TreeCache`], so a whole
/// campaign (and consecutive campaigns against the same failure state)
/// computes each routing tree once instead of per trace —
/// `profile_stages` shows this removing the dominant cost of the probe
/// row. Results are bit-identical either way; [`Self::with_tree_cache`]
/// turns the cache off for apples-to-apples benchmarking.
pub struct SimTraceBackend {
    world: Arc<World>,
    timeline: Vec<ScheduledEvent>,
    seed: u64,
    config: DataplaneConfig,
    cache: Option<RefCell<TreeCache>>,
}

impl SimTraceBackend {
    /// Builds the backend for a world and event timeline.
    pub fn new(world: Arc<World>, timeline: &[ScheduledEvent], seed: u64) -> Self {
        SimTraceBackend {
            world,
            timeline: timeline.to_vec(),
            seed,
            config: DataplaneConfig::default(),
            cache: Some(RefCell::new(TreeCache::new())),
        }
    }

    /// Overrides the measurement-fidelity configuration (loss, latency,
    /// TTL budget).
    pub fn with_config(mut self, config: DataplaneConfig) -> Self {
        self.config = config;
        self
    }

    /// Enables/disables the shared routing-tree cache (on by default).
    pub fn with_tree_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| RefCell::new(TreeCache::new()));
        self
    }

    /// (hits, misses) of the shared tree cache; `None` when disabled.
    pub fn cache_stats(&self) -> Option<(u64, u64)> {
        self.cache.as_ref().map(|c| c.borrow().stats())
    }
}

impl TraceBackend for SimTraceBackend {
    fn trace(&self, vantage: kepler_bgp::Asn, target: kepler_bgp::Asn, t: u64) -> Trace {
        let dp = DataplaneSim::probe_only(&self.world, &self.timeline, self.seed)
            .with_config(self.config);
        let Some(pair) = dp.pair_between(vantage, target) else {
            return Trace::unreachable();
        };
        let tr = match &self.cache {
            Some(cache) => dp.traceroute_with(&mut cache.borrow_mut(), pair, t),
            None => dp.traceroute(pair, t),
        };
        Trace { hops: tr.hops, reached: tr.reached }
    }
}

/// The vantage-point registry a scenario world offers: probe hosts live
/// in edge (eyeball/stub) networks, where Atlas probes actually sit.
pub fn vantage_registry_for(world: &World) -> VantageRegistry {
    let mut registry = VantageRegistry::new();
    for node in &world.ases {
        if matches!(node.info.as_type, AsType::Eyeball | AsType::Stub) {
            registry.register(VantagePoint { asn: node.asn, home_city: Some(node.info.home_city) });
        }
    }
    registry
}

/// Builds a targeted-probe engine for a scenario: simulated backend,
/// edge-network vantage registry, and the detector's (merged-snapshot)
/// colocation map.
pub fn prober_for(
    scenario: &Scenario,
    config: ProbeEngineConfig,
) -> ProbeEngine<SyncAdapter<SimTraceBackend>> {
    let backend = SimTraceBackend::new(
        Arc::new(scenario.world.clone()),
        &scenario.timeline,
        scenario.seed ^ 0x9B0E,
    );
    ProbeEngine::new(
        backend,
        vantage_registry_for(&scenario.world),
        scenario.detector_colo(),
        config,
    )
}

/// Like [`prober_for`] but with the netsim fault-injection layer wrapped
/// around the backend: probes drop, arrive past their deadline, come back
/// truncated or duplicated, vantages churn, and scripted brownout windows
/// reject submissions wholesale — all deterministic in the fault seed.
pub fn faulty_prober_for(
    scenario: &Scenario,
    config: ProbeEngineConfig,
    fault: FaultConfig,
) -> ProbeEngine<FaultyBackend<SimTraceBackend>> {
    let backend = FaultyBackend::new(
        SimTraceBackend::new(
            Arc::new(scenario.world.clone()),
            &scenario.timeline,
            scenario.seed ^ 0x9B0E,
        ),
        fault,
    );
    ProbeEngine::with_async(
        backend,
        vantage_registry_for(&scenario.world),
        scenario.detector_colo(),
        config,
    )
}

/// A probe engine whose faulty backend journals every attempt outcome
/// into a [`kepler_probe::CampaignTranscript`] (reachable through
/// [`ProbeEngine::backend`]) for bit-identical offline replay.
pub fn recording_prober_for(
    scenario: &Scenario,
    config: ProbeEngineConfig,
    fault: FaultConfig,
) -> ProbeEngine<RecordingBackend<FaultyBackend<SimTraceBackend>>> {
    let backend = RecordingBackend::new(FaultyBackend::new(
        SimTraceBackend::new(
            Arc::new(scenario.world.clone()),
            &scenario.timeline,
            scenario.seed ^ 0x9B0E,
        ),
        fault,
    ));
    ProbeEngine::with_async(
        backend,
        vantage_registry_for(&scenario.world),
        scenario.detector_colo(),
        config,
    )
}

/// Like [`detector_for`] but with the targeted-probe engine attached, so
/// ambiguous localizations are disambiguated by active measurement.
pub fn detector_with_prober(scenario: &Scenario, config: KeplerConfig) -> Kepler {
    let prober = prober_for(scenario, ProbeEngineConfig::default());
    detector_for(scenario, config).with_prober(Box::new(prober))
}

/// The full incident lifecycle: [`detector_with_prober`] plus a
/// restoration prober over the same simulated data plane, so confirmed
/// epicenters are re-probed on a backoff schedule and incidents close on
/// data-plane recovery instead of waiting out BGP reconvergence.
///
/// The two engines share the backend type (and therefore the batched
/// routing-tree cache each holds) but draw from *separate* token buckets
/// — mirroring a deployment where validation and restoration campaigns
/// run under distinct measurement-platform credits.
pub fn detector_with_lifecycle(scenario: &Scenario, config: KeplerConfig) -> Kepler {
    let restoration = prober_for(scenario, ProbeEngineConfig::default());
    detector_with_prober(scenario, config).with_restoration_prober(Box::new(restoration))
}

/// [`detector_with_lifecycle`] under fault injection: both the validation
/// and the restoration engine measure through a [`FaultyBackend`], so the
/// whole detector can be exercised against probe loss, deadline blowouts
/// and scripted brownouts. With losses past the completeness quorum the
/// system degrades to passive verdicts (`ClassCounts::degraded_passive`)
/// instead of blocking — the chaos suite asserts exactly that.
pub fn detector_with_faulty_prober(
    scenario: &Scenario,
    config: KeplerConfig,
    fault: FaultConfig,
) -> Kepler {
    let prober = faulty_prober_for(scenario, ProbeEngineConfig::default(), fault.clone());
    let restoration = faulty_prober_for(scenario, ProbeEngineConfig::default(), fault);
    detector_for(scenario, config)
        .with_prober(Box::new(prober))
        .with_restoration_prober(Box::new(restoration))
}

/// Which fused auxiliary signal sources [`detector_with_fusion`] attaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionOptions {
    /// Attach the seasonal-forecast presence detector and register a
    /// presence watch for every trackable facility.
    pub forecast: bool,
    /// Attach the differential-RTT delay detector, tapping the probe
    /// engine's telemetry and tracing a canary panel every bin.
    pub delay: bool,
    /// Canary pairs kept per covered facility.
    pub canaries_per_facility: usize,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions { forecast: true, delay: true, canaries_per_facility: 4 }
    }
}

/// Facilities the detector can track in this scenario, under the paper's
/// ≥`min_members` locatable-members rule.
pub fn trackable_facilities(scenario: &Scenario, config: &KeplerConfig) -> Vec<FacilityId> {
    let dictionary = scenario.mined_dictionary();
    scenario
        .world
        .colo
        .facilities()
        .iter()
        .filter(|f| {
            is_trackable(
                &scenario.world,
                &dictionary,
                &Epicenter::Facility(f.id),
                config.trackable_min_members,
            )
        })
        .map(|f| f.id)
        .collect()
}

/// A canary panel whose quiet-time baseline paths verifiably transit the
/// given facilities: edge-network vantages traced toward facility
/// members, keeping up to `per_facility` crossing pairs per building.
/// The panel keeps delay telemetry flowing even when no validation
/// campaign happens to be running.
pub fn canary_panel(
    scenario: &Scenario,
    facilities: &[FacilityId],
    per_facility: usize,
    quiet_t: u64,
) -> Vec<CanaryPair> {
    use kepler_netsim::dataplane::TreeCache;
    let world = &scenario.world;
    let dp = DataplaneSim::probe_only(world, &scenario.timeline, scenario.seed ^ 0x9B0E);
    let mut cache = TreeCache::new();
    let vantages: Vec<kepler_bgp::Asn> = world
        .ases
        .iter()
        .filter(|n| matches!(n.info.as_type, AsType::Eyeball | AsType::Stub))
        .map(|n| n.asn)
        .take(6)
        .collect();
    let mut panel = Vec::new();
    let mut seen: std::collections::BTreeSet<(kepler_bgp::Asn, kepler_bgp::Asn)> =
        std::collections::BTreeSet::new();
    for &f in facilities {
        let mut kept = 0usize;
        let mut members: Vec<kepler_bgp::Asn> =
            world.colo.members_of_facility(f).iter().copied().collect();
        members.sort();
        'member: for target in members {
            for &vantage in &vantages {
                if vantage == target {
                    continue;
                }
                let Some(pair) = dp.pair_between(vantage, target) else { continue };
                let tr = dp.traceroute_with(&mut cache, pair, quiet_t);
                if tr.reached && tr.crosses_facility(f) && seen.insert((vantage, target)) {
                    panel.push(CanaryPair { vantage, target });
                    kept += 1;
                    if kept >= per_facility {
                        break 'member;
                    }
                    // Diversify targets: one pair per member building port.
                    break;
                }
            }
        }
    }
    panel
}

/// [`detector_with_prober`] plus the fused auxiliary signal sources of
/// the multi-signal pipeline: a seasonal-forecast detector over
/// per-facility presence counts (with presence watches registered for
/// every trackable facility) and a differential-RTT delay detector fed
/// by both the probe engine's passive telemetry tap and a canary panel
/// over the simulated data plane. Both probers and the canary backend
/// share one RTT ledger, so validation campaigns and canaries corroborate
/// the same per-(vantage, hop-pair) baselines.
pub fn detector_with_fusion(
    scenario: &Scenario,
    config: KeplerConfig,
    opts: FusionOptions,
) -> Kepler {
    let quiet_t = scenario.start + 600;
    let trackable = trackable_facilities(scenario, &config);
    let ledger = kepler_probe::telemetry::shared_ledger(config.delay_threshold_ms);
    let prober = prober_for(scenario, ProbeEngineConfig::default()).with_telemetry(ledger.clone());
    let mut kepler = detector_for(scenario, config.clone()).with_prober(Box::new(prober));
    if opts.forecast || opts.delay {
        // Presence watches keep the monitor closing every dense bin even
        // through record silence — the signal sources are polled once
        // per closed bin, so a watch-less monitor would starve them on
        // quiet streams (a pure data-plane surge produces no records).
        for &f in &trackable {
            kepler.watch_presence(LocationTag::Facility(f));
        }
    }
    if opts.forecast {
        kepler = kepler.with_signal_source(Box::new(ForecastDetector::new(&config)));
    }
    if opts.delay {
        let panel = canary_panel(scenario, &trackable, opts.canaries_per_facility, quiet_t);
        let backend = SimTraceBackend::new(
            Arc::new(scenario.world.clone()),
            &scenario.timeline,
            scenario.seed ^ 0x9B0E,
        );
        kepler = kepler.with_signal_source(Box::new(DelayDetector::with_canary(
            &config, ledger, backend, panel, quiet_t,
        )));
    }
    kepler
}

/// Builds a detector for a scenario: mined dictionary, merged colocation
/// map, organization map, and the given configuration.
pub fn detector_for(scenario: &Scenario, config: KeplerConfig) -> Kepler {
    Kepler::new(KeplerInputs {
        config,
        dictionary: scenario.mined_dictionary(),
        colo: scenario.detector_colo(),
        orgs: scenario.world.orgs.clone(),
    })
}

/// Like [`detector_for`] but with the simulated data plane attached.
pub fn detector_with_dataplane(
    scenario: &Scenario,
    config: KeplerConfig,
    n_pairs: usize,
) -> Kepler {
    let probe = SimProbe::new(
        Arc::new(scenario.world.clone()),
        &scenario.timeline,
        scenario.seed,
        scenario.start + 600,
        n_pairs,
    );
    detector_for(scenario, config).with_dataplane(Box::new(probe))
}

/// Whether a facility/IXP is *trackable* under the paper's rule: at least
/// `min_members` of its members are locatable through the dictionary.
pub fn is_trackable(
    world: &World,
    dictionary: &CommunityDictionary,
    epicenter: &Epicenter,
    min_members: usize,
) -> bool {
    let locatable = |asn: kepler_bgp::Asn| asn.is_16bit() && dictionary.covers_asn(asn.0 as u16);
    match epicenter {
        Epicenter::Facility(f) => {
            world.colo.members_of_facility(*f).iter().filter(|&&a| locatable(a)).count()
                >= min_members
        }
        Epicenter::Ixp(x) => {
            world.colo.members_of_ixp(*x).iter().filter(|&&a| locatable(a)).count() >= min_members
        }
    }
}

/// Surveys which facilities are *observably trackable* in a world: emits a
/// quiet (event-free) stream, warms a monitor past the stability window,
/// and ranks facilities by the near/far AS coverage of the PoP tags that
/// locate them. This is the paper's trackability criterion (≥3 near-end +
/// ≥3 far-end locatable members) evaluated against what the vantage points
/// actually deliver.
pub fn survey_trackable_facilities(
    world: &World,
    seed: u64,
) -> Vec<(kepler_topology::FacilityId, usize, usize)> {
    use kepler_core::input::InputModule;
    use kepler_core::intern::Interner;
    use kepler_core::monitor::Monitor;
    use kepler_docmine::dictionary::dictionary_from_schemes;
    use kepler_docmine::LocationTag;
    use kepler_netsim::engine::{CollectorSetup, Simulation};

    let start = 1_000_000_000u64;
    let setup = CollectorSetup::default_for(world, 4, 48, seed);
    let output = Simulation::new(world, setup, start, seed).run(&[], start + 3600);
    let mut dictionary = dictionary_from_schemes(&world.schemes, false);
    dictionary.add_route_servers_from(&world.colo);
    let mut input = InputModule::new(dictionary, world.detector_colomap());
    let config = KeplerConfig::default();
    let stable = config.stable_secs;
    let mut interner = Interner::new();
    let mut monitor = Monitor::new(config);
    for rec in &output.records {
        for elem in rec.explode() {
            if let Some(ev) = input.process_dense(&elem, &mut interner) {
                monitor.observe(elem.time, &ev);
            }
        }
    }
    monitor.advance_to(start + stable + 3600);
    let mut ranked: Vec<(kepler_topology::FacilityId, usize, usize)> = world
        .colo
        .facilities()
        .iter()
        .map(|f| {
            let (n, fa) = interner
                .lookup_pop(LocationTag::Facility(f.id))
                .map(|pop| monitor.pop_coverage(pop))
                .unwrap_or((0, 0));
            (f.id, n, fa)
        })
        .collect();
    ranked.sort_by_key(|(id, n, f)| (std::cmp::Reverse(n.min(f).to_owned()), id.0));
    ranked
}

/// Every PoP tag through which an epicenter can be located: its own
/// facility/IXP tag, its city tag, and co-located IXP/facility tags.
fn epicenter_tags(world: &World, epicenter: &Epicenter) -> Vec<kepler_docmine::LocationTag> {
    use kepler_docmine::LocationTag;
    let mut tags: Vec<LocationTag> = Vec::new();
    match epicenter {
        Epicenter::Facility(f) => {
            tags.push(LocationTag::Facility(*f));
            if let Some(fac) = world.colo.facility(*f) {
                tags.push(LocationTag::City(fac.city));
            }
            for x in world.colo.ixps_at_facility(*f) {
                tags.push(LocationTag::Ixp(*x));
            }
        }
        Epicenter::Ixp(x) => {
            tags.push(LocationTag::Ixp(*x));
            if let Some(ixp) = world.colo.ixp(*x) {
                tags.push(LocationTag::City(ixp.city));
            }
            for f in world.colo.facilities_of_ixp(*x) {
                tags.push(LocationTag::Facility(*f));
            }
        }
    }
    tags
}

/// Whether an epicenter was *observably* trackable during a run: some PoP
/// tag locating it (its own facility/IXP tag, its city tag, or a co-located
/// IXP tag) accumulated ≥3 near-end and ≥3 far-end ASes in the stable
/// baseline. This is the paper's applicability criterion evaluated against
/// what the vantage points actually delivered.
pub fn observed_trackable(
    world: &World,
    monitor: &mut kepler_core::AnyMonitor,
    interner: &kepler_core::Interner,
    epicenter: &Epicenter,
) -> bool {
    epicenter_tags(world, epicenter).iter().any(|t| {
        let (n, f) = interner.lookup_pop(*t).map(|pop| monitor.pop_coverage(pop)).unwrap_or((0, 0));
        n >= 3 && f >= 3
    })
}

/// Like [`truth_outages`] but with trackability determined from the
/// detector's *observed* baseline coverage instead of the static
/// dictionary heuristic.
pub fn truth_outages_observed(
    scenario: &Scenario,
    config: &KeplerConfig,
    detector: &mut Kepler,
) -> Vec<TruthOutage> {
    let mut out = truth_outages(scenario, config);
    for t in &mut out {
        if !t.trackable {
            continue;
        }
        let epicenter = match t.scope {
            OutageScope::Facility(f) => Epicenter::Facility(f),
            OutageScope::Ixp(x) => Epicenter::Ixp(x),
            OutageScope::City(_) => continue,
        };
        let (monitor, interner) = detector.monitor_and_interner();
        t.trackable = observed_trackable(&scenario.world, monitor, interner, &epicenter);
    }
    out
}

/// Converts simulator ground truth into detector-agnostic truth records.
pub fn truth_outages(scenario: &Scenario, config: &KeplerConfig) -> Vec<TruthOutage> {
    let dictionary = scenario.mined_dictionary();
    scenario
        .output
        .ground_truth
        .iter()
        .filter_map(|gt| {
            let epicenter = gt.kind.epicenter()?;
            let scope = match epicenter {
                Epicenter::Facility(f) => OutageScope::Facility(f),
                Epicenter::Ixp(x) => OutageScope::Ixp(x),
            };
            let city = match epicenter {
                Epicenter::Facility(f) => scenario.world.colo.facility(f).map(|f| f.city),
                Epicenter::Ixp(x) => scenario.world.colo.ixp(x).map(|x| x.city),
            };
            let aliases = match epicenter {
                // An IXP outage may be pinned to a fabric building when no
                // surviving path discriminates.
                Epicenter::Ixp(x) => scenario
                    .world
                    .colo
                    .facilities_of_ixp(x)
                    .iter()
                    .map(|f| OutageScope::Facility(*f))
                    .collect(),
                // A facility outage equals the outage of any IXP whose
                // entire fabric lives inside it.
                Epicenter::Facility(f) => scenario
                    .world
                    .colo
                    .ixps_at_facility(f)
                    .iter()
                    .filter(|x| {
                        let fabric = scenario.world.colo.facilities_of_ixp(**x);
                        fabric.len() == 1 && fabric.contains(&f)
                    })
                    .map(|x| OutageScope::Ixp(*x))
                    .collect(),
            };
            Some(TruthOutage {
                id: gt.id,
                scope,
                city,
                aliases,
                start: gt.start,
                duration: gt.duration,
                is_infrastructure: gt.kind.is_infrastructure_outage(),
                trackable: is_trackable(
                    &scenario.world,
                    &dictionary,
                    &epicenter,
                    config.trackable_min_members,
                ),
            })
        })
        .collect()
}

//! Harness for the scenario fuzzer: runs a generated world through the
//! detector and checks the safety invariants.
//!
//! [`kepler_netsim::fuzz`] only *generates* — netsim cannot see the
//! detector. This module closes the loop: it builds a detector for a
//! [`FuzzWorld`] with the hysteresis knobs the script prescribes,
//! attaches a remoteness map measured from a quiet-time campaign for
//! remote-peering worlds, feeds the stream, and checks every report
//! against ground truth:
//!
//! 1. **No validated bystander** — a probe-confirmed or
//!    dataplane-confirmed verdict always names a failed scope (or its
//!    fabric/city alias) within the outage window; unvalidated passive
//!    strays are tolerated only within a small budget.
//! 2. **No early close** — a closed report never ends more than the
//!    slack before the last matching failure actually restored.
//! 3. **Flapping converges** — a flapping epicenter yields at most one
//!    incident, riding Open↔Recovering under the closing hysteresis
//!    (`oscillations == 1`), and that incident spans the whole flap: a
//!    mid-flap close is unrecoverable, because the stable-path baseline
//!    prunes deviated routes and later down phases cannot re-signal.
//! 4. **Remote peers stay unlocalized** — a member peering remotely at
//!    the failed fabric never drags the blame to a building of its
//!    distant home metro.
//!
//! The invariants are *safety-only*: a script is free to stage an
//! outage too small for the vantage points to see, and silence is a
//! valid outcome. (The fixed-seed smoke suite separately asserts the
//! sweep is not vacuous.) On violation, [`write_artifact`] serializes
//! the seed + script so the exact world replays locally with
//! `repro --fuzz-seed <N>`.

use crate::glue::{
    detector_with_dataplane, detector_with_fusion, prober_for, truth_outages, FusionOptions,
};
use kepler_core::events::{OutageReport, OutageScope, ValidationStatus};
use kepler_core::metrics::TruthOutage;
use kepler_core::system::ClassCounts;
use kepler_core::{Kepler, KeplerConfig, RemotenessMap};
use kepler_netsim::dataplane::{DataplaneSim, TreeCache};
use kepler_netsim::fuzz::{FailureKind, FailureScript, FuzzWorld, ScenarioScript};
use kepler_netsim::scenario::Scenario;
use kepler_topology::AsType;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Timing slack (seconds) granted to report boundaries, matching the
/// evaluation slack used across the test suites.
pub const SLACK_SECS: u64 = 900;

/// How many unvalidated reports matching no ground truth a single world
/// may produce before the checker calls it a false-positive flood.
/// Passive-only localization has documented stray reports (the paper
/// adds §4.4 data-plane validation precisely to kill them); the budget
/// keeps that noise bounded without failing every noisy tiny world.
pub const MAX_UNVALIDATED_STRAYS: usize = 4;

/// The outcome of one fuzz world: what the detector said, what the
/// ground truth was, and every invariant violation found.
pub struct FuzzVerdict {
    /// The script the world was built from.
    pub script: ScenarioScript,
    /// Detector reports.
    pub reports: Vec<OutageReport>,
    /// Ground-truth outages.
    pub truth: Vec<TruthOutage>,
    /// Human-readable invariant violations; empty means the world passed.
    pub violations: Vec<String>,
    /// The detector's classification counters for the run — per-signal
    /// attribution and fusion bookkeeping live here.
    pub counts: ClassCounts,
}

impl FuzzVerdict {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether at least one report named a ground-truth outage (used by
    /// the smoke suite to prove the sweep is not vacuous).
    pub fn detected(&self) -> bool {
        self.reports.iter().any(|r| self.truth.iter().any(|t| names_truth(r, t)))
    }
}

/// Measures a remoteness map the way a deployment would: a quiet-time
/// traceroute campaign from a handful of edge vantages towards every
/// exchange member, folded into per-(IXP, member) minimum LAN-entry
/// steps ([`RemotenessMap::observe_trace`]).
pub fn remoteness_for(scenario: &Scenario, quiet_t: u64) -> RemotenessMap {
    let world = &scenario.world;
    let dp = DataplaneSim::probe_only(world, &scenario.timeline, scenario.seed ^ 0x5EE5);
    let mut cache = TreeCache::new();
    let mut map = RemotenessMap::new();
    let vantages: Vec<kepler_bgp::Asn> = world
        .ases
        .iter()
        .filter(|n| matches!(n.info.as_type, AsType::Eyeball | AsType::Stub))
        .map(|n| n.asn)
        .take(4)
        .collect();
    let mut targets: BTreeSet<kepler_bgp::Asn> = BTreeSet::new();
    for ixp in world.colo.ixps() {
        targets.extend(world.colo.members_of_ixp(ixp.id).iter().copied());
    }
    for &target in &targets {
        for &vantage in &vantages {
            let Some(pair) = dp.pair_between(vantage, target) else { continue };
            let tr = dp.traceroute_with(&mut cache, pair, quiet_t);
            map.observe_trace(&tr.hops);
        }
    }
    map
}

/// Generates, builds and checks the world for a fuzzer seed.
pub fn check_seed(seed: u64) -> FuzzVerdict {
    check_script(&ScenarioScript::generate(seed))
}

/// Builds and checks the world a script describes (the replay path for
/// `repro --fuzz-seed` and hand-authored regression scripts).
pub fn check_script(script: &ScenarioScript) -> FuzzVerdict {
    check_world(&script.build())
}

/// [`check_seed`] with the fused multi-signal detector (forecast +
/// delay sources on top of the deviation pipeline).
pub fn check_seed_fused(seed: u64) -> FuzzVerdict {
    check_world_fused(&ScenarioScript::generate(seed).build())
}

/// Runs an already-built fuzz world through the detector and checks the
/// invariants.
pub fn check_world(fw: &FuzzWorld) -> FuzzVerdict {
    let script = &fw.script;
    let config = KeplerConfig::default().with_hysteresis(script.open_after, script.close_after);
    // The full passive pipeline plus both validation layers: §4.4
    // data-plane confirmation and the targeted-probe engine. Passive
    // localization alone has known false positives — the invariants
    // hold the *validated* layer to zero tolerance.
    let detector = detector_with_dataplane(&fw.scenario, config.clone(), 300).with_prober(
        Box::new(prober_for(&fw.scenario, kepler_probe::ProbeEngineConfig::default())),
    );
    run_checked(fw, detector, &config, false)
}

/// [`check_world`] with the fused multi-signal detector: the deviation
/// pipeline plus the seasonal-forecast and differential-RTT sources
/// ([`detector_with_fusion`]). The safety invariants are the same — the
/// auxiliary signals must not manufacture validated bystanders.
pub fn check_world_fused(fw: &FuzzWorld) -> FuzzVerdict {
    check_world_with(fw, FusionOptions::default())
}

/// [`check_world_fused`] with explicit fusion options — the ablation
/// sweeps rank signal combinations (deviation-only, +forecast, +delay,
/// all) through this.
pub fn check_world_with(fw: &FuzzWorld, opts: FusionOptions) -> FuzzVerdict {
    let script = &fw.script;
    let config = KeplerConfig::default().with_hysteresis(script.open_after, script.close_after);
    let detector = detector_with_fusion(&fw.scenario, config.clone(), opts);
    // The fused run drains the bin clock to the scenario end: a pure
    // data-plane failure (delay surge) leaves no control-plane records,
    // so without the explicit advance the canary panel would never be
    // polled through the quiet window. The deviation-only path keeps
    // the record-driven clock, bit-identical to the pre-fusion harness.
    run_checked(fw, detector, &config, true)
}

/// Streams the world through a configured detector, captures the
/// classification counters, and checks the invariants.
fn run_checked(
    fw: &FuzzWorld,
    mut detector: Kepler,
    config: &KeplerConfig,
    drain_to_end: bool,
) -> FuzzVerdict {
    let script = &fw.script;
    if script.script.kind() == FailureKind::Remote {
        detector = detector.with_remoteness(remoteness_for(&fw.scenario, fw.scenario.start + 600));
    }
    for rec in fw.scenario.records() {
        detector.process_record_owned(rec);
    }
    if drain_to_end {
        detector.advance_clock(fw.scenario.end);
    }
    let reports = detector.finalize();
    let counts = detector.class_counts();
    let truth = truth_outages(&fw.scenario, config);
    let violations = check_invariants(fw, &reports, &truth);
    FuzzVerdict { script: script.clone(), reports, truth, violations, counts }
}

/// Whether a report names this truth outage: scope, alias or city.
fn names_truth(report: &OutageReport, truth: &TruthOutage) -> bool {
    report.scope == truth.scope
        || truth.aliases.contains(&report.scope)
        || matches!(report.scope, OutageScope::City(c) if truth.city == Some(c))
}

/// Whether a report names this truth outage (scope, alias or city) and
/// starts inside its window (± [`SLACK_SECS`]).
fn matches_truth(report: &OutageReport, truth: &TruthOutage) -> bool {
    names_truth(report, truth)
        && report.start + SLACK_SECS >= truth.start
        && report.start <= truth.start + truth.duration + SLACK_SECS
}

fn check_invariants(
    fw: &FuzzWorld,
    reports: &[OutageReport],
    truth: &[TruthOutage],
) -> Vec<String> {
    let mut violations = Vec::new();
    let world = &fw.scenario.world;

    // 4. Remote peers stay unlocalized: collect the buildings the blame
    // must never land on — home-metro facilities of members peering
    // remotely at a failed fabric.
    let mut forbidden: BTreeSet<kepler_topology::FacilityId> = BTreeSet::new();
    if fw.script.script.kind() == FailureKind::Remote {
        for (asn, home_city) in fw.remote_victims() {
            if home_city == fw.city {
                continue;
            }
            for f in world.colo.facilities_of_as(asn) {
                if world.colo.facility(f).map(|fac| fac.city) == Some(home_city) {
                    forbidden.insert(f);
                }
            }
        }
    }

    // A correlated cascade is *one* compound event: its overlapping
    // signal waves legitimately consolidate onto any member facility,
    // with the cascade's onset as the incident start. A report naming
    // any cascade scope therefore matches against the cascade's full
    // window, not the per-facility one.
    let cascade = matches!(fw.script.script, FailureScript::Cascade { .. });
    let compound_window = (
        truth.iter().map(|t| t.start).min().unwrap_or(0),
        truth.iter().map(|t| t.start + t.duration).max().unwrap_or(0),
    );

    // A multi-building fabric is only *aliased* to a failed facility
    // when it lives entirely inside it (`truth_outages`), but a report
    // naming an exchange whose fabric ports in the dead building went
    // dark is the paper's facility↔IXP escalation, not a bystander:
    // every surviving observation of that exchange may route through
    // the dead switch. Accept it as naming that truth.
    let partial_fabric = |report: &OutageReport, t: &TruthOutage| match (report.scope, t.scope) {
        (OutageScope::Ixp(x), OutageScope::Facility(f)) => {
            world.colo.ixps_at_facility(f).contains(&x)
        }
        _ => false,
    };
    let names = |r: &OutageReport, t: &TruthOutage| names_truth(r, t) || partial_fabric(r, t);

    let mut unmatched = 0usize;
    for report in reports {
        let mut matched: Vec<&TruthOutage> = truth
            .iter()
            .filter(|t| {
                names(report, t)
                    && report.start + SLACK_SECS >= t.start
                    && report.start <= t.start + t.duration + SLACK_SECS
            })
            .collect();
        if matched.is_empty()
            && cascade
            && truth.iter().any(|t| names(report, t))
            && report.start + SLACK_SECS >= compound_window.0
            && report.start <= compound_window.1 + SLACK_SECS
        {
            matched = truth.iter().collect();
        }
        // 1. No bystander blamed. Passive localization alone has known
        // false positives (the paper adds data-plane validation for
        // exactly this reason), so an unvalidated stray is tolerated in
        // bounded numbers — but a *validated* verdict naming something
        // healthy is always a violation, and so is any facility-level
        // report dragging blame to a remote peer's home metro.
        if matched.is_empty() {
            if report.validation == ValidationStatus::Confirmed
                || report.dataplane_confirmed == Some(true)
            {
                violations.push(format!(
                    "validated bystander: report {:?} starting {} was confirmed dark \
                     (validation {:?}, dataplane {:?}) but matches no ground-truth outage",
                    report.scope, report.start, report.validation, report.dataplane_confirmed
                ));
            }
            if let OutageScope::Facility(f) = report.scope {
                if forbidden.contains(&f) {
                    violations.push(format!(
                        "remote peer mislocalized: {:?} is a home-metro building of a \
                         member peering remotely at the failed fabric",
                        report.scope
                    ));
                }
            }
            unmatched += 1;
            continue;
        }
        // 2. No early close: the report must not end before the last
        // failure *it names* was actually repaired. (The compound-window
        // fallback explains a cascade report's start; its close is still
        // judged against its own facility's repair — an early cascade
        // member legitimately closes while later members are still down.)
        let last_end =
            matched.iter().filter(|t| names(report, t)).map(|t| t.start + t.duration).max();
        if let (Some(end), Some(last_end)) = (report.end, last_end) {
            if end + SLACK_SECS < last_end {
                violations.push(format!(
                    "false close: report {:?} ended {} but the failure ran until {}",
                    report.scope, end, last_end
                ));
            }
        }
    }

    // Passive-noise budget: a handful of unvalidated strays per world
    // is the documented passive-only behavior; a flood is a regression.
    if unmatched > MAX_UNVALIDATED_STRAYS {
        violations.push(format!(
            "false-positive flood: {unmatched} reports match no ground-truth outage \
             (budget {MAX_UNVALIDATED_STRAYS})"
        ));
    }

    // 3. Flapping converges to one Open↔Recovering incident spanning the
    // whole flap. The stable-path baseline prunes deviated routes at bin
    // close and re-promotion takes `stable_secs`, so only the *first*
    // down phase can open an incident passively — which is exactly why a
    // mid-flap close is unrecoverable: the detector cannot re-open on
    // later cycles, and the rest of the flap becomes a missed outage.
    // Closing hysteresis must therefore ride the up phases (the watch
    // list's restored streak resets on every re-withdrawal) and release
    // the incident only after the final restore.
    if let FailureScript::Flapping { facility, .. } = fw.script.script {
        let (_, flap_end) = fw.script.script.window();
        let epicenter: Vec<&OutageReport> =
            reports.iter().filter(|r| truth.iter().any(|t| matches_truth(r, t))).collect();
        if epicenter.len() > 1 {
            violations.push(format!(
                "flapping {:?} produced {} incidents instead of one",
                facility,
                epicenter.len()
            ));
        }
        for r in &epicenter {
            if r.oscillations != 1 {
                violations.push(format!(
                    "flapping {:?} closed mid-flap: report shows {} merged sub-outages \
                     (closing hysteresis should hold the incident open across up phases)",
                    facility, r.oscillations
                ));
            }
            if let Some(end) = r.end {
                if end + SLACK_SECS < flap_end {
                    violations.push(format!(
                        "flapping {:?} closed mid-flap: report ended {} but the flap ran \
                         until {} (later cycles are invisible to the pruned stable \
                         baseline, so the early close forfeits the rest of the outage)",
                        facility, end, flap_end
                    ));
                }
            }
        }
    }

    violations
}

/// Per-archetype detection-power accounting: of the worlds staged with
/// this failure kind, how many did the detector catch, how fast, and
/// which signal source fired first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerRow {
    /// Worlds staged with this archetype.
    pub worlds: usize,
    /// Worlds where a report named the staged failure inside its window.
    pub detected: usize,
    /// Detection latency (seconds past failure onset) per detected world.
    pub latencies: Vec<u64>,
    /// Signal kind that fired first, per detected world.
    pub first_detector: BTreeMap<String, usize>,
}

impl PowerRow {
    /// Worlds whose staged failure produced no matching report.
    pub fn missed(&self) -> usize {
        self.worlds - self.detected
    }

    /// Median detection latency in seconds, `None` with no detections.
    pub fn median_latency_secs(&self) -> Option<u64> {
        if self.latencies.is_empty() {
            return None;
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        Some(sorted[sorted.len() / 2])
    }
}

/// Detection power across a set of fuzz verdicts, grouped by archetype.
/// Safety invariants say what the detector must never do; this report
/// says what it actually *caught* — the liveness side of the sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerReport {
    /// Rows keyed by archetype script name (`FailureKind::name`).
    pub rows: BTreeMap<String, PowerRow>,
}

impl PowerReport {
    /// Folds one world's verdict into the report. A world counts as
    /// detected when some report names a staged failure (scope, alias or
    /// city) and starts inside the script's failure window (± slack);
    /// the earliest such report provides the latency and the
    /// first-detector attribution (its earliest-firing source, with
    /// sourceless legacy reports counted as plain deviation).
    pub fn absorb(&mut self, verdict: &FuzzVerdict) {
        let row = self.rows.entry(verdict.script.script.kind().name().to_string()).or_default();
        row.worlds += 1;
        let (onset, end) = verdict.script.script.window();
        let first = verdict
            .reports
            .iter()
            .filter(|r| {
                verdict.truth.iter().any(|t| names_truth(r, t))
                    && r.start + SLACK_SECS >= onset
                    && r.start <= end + SLACK_SECS
            })
            .min_by_key(|r| r.start);
        if let Some(report) = first {
            row.detected += 1;
            row.latencies.push(report.start.saturating_sub(onset));
            let kind = report
                .sources
                .iter()
                .min_by_key(|s| (s.first_bin, s.kind.tag()))
                .map(|s| s.kind.to_string())
                .unwrap_or_else(|| "deviation".to_string());
            *row.first_detector.entry(kind).or_default() += 1;
        }
    }

    /// Builds a report from a batch of verdicts.
    pub fn from_verdicts<'a>(verdicts: impl IntoIterator<Item = &'a FuzzVerdict>) -> PowerReport {
        let mut report = PowerReport::default();
        for v in verdicts {
            report.absorb(v);
        }
        report
    }

    /// Worlds absorbed across all archetypes.
    pub fn worlds(&self) -> usize {
        self.rows.values().map(|r| r.worlds).sum()
    }

    /// Worlds detected across all archetypes.
    pub fn detected(&self) -> usize {
        self.rows.values().map(|r| r.detected).sum()
    }

    /// A fixed-width table for CI logs and `repro --fuzz-seed`.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "archetype     worlds  detected  missed  median-latency-s  first-detector\n",
        );
        for (name, row) in &self.rows {
            let latency =
                row.median_latency_secs().map(|l| l.to_string()).unwrap_or_else(|| "-".to_string());
            let attribution = if row.first_detector.is_empty() {
                "-".to_string()
            } else {
                row.first_detector
                    .iter()
                    .map(|(k, n)| format!("{k}:{n}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "{name:<13} {:>6}  {:>8}  {:>6}  {latency:>16}  {attribution}\n",
                row.worlds,
                row.detected,
                row.missed(),
            ));
        }
        out
    }
}

/// Serializes a failing world under `dir` as `seed-<N>.script`: the
/// replayable script text, plus the violations and the one-command
/// repro as `#` comments (the parser ignores them). Returns the path.
pub fn write_artifact(dir: &Path, verdict: &FuzzVerdict) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{}.script", verdict.script.seed));
    let mut text = verdict.script.render();
    text.push_str("#\n# invariant violations:\n");
    for v in &verdict.violations {
        text.push_str(&format!("#   {v}\n"));
    }
    text.push_str(&format!(
        "#\n# reproduce locally:\n#   cargo run --release -p kepler-bench --bin repro -- \
         --fuzz-seed {}\n",
        verdict.script.seed
    ));
    std::fs::write(&path, text)?;
    Ok(path)
}

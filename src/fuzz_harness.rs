//! Harness for the scenario fuzzer: runs a generated world through the
//! detector and checks the safety invariants.
//!
//! [`kepler_netsim::fuzz`] only *generates* — netsim cannot see the
//! detector. This module closes the loop: it builds a detector for a
//! [`FuzzWorld`] with the hysteresis knobs the script prescribes,
//! attaches a remoteness map measured from a quiet-time campaign for
//! remote-peering worlds, feeds the stream, and checks every report
//! against ground truth:
//!
//! 1. **No validated bystander** — a probe-confirmed or
//!    dataplane-confirmed verdict always names a failed scope (or its
//!    fabric/city alias) within the outage window; unvalidated passive
//!    strays are tolerated only within a small budget.
//! 2. **No early close** — a closed report never ends more than the
//!    slack before the last matching failure actually restored.
//! 3. **Flapping converges** — a flapping epicenter yields at most one
//!    incident, riding Open↔Recovering under the closing hysteresis
//!    (`oscillations == 1`), and that incident spans the whole flap: a
//!    mid-flap close is unrecoverable, because the stable-path baseline
//!    prunes deviated routes and later down phases cannot re-signal.
//! 4. **Remote peers stay unlocalized** — a member peering remotely at
//!    the failed fabric never drags the blame to a building of its
//!    distant home metro.
//!
//! The invariants are *safety-only*: a script is free to stage an
//! outage too small for the vantage points to see, and silence is a
//! valid outcome. (The fixed-seed smoke suite separately asserts the
//! sweep is not vacuous.) On violation, [`write_artifact`] serializes
//! the seed + script so the exact world replays locally with
//! `repro --fuzz-seed <N>`.

use crate::glue::{detector_with_dataplane, prober_for, truth_outages};
use kepler_core::events::{OutageReport, OutageScope, ValidationStatus};
use kepler_core::metrics::TruthOutage;
use kepler_core::{KeplerConfig, RemotenessMap};
use kepler_netsim::dataplane::{DataplaneSim, TreeCache};
use kepler_netsim::fuzz::{FailureKind, FailureScript, FuzzWorld, ScenarioScript};
use kepler_netsim::scenario::Scenario;
use kepler_topology::AsType;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Timing slack (seconds) granted to report boundaries, matching the
/// evaluation slack used across the test suites.
pub const SLACK_SECS: u64 = 900;

/// How many unvalidated reports matching no ground truth a single world
/// may produce before the checker calls it a false-positive flood.
/// Passive-only localization has documented stray reports (the paper
/// adds §4.4 data-plane validation precisely to kill them); the budget
/// keeps that noise bounded without failing every noisy tiny world.
pub const MAX_UNVALIDATED_STRAYS: usize = 4;

/// The outcome of one fuzz world: what the detector said, what the
/// ground truth was, and every invariant violation found.
pub struct FuzzVerdict {
    /// The script the world was built from.
    pub script: ScenarioScript,
    /// Detector reports.
    pub reports: Vec<OutageReport>,
    /// Ground-truth outages.
    pub truth: Vec<TruthOutage>,
    /// Human-readable invariant violations; empty means the world passed.
    pub violations: Vec<String>,
}

impl FuzzVerdict {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether at least one report named a ground-truth outage (used by
    /// the smoke suite to prove the sweep is not vacuous).
    pub fn detected(&self) -> bool {
        self.reports.iter().any(|r| self.truth.iter().any(|t| names_truth(r, t)))
    }
}

/// Measures a remoteness map the way a deployment would: a quiet-time
/// traceroute campaign from a handful of edge vantages towards every
/// exchange member, folded into per-(IXP, member) minimum LAN-entry
/// steps ([`RemotenessMap::observe_trace`]).
pub fn remoteness_for(scenario: &Scenario, quiet_t: u64) -> RemotenessMap {
    let world = &scenario.world;
    let dp = DataplaneSim::probe_only(world, &scenario.timeline, scenario.seed ^ 0x5EE5);
    let mut cache = TreeCache::new();
    let mut map = RemotenessMap::new();
    let vantages: Vec<kepler_bgp::Asn> = world
        .ases
        .iter()
        .filter(|n| matches!(n.info.as_type, AsType::Eyeball | AsType::Stub))
        .map(|n| n.asn)
        .take(4)
        .collect();
    let mut targets: BTreeSet<kepler_bgp::Asn> = BTreeSet::new();
    for ixp in world.colo.ixps() {
        targets.extend(world.colo.members_of_ixp(ixp.id).iter().copied());
    }
    for &target in &targets {
        for &vantage in &vantages {
            let Some(pair) = dp.pair_between(vantage, target) else { continue };
            let tr = dp.traceroute_with(&mut cache, pair, quiet_t);
            map.observe_trace(&tr.hops);
        }
    }
    map
}

/// Generates, builds and checks the world for a fuzzer seed.
pub fn check_seed(seed: u64) -> FuzzVerdict {
    check_script(&ScenarioScript::generate(seed))
}

/// Builds and checks the world a script describes (the replay path for
/// `repro --fuzz-seed` and hand-authored regression scripts).
pub fn check_script(script: &ScenarioScript) -> FuzzVerdict {
    check_world(&script.build())
}

/// Runs an already-built fuzz world through the detector and checks the
/// invariants.
pub fn check_world(fw: &FuzzWorld) -> FuzzVerdict {
    let script = &fw.script;
    let config = KeplerConfig::default().with_hysteresis(script.open_after, script.close_after);
    // The full passive pipeline plus both validation layers: §4.4
    // data-plane confirmation and the targeted-probe engine. Passive
    // localization alone has known false positives — the invariants
    // hold the *validated* layer to zero tolerance.
    let mut detector = detector_with_dataplane(&fw.scenario, config.clone(), 300).with_prober(
        Box::new(prober_for(&fw.scenario, kepler_probe::ProbeEngineConfig::default())),
    );
    if script.script.kind() == FailureKind::Remote {
        detector = detector.with_remoteness(remoteness_for(&fw.scenario, fw.scenario.start + 600));
    }
    let reports = detector.run(fw.scenario.records());
    let truth = truth_outages(&fw.scenario, &config);
    let violations = check_invariants(fw, &reports, &truth);
    FuzzVerdict { script: script.clone(), reports, truth, violations }
}

/// Whether a report names this truth outage: scope, alias or city.
fn names_truth(report: &OutageReport, truth: &TruthOutage) -> bool {
    report.scope == truth.scope
        || truth.aliases.contains(&report.scope)
        || matches!(report.scope, OutageScope::City(c) if truth.city == Some(c))
}

/// Whether a report names this truth outage (scope, alias or city) and
/// starts inside its window (± [`SLACK_SECS`]).
fn matches_truth(report: &OutageReport, truth: &TruthOutage) -> bool {
    names_truth(report, truth)
        && report.start + SLACK_SECS >= truth.start
        && report.start <= truth.start + truth.duration + SLACK_SECS
}

fn check_invariants(
    fw: &FuzzWorld,
    reports: &[OutageReport],
    truth: &[TruthOutage],
) -> Vec<String> {
    let mut violations = Vec::new();
    let world = &fw.scenario.world;

    // 4. Remote peers stay unlocalized: collect the buildings the blame
    // must never land on — home-metro facilities of members peering
    // remotely at a failed fabric.
    let mut forbidden: BTreeSet<kepler_topology::FacilityId> = BTreeSet::new();
    if fw.script.script.kind() == FailureKind::Remote {
        for (asn, home_city) in fw.remote_victims() {
            if home_city == fw.city {
                continue;
            }
            for f in world.colo.facilities_of_as(asn) {
                if world.colo.facility(f).map(|fac| fac.city) == Some(home_city) {
                    forbidden.insert(f);
                }
            }
        }
    }

    // A correlated cascade is *one* compound event: its overlapping
    // signal waves legitimately consolidate onto any member facility,
    // with the cascade's onset as the incident start. A report naming
    // any cascade scope therefore matches against the cascade's full
    // window, not the per-facility one.
    let cascade = matches!(fw.script.script, FailureScript::Cascade { .. });
    let compound_window = (
        truth.iter().map(|t| t.start).min().unwrap_or(0),
        truth.iter().map(|t| t.start + t.duration).max().unwrap_or(0),
    );

    // A multi-building fabric is only *aliased* to a failed facility
    // when it lives entirely inside it (`truth_outages`), but a report
    // naming an exchange whose fabric ports in the dead building went
    // dark is the paper's facility↔IXP escalation, not a bystander:
    // every surviving observation of that exchange may route through
    // the dead switch. Accept it as naming that truth.
    let partial_fabric = |report: &OutageReport, t: &TruthOutage| match (report.scope, t.scope) {
        (OutageScope::Ixp(x), OutageScope::Facility(f)) => {
            world.colo.ixps_at_facility(f).contains(&x)
        }
        _ => false,
    };
    let names = |r: &OutageReport, t: &TruthOutage| names_truth(r, t) || partial_fabric(r, t);

    let mut unmatched = 0usize;
    for report in reports {
        let mut matched: Vec<&TruthOutage> = truth
            .iter()
            .filter(|t| {
                names(report, t)
                    && report.start + SLACK_SECS >= t.start
                    && report.start <= t.start + t.duration + SLACK_SECS
            })
            .collect();
        if matched.is_empty()
            && cascade
            && truth.iter().any(|t| names(report, t))
            && report.start + SLACK_SECS >= compound_window.0
            && report.start <= compound_window.1 + SLACK_SECS
        {
            matched = truth.iter().collect();
        }
        // 1. No bystander blamed. Passive localization alone has known
        // false positives (the paper adds data-plane validation for
        // exactly this reason), so an unvalidated stray is tolerated in
        // bounded numbers — but a *validated* verdict naming something
        // healthy is always a violation, and so is any facility-level
        // report dragging blame to a remote peer's home metro.
        if matched.is_empty() {
            if report.validation == ValidationStatus::Confirmed
                || report.dataplane_confirmed == Some(true)
            {
                violations.push(format!(
                    "validated bystander: report {:?} starting {} was confirmed dark \
                     (validation {:?}, dataplane {:?}) but matches no ground-truth outage",
                    report.scope, report.start, report.validation, report.dataplane_confirmed
                ));
            }
            if let OutageScope::Facility(f) = report.scope {
                if forbidden.contains(&f) {
                    violations.push(format!(
                        "remote peer mislocalized: {:?} is a home-metro building of a \
                         member peering remotely at the failed fabric",
                        report.scope
                    ));
                }
            }
            unmatched += 1;
            continue;
        }
        // 2. No early close: the report must not end before the last
        // failure *it names* was actually repaired. (The compound-window
        // fallback explains a cascade report's start; its close is still
        // judged against its own facility's repair — an early cascade
        // member legitimately closes while later members are still down.)
        let last_end =
            matched.iter().filter(|t| names(report, t)).map(|t| t.start + t.duration).max();
        if let (Some(end), Some(last_end)) = (report.end, last_end) {
            if end + SLACK_SECS < last_end {
                violations.push(format!(
                    "false close: report {:?} ended {} but the failure ran until {}",
                    report.scope, end, last_end
                ));
            }
        }
    }

    // Passive-noise budget: a handful of unvalidated strays per world
    // is the documented passive-only behavior; a flood is a regression.
    if unmatched > MAX_UNVALIDATED_STRAYS {
        violations.push(format!(
            "false-positive flood: {unmatched} reports match no ground-truth outage \
             (budget {MAX_UNVALIDATED_STRAYS})"
        ));
    }

    // 3. Flapping converges to one Open↔Recovering incident spanning the
    // whole flap. The stable-path baseline prunes deviated routes at bin
    // close and re-promotion takes `stable_secs`, so only the *first*
    // down phase can open an incident passively — which is exactly why a
    // mid-flap close is unrecoverable: the detector cannot re-open on
    // later cycles, and the rest of the flap becomes a missed outage.
    // Closing hysteresis must therefore ride the up phases (the watch
    // list's restored streak resets on every re-withdrawal) and release
    // the incident only after the final restore.
    if let FailureScript::Flapping { facility, .. } = fw.script.script {
        let (_, flap_end) = fw.script.script.window();
        let epicenter: Vec<&OutageReport> =
            reports.iter().filter(|r| truth.iter().any(|t| matches_truth(r, t))).collect();
        if epicenter.len() > 1 {
            violations.push(format!(
                "flapping {:?} produced {} incidents instead of one",
                facility,
                epicenter.len()
            ));
        }
        for r in &epicenter {
            if r.oscillations != 1 {
                violations.push(format!(
                    "flapping {:?} closed mid-flap: report shows {} merged sub-outages \
                     (closing hysteresis should hold the incident open across up phases)",
                    facility, r.oscillations
                ));
            }
            if let Some(end) = r.end {
                if end + SLACK_SECS < flap_end {
                    violations.push(format!(
                        "flapping {:?} closed mid-flap: report ended {} but the flap ran \
                         until {} (later cycles are invisible to the pruned stable \
                         baseline, so the early close forfeits the rest of the outage)",
                        facility, end, flap_end
                    ));
                }
            }
        }
    }

    violations
}

/// Serializes a failing world under `dir` as `seed-<N>.script`: the
/// replayable script text, plus the violations and the one-command
/// repro as `#` comments (the parser ignores them). Returns the path.
pub fn write_artifact(dir: &Path, verdict: &FuzzVerdict) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("seed-{}.script", verdict.script.seed));
    let mut text = verdict.script.render();
    text.push_str("#\n# invariant violations:\n");
    for v in &verdict.violations {
        text.push_str(&format!("#   {v}\n"));
    }
    text.push_str(&format!(
        "#\n# reproduce locally:\n#   cargo run --release -p kepler-bench --bin repro -- \
         --fuzz-seed {}\n",
        verdict.script.seed
    ));
    std::fs::write(&path, text)?;
    Ok(path)
}

//! Passive RTT telemetry over in-progress probe campaigns
//! (Fontugne et al., arXiv:1605.04784).
//!
//! Every measurement pair the engine drives — validation or restoration
//! — already contains two full hop sequences. Instead of discarding them
//! after one verdict, the engine can feed them into an [`RttLedger`]:
//! per-(vantage, hop-pair) *differential* RTT baselines built from
//! pre-event traces, against which live traces are compared. The hop RTT
//! recorded on a [`TraceHop`](crate::trace::TraceHop) is cumulative along
//! the path, so the *step* `rtt(hop_k) - rtt(hop_{k-1})` isolates the
//! segment entering `hop_k`; a step far above its shared baseline is a
//! delay anomaly attributed to `hop_k`'s owning infrastructure.
//!
//! Baselines are min-filtered (the minimum observed step approximates
//! propagation delay; queueing noise only ever adds), matching the
//! reference method's use of differential medians over shared segments.
//! The ledger is deliberately dumb: it records anomalies and lets the
//! detector side (`kepler-core`'s delay signal source) decide how many
//! distinct anomalous pairs constitute evidence.

use crate::trace::{IfaceOwner, Trace};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_topology::{FacilityId, IxpId};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The infrastructure a delay anomaly is attributed to: the owner of the
/// hop whose RTT step exceeded its shared baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DelaySite {
    /// A colocation facility.
    Facility(FacilityId),
    /// An IXP peering LAN.
    Ixp(IxpId),
}

/// Key of one shared hop-pair baseline: the vantage AS plus the owner
/// identities of two consecutive responding hops. [`PAIR_START`] stands
/// in for "the vantage itself" before the first responding hop.
pub type PairKey = (u32, u64, u64);

/// Previous-owner sentinel for the first responding hop of a trace.
pub const PAIR_START: u64 = u64::MAX;

fn owner_key(owner: IfaceOwner) -> u64 {
    match owner {
        IfaceOwner::FacilityPort { asn, facility } => {
            ((asn.0 as u64) << 33) | ((facility.0 as u64) << 1)
        }
        IfaceOwner::IxpLan { asn, ixp } => ((asn.0 as u64) << 33) | ((ixp.0 as u64) << 1) | 1,
    }
}

fn owner_site(owner: IfaceOwner) -> DelaySite {
    match owner {
        IfaceOwner::FacilityPort { facility, .. } => DelaySite::Facility(facility),
        IfaceOwner::IxpLan { ixp, .. } => DelaySite::Ixp(ixp),
    }
}

/// One recorded delay anomaly: a live hop-pair step exceeded its shared
/// baseline by more than the ledger threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RttAnomaly {
    /// When the live trace was measured.
    pub t: Timestamp,
    /// The infrastructure the slow segment enters.
    pub site: DelaySite,
    /// Milliseconds above the baseline step.
    pub excess_ms: f64,
    /// The measurement key (for distinct-pair counting downstream).
    pub key: PairKey,
}

/// Differential-RTT baselines over shared (vantage, hop-pair) segments,
/// with anomaly recording against them.
#[derive(Debug)]
pub struct RttLedger {
    threshold_ms: f64,
    /// Min-filtered baseline step per measurement key.
    baselines: BTreeMap<PairKey, f64>,
    anomalies: Vec<RttAnomaly>,
    baseline_obs: usize,
    current_obs: usize,
}

impl RttLedger {
    /// A ledger flagging steps more than `threshold_ms` above baseline.
    pub fn new(threshold_ms: f64) -> Self {
        RttLedger {
            threshold_ms,
            baselines: BTreeMap::new(),
            anomalies: Vec::new(),
            baseline_obs: 0,
            current_obs: 0,
        }
    }

    /// Decomposes a trace into per-segment steps: (pair key, step ms,
    /// owner of the entered hop). Non-monotone cumulative RTTs (possible
    /// during reconvergence) yield clamped zero steps rather than
    /// negative baselines.
    fn steps(vantage: Asn, trace: &Trace) -> Vec<(PairKey, f64, IfaceOwner)> {
        let mut out = Vec::with_capacity(trace.hops.len());
        let mut prev_key = PAIR_START;
        let mut prev_rtt = 0.0f64;
        for hop in &trace.hops {
            let key = (vantage.0, prev_key, owner_key(hop.owner));
            out.push((key, (hop.rtt_ms - prev_rtt).max(0.0), hop.owner));
            prev_key = owner_key(hop.owner);
            prev_rtt = hop.rtt_ms;
        }
        out
    }

    /// Feeds a pre-event (baseline) trace: each segment step lowers its
    /// key's min-filtered baseline.
    pub fn observe_baseline(&mut self, vantage: Asn, trace: &Trace) {
        self.baseline_obs += 1;
        for (key, step, _) in Self::steps(vantage, trace) {
            self.baselines.entry(key).and_modify(|b| *b = b.min(step)).or_insert(step);
        }
    }

    /// Feeds a live trace measured at `t`: segments whose step exceeds
    /// their shared baseline by the threshold are recorded as anomalies.
    /// Segments without a baseline contribute nothing (no verdict
    /// without baseline, same invariant as the probe engine).
    pub fn observe_current(&mut self, vantage: Asn, t: Timestamp, trace: &Trace) {
        self.current_obs += 1;
        for (key, step, owner) in Self::steps(vantage, trace) {
            if let Some(&base) = self.baselines.get(&key) {
                let excess = step - base;
                if excess > self.threshold_ms {
                    self.anomalies.push(RttAnomaly {
                        t,
                        site: owner_site(owner),
                        excess_ms: excess,
                        key,
                    });
                }
            }
        }
    }

    /// Takes every recorded anomaly, leaving the ledger's baselines
    /// intact (the detector drains once per bin).
    pub fn drain_anomalies(&mut self) -> Vec<RttAnomaly> {
        std::mem::take(&mut self.anomalies)
    }

    /// Distinct (vantage, hop-pair) keys with a baseline.
    pub fn baseline_pairs(&self) -> usize {
        self.baselines.len()
    }

    /// (baseline traces fed, live traces fed).
    pub fn observations(&self) -> (usize, usize) {
        (self.baseline_obs, self.current_obs)
    }
}

/// The ledger handle shared between the probe engine (writer) and the
/// delay signal source (reader): campaigns run inside `Prober::validate`
/// while the detector polls at bin close, so the cell is a mutex, not a
/// borrow.
pub type SharedRttLedger = Arc<Mutex<RttLedger>>;

/// A fresh shared ledger.
pub fn shared_ledger(threshold_ms: f64) -> SharedRttLedger {
    Arc::new(Mutex::new(RttLedger::new(threshold_ms)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceHop;
    use std::net::{IpAddr, Ipv4Addr};

    fn hop(oct: u8, owner: IfaceOwner, rtt: f64) -> TraceHop {
        TraceHop { addr: IpAddr::V4(Ipv4Addr::new(11, 0, 0, oct)), owner, rtt_ms: rtt }
    }

    fn fac_hop(oct: u8, fac: u32, rtt: f64) -> TraceHop {
        hop(oct, IfaceOwner::FacilityPort { asn: Asn(oct as u32), facility: FacilityId(fac) }, rtt)
    }

    fn path(rtts: &[(u8, u32, f64)]) -> Trace {
        Trace { hops: rtts.iter().map(|&(o, f, r)| fac_hop(o, f, r)).collect(), reached: true }
    }

    #[test]
    fn surge_on_shared_segment_is_attributed_to_the_entered_hop() {
        let mut ledger = RttLedger::new(10.0);
        // Baseline: vantage → hop1 (5ms) → hop2 (+5ms) .
        ledger.observe_baseline(Asn(900), &path(&[(1, 7, 5.0), (2, 8, 10.0)]));
        assert_eq!(ledger.baseline_pairs(), 2);
        // Live: the second segment surged by 40ms.
        ledger.observe_current(Asn(900), 1_000, &path(&[(1, 7, 5.0), (2, 8, 50.0)]));
        let anomalies = ledger.drain_anomalies();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].site, DelaySite::Facility(FacilityId(8)));
        assert!((anomalies[0].excess_ms - 40.0).abs() < 1e-9);
        assert_eq!(anomalies[0].t, 1_000);
        // Drain empties the buffer but keeps baselines.
        assert!(ledger.drain_anomalies().is_empty());
        assert_eq!(ledger.baseline_pairs(), 2);
    }

    #[test]
    fn baselines_are_min_filtered() {
        let mut ledger = RttLedger::new(10.0);
        // A noisy baseline observation followed by a clean one: the min
        // wins, so a live step matching the noisy one now stands out.
        ledger.observe_baseline(Asn(900), &path(&[(1, 7, 30.0)]));
        ledger.observe_baseline(Asn(900), &path(&[(1, 7, 5.0)]));
        ledger.observe_current(Asn(900), 500, &path(&[(1, 7, 30.0)]));
        let anomalies = ledger.drain_anomalies();
        assert_eq!(anomalies.len(), 1);
        assert!((anomalies[0].excess_ms - 25.0).abs() < 1e-9);
    }

    #[test]
    fn no_baseline_no_anomaly() {
        let mut ledger = RttLedger::new(10.0);
        // A wildly slow live trace over segments never baselined proves
        // nothing.
        ledger.observe_current(Asn(900), 500, &path(&[(1, 7, 500.0)]));
        assert!(ledger.drain_anomalies().is_empty());
        // Different vantage = different key: no cross-vantage bleed.
        ledger.observe_baseline(Asn(900), &path(&[(1, 7, 5.0)]));
        ledger.observe_current(Asn(901), 600, &path(&[(1, 7, 500.0)]));
        assert!(ledger.drain_anomalies().is_empty());
    }

    #[test]
    fn steps_clamp_non_monotone_rtts() {
        let mut ledger = RttLedger::new(10.0);
        // Cumulative RTT dipping mid-path (reconvergence artifact) clamps
        // to a zero step instead of a negative baseline.
        ledger.observe_baseline(Asn(900), &path(&[(1, 7, 20.0), (2, 8, 5.0)]));
        ledger.observe_current(Asn(900), 500, &path(&[(1, 7, 20.0), (2, 8, 26.0)]));
        let anomalies = ledger.drain_anomalies();
        // Segment into hop 8: baseline 0 (clamped), live step 6 < 10.
        assert!(anomalies.is_empty(), "{anomalies:?}");
        ledger.observe_current(Asn(900), 600, &path(&[(1, 7, 20.0), (2, 8, 35.0)]));
        assert_eq!(ledger.drain_anomalies().len(), 1);
    }

    #[test]
    fn ixp_lan_hops_attribute_to_the_exchange() {
        let mut ledger = RttLedger::new(10.0);
        let lan = |rtt| Trace {
            hops: vec![
                fac_hop(1, 7, 5.0),
                hop(2, IfaceOwner::IxpLan { asn: Asn(30), ixp: IxpId(4) }, rtt),
            ],
            reached: true,
        };
        ledger.observe_baseline(Asn(900), &lan(8.0));
        ledger.observe_current(Asn(900), 700, &lan(60.0));
        let anomalies = ledger.drain_anomalies();
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].site, DelaySite::Ixp(IxpId(4)));
    }
}

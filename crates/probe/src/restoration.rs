//! Probe-driven restoration detection.
//!
//! BGP convergence after a repair is slow and ragged: Figure 10a of the
//! paper shows control-plane paths taking ~4 hours to return (and ~5%
//! never returning), while Figure 10b shows ~85% of *data-plane* paths
//! back within an hour. A tracker that waits for the control plane alone
//! therefore over-reports downtime. This module closes the gap: the
//! [`Epicenter`] of every open incident — facility-, IXP- or
//! city-scoped, probe-confirmed or passively localized — is **re-probed
//! on an exponential-backoff schedule**, and when baseline paths
//! demonstrably cross it again the incident can be closed long before
//! the BGP watch list recovers.
//!
//! The same safety asymmetry as confirmation applies, mirrored:
//!
//! * a **restoration verdict requires crossing evidence** — fresh traces
//!   that traverse the epicenter facility again. Mere reachability of the
//!   targets proves nothing (detours reach them throughout the outage);
//! * probes that cannot reach any target, or that lack a pre-event
//!   baseline through the building, yield [`RestorationVerdict::Inconclusive`]
//!   — never `Restored`;
//! * the tracker in `kepler-core` additionally demands **two consecutive**
//!   `Restored` verdicts before closing, so one lucky trace cannot end a
//!   real outage (see `Tracker::probe_restorations`).
//!
//! Rate limiting reuses the per-facility token buckets of
//! [`ProbeScheduler`](crate::schedule::ProbeScheduler): restoration
//! re-probes and validation campaigns draw from the same budget, so a
//! facility having its worst day is never hammered by both.

use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_topology::{CityId, FacilityId, IxpId};

/// The epicenter of an open incident, at whatever granularity passive
/// localization settled on. Restoration probing handles all three: a
/// facility restores when baseline paths cross *it* again, an IXP when
/// they cross its fabric, a city when they cross any facility or fabric
/// located there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Epicenter {
    /// A single building.
    Facility(FacilityId),
    /// An exchange fabric.
    Ixp(IxpId),
    /// A metropolitan area.
    City(CityId),
}

impl Epicenter {
    /// Scheduler bucket key: the three id spaces are disjoint by tag bits
    /// so an IXP's budget never drains a facility's.
    pub fn sched_key(&self) -> u32 {
        match *self {
            Epicenter::Facility(f) => f.0 & 0x3FFF_FFFF,
            Epicenter::Ixp(x) => 0x4000_0000 | (x.0 & 0x3FFF_FFFF),
            Epicenter::City(c) => 0x8000_0000 | (c.0 & 0x3FFF_FFFF),
        }
    }

    /// A stable 64-bit discriminant for vantage-panel seeding.
    pub fn seed(&self) -> u64 {
        (self.sched_key() as u64) << 32
    }
}

/// What a restoration re-probe concluded about an incident epicenter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestorationVerdict {
    /// A quorum of baseline paths crosses the facility again: the data
    /// plane has recovered.
    Restored,
    /// Baseline paths still avoid (or die before) the facility: the
    /// building is still dark.
    StillDown,
    /// Too few usable baselines, or the probe budget was exhausted —
    /// never grounds for closing an incident.
    Inconclusive,
}

/// Result of one restoration check.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestorationReport {
    /// The verdict.
    pub verdict: RestorationVerdict,
    /// Pairs whose pre-event baseline crossed the epicenter (the
    /// denominator of the quorum).
    pub watched: usize,
    /// Of those, pairs whose fresh trace crosses it again.
    pub crossing: usize,
    /// Fresh probes sent.
    pub probes_sent: usize,
    /// Probes dropped by the per-facility rate limiter.
    pub rate_limited: usize,
}

impl RestorationReport {
    /// An inconclusive report (no probes ran).
    pub fn inconclusive() -> Self {
        RestorationReport {
            verdict: RestorationVerdict::Inconclusive,
            watched: 0,
            crossing: 0,
            probes_sent: 0,
            rate_limited: 0,
        }
    }
}

/// The restoration-checking interface the tracker consumes. Implemented
/// by [`ProbeEngine`](crate::engine::ProbeEngine) over any
/// [`TraceBackend`](crate::engine::TraceBackend); deployments can
/// substitute their own (e.g. a RIPE-Atlas client sharing the engine's
/// credit budget).
pub trait RestorationProber {
    /// Re-probes `epicenter` at `now`. `targets` are the incident's
    /// affected far-end ASes; `incident_start` anchors the pre-event
    /// baseline lookup (traces are archived *before* that instant).
    fn check(
        &mut self,
        epicenter: Epicenter,
        targets: &[Asn],
        incident_start: Timestamp,
        now: Timestamp,
    ) -> RestorationReport;
}

/// Exponential-backoff arithmetic for the re-probe schedule. Pure and
/// clock-free: the tracker stores the current delay per incident and asks
/// for the next one after each unsuccessful check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// First re-probe delay after an incident opens (and after a first
    /// `Restored` verdict, so the confirming check comes quickly).
    pub initial_secs: u64,
    /// Ceiling: delays double until they saturate here.
    pub max_secs: u64,
}

impl Backoff {
    /// The schedule's first delay.
    pub fn first(&self) -> u64 {
        self.initial_secs.min(self.max_secs)
    }

    /// The delay following `current`: doubled, clamped to
    /// `[initial_secs, max_secs]` (a zero or corrupt `current` restarts
    /// the schedule).
    pub fn next(&self, current: u64) -> u64 {
        current.max(1).saturating_mul(2).clamp(self.first(), self.max_secs.max(1))
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff { initial_secs: 300, max_secs: 3_600 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_saturates() {
        let b = Backoff { initial_secs: 300, max_secs: 3_600 };
        assert_eq!(b.first(), 300);
        let mut d = b.first();
        let mut seen = Vec::new();
        for _ in 0..6 {
            seen.push(d);
            d = b.next(d);
        }
        assert_eq!(seen, vec![300, 600, 1200, 2400, 3600, 3600]);
    }

    #[test]
    fn backoff_degenerate_inputs() {
        let b = Backoff { initial_secs: 300, max_secs: 3_600 };
        // A corrupt zero restarts at the floor instead of sticking at 0.
        assert_eq!(b.next(0), 300);
        // initial > max: first() respects the ceiling.
        let b = Backoff { initial_secs: 10_000, max_secs: 600 };
        assert_eq!(b.first(), 600);
        assert_eq!(b.next(600), 600);
        // Saturating arithmetic near u64::MAX.
        let b = Backoff { initial_secs: 1, max_secs: u64::MAX };
        assert_eq!(b.next(u64::MAX), u64::MAX);
    }

    #[test]
    fn inconclusive_report_is_empty() {
        let r = RestorationReport::inconclusive();
        assert_eq!(r.verdict, RestorationVerdict::Inconclusive);
        assert_eq!((r.watched, r.crossing, r.probes_sent), (0, 0, 0));
    }
}

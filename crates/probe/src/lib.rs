//! Active-measurement validation for Kepler (paper §4.4 and §6.2).
//!
//! Passive BGP-community inference localizes an outage to a *set* of
//! candidate facilities; when no candidate clears the 95% co-location
//! rule — or several do — the paper fires **targeted data-plane probes**
//! (traceroutes toward interfaces at the suspect buildings) to confirm the
//! event and disambiguate between colocated facilities. This crate is that
//! subsystem:
//!
//! ```text
//!  core::investigate                kepler-probe                  tracker
//!  ───────────────── ProbeRequest ─────────────────── verdicts ──────────
//!   low-confidence  ──────────────▶ schedule ─▶ simulate ─▶ analyze ──▶
//!   localization        (pop,        token-bucket  traceroute  hop-diff
//!   (candidates)        candidates,  per facility  campaigns   vs colo map
//!                       affected                   (backend)   FacilityVerdict
//!                       ASes)                                  + evidence
//! ```
//!
//! * [`vantage`] — the vantage-point registry: probe hosts with dense ids,
//!   selected deterministically and away from the suspect city.
//! * [`schedule`] — the rate-limited probe scheduler: a token bucket per
//!   target facility bounds campaign load, plus the campaign vocabulary
//!   (traceroute / ping).
//! * [`trace`] — interface-level trace modeling shared with the simulator
//!   (`kepler-netsim` re-exports these types): hop ownership, crossing
//!   queries, loop detection, and the §4.4 baseline re-probe arithmetic
//!   ([`ProbeResult`] / [`confirm`]) that `kepler-core` re-exports.
//! * [`analysis`] — the path-analysis module: diffs pre/post-event hop
//!   sequences against the colocation map and emits a
//!   [`FacilityVerdict`] with per-hop evidence.
//! * [`engine`] — the probe engine gluing it together behind the
//!   [`Prober`] trait the detector consumes; measurement
//!   backends (the netsim data plane today, a RIPE-Atlas-shaped client in
//!   a deployment) plug in through
//!   [`TraceBackend`] / [`AsyncTraceBackend`].
//! * [`lifecycle`] — the async-shaped measurement lifecycle
//!   (`submit → poll → collect`): per-attempt deadlines, retries on
//!   exponential backoff with deterministic seeded jitter, campaign
//!   completeness scoring. [`SyncAdapter`] lifts synchronous backends
//!   into the contract.
//! * [`health`] — the backend-health state machine
//!   (ONLINE/DEGRADED/OFFLINE with consecutive-failure/recovery
//!   hysteresis) that lets the detector degrade to passive-only
//!   localization when the platform browns out.
//! * [`fixture`] — recorded campaign transcripts: journal every attempt
//!   outcome once, replay it bit-identically offline
//!   ([`RecordingBackend`] / [`ReplayBackend`]).
//! * [`restoration`] — probe-driven restoration detection: open
//!   incident [`Epicenter`]s (facility-, IXP- or city-scoped) are
//!   re-probed on an exponential-backoff schedule ([`Backoff`]) behind
//!   the [`RestorationProber`] trait, closing incidents on data-plane
//!   recovery instead of waiting out BGP reconvergence.
//! * [`telemetry`] — passive differential-RTT telemetry: every measured
//!   pair optionally feeds an [`RttLedger`] of shared (vantage,
//!   hop-pair) step baselines, so in-progress campaigns double as a
//!   delay-anomaly signal source instead of being discarded after one
//!   verdict ([`ProbeEngine::with_telemetry`](engine::ProbeEngine)).
//!
//! # Key types
//!
//! [`ProbeRequest`] in, [`ProbeReport`] (per-candidate
//! [`FacilityVerdict`] + [`HopEvidence`]) out; [`RestorationReport`]
//! for re-probes. [`ProbeEngine`] implements both [`Prober`] and
//! [`RestorationProber`] over any [`TraceBackend`].
//!
//! # Invariants
//!
//! * **Confirmation requires detour evidence.** Bare unreachability
//!   indicts every facility a baseline path crossed and cannot
//!   discriminate colocated buildings; at least one destination must
//!   still answer while steering *around* the candidate
//!   ([`PathAnalyzer::min_detours`](analysis::PathAnalyzer)).
//! * **Restoration requires crossing evidence.** An epicenter is only
//!   reported restored when a quorum of its pre-event baseline paths
//!   demonstrably crosses the building again — reachability alone proves
//!   nothing (detours reach targets throughout an outage).
//! * **No verdict without baseline.** Pairs whose pre-event trace never
//!   reached, or never crossed the candidate, contribute nothing; starved
//!   probe budgets degrade to `Inconclusive`, never to a made-up verdict.
//! * **Losses degrade, never block.** A campaign below its completeness
//!   quorum is marked degraded ([`ProbeReport::degraded`]) so the
//!   detector falls back to passive verdicts; a browned-out backend
//!   drives the health machine to OFFLINE and shrinks campaigns to a
//!   canary. Nothing on the probe path blocks or panics on a misbehaving
//!   backend.
//! * **Determinism.** Vantage selection, token-bucket admission, retry
//!   jitter and every synthetic address derivation are seeded-hash
//!   functions of explicit inputs; there is no wall clock anywhere on the
//!   probe path, which is what makes transcript replay bit-identical.
//!
//! Identities on the probe path are small dense ids, mirroring the
//! monitor hot path: vantage points are interned to
//! [`VantageId`]s, scheduler buckets are keyed on raw
//! facility ids, and display types only appear in requests and evidence.

pub mod analysis;
pub mod engine;
pub mod fixture;
pub mod health;
pub mod lifecycle;
pub mod restoration;
pub mod schedule;
pub mod telemetry;
pub mod trace;
pub mod vantage;

pub use analysis::{FacilityVerdict, HopDiff, HopEvidence, MeasuredPair, PathAnalyzer, PostState};
pub use engine::{
    ProbeEngine, ProbeEngineConfig, ProbeReport, ProbeRequest, ProbeStats, Prober, TraceBackend,
};
pub use fixture::{CampaignTranscript, RecordedOutcome, RecordingBackend, ReplayBackend};
pub use health::{BackendHealth, HealthConfig, HealthTracker};
pub use lifecycle::{
    drive, AsyncTraceBackend, LifecycleConfig, Measurement, MeasurementOutcome, MeasurementState,
    SubmitResult, SyncAdapter,
};
pub use restoration::{
    Backoff, Epicenter, RestorationProber, RestorationReport, RestorationVerdict,
};
pub use schedule::{
    Campaign, CampaignKind, CreditConfig, CreditLedger, ProbeScheduler, ProbeTask, RateLimit,
};
pub use telemetry::{shared_ledger, DelaySite, RttAnomaly, RttLedger, SharedRttLedger};
pub use trace::{confirm, splitmix64, IfaceOwner, ProbeResult, Trace, TraceHop};
pub use vantage::{VantageId, VantagePoint, VantageRegistry};

//! The probe engine: schedule → measure → analyze, behind the
//! [`Prober`] trait the detector consumes.
//!
//! The engine is generic over a [`TraceBackend`] — the netsim data plane
//! in this repository, a RIPE-Atlas-shaped API client in a deployment.
//! One [`ProbeRequest`] (emitted by `kepler-core`'s investigator when
//! passive localization is ambiguous) becomes, per candidate facility:
//!
//! 1. target selection — affected far-end ASes co-located in the
//!    candidate, from the colocation map;
//! 2. vantage selection — a deterministic panel avoiding the suspect
//!    city;
//! 3. admission — the per-facility token bucket trims the campaign;
//! 4. measurement — one archived/pre-event baseline trace and one fresh
//!    trace per admitted (vantage, target) pair;
//! 5. analysis — [`PathAnalyzer::judge`] turns the pairs into a
//!    [`FacilityVerdict`] with hop-level evidence.

use crate::analysis::{FacilityVerdict, HopEvidence, MeasuredPair, PathAnalyzer};
use crate::restoration::{RestorationProber, RestorationReport, RestorationVerdict};
use crate::schedule::{Campaign, CampaignKind, ProbeScheduler, ProbeTask, RateLimit};
use crate::trace::Trace;
use crate::vantage::VantageRegistry;
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use kepler_topology::{ColocationMap, FacilityId};

/// A validation request from the investigation stage: "passive evidence
/// suspects these colocated facilities — which one is actually dark?"
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRequest {
    /// The PoP tag whose signals raised the suspicion.
    pub pop: LocationTag,
    /// Start of the bin that raised it.
    pub bin_start: Timestamp,
    /// Candidate epicenters, best passive score first (the paper bounds
    /// this at the up-to-four facilities along a physical link).
    pub candidates: Vec<FacilityId>,
    /// Far-end ASes whose stable paths deviated (probe targets).
    pub affected_far: Vec<Asn>,
    /// Near-end ASes that raised the signals.
    pub affected_near: Vec<Asn>,
}

/// What the engine found for one request.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeReport {
    /// Per-candidate verdicts, in request order.
    pub verdicts: Vec<(FacilityId, FacilityVerdict)>,
    /// Hop-level evidence behind the verdicts.
    pub evidence: Vec<HopEvidence>,
    /// Fresh probes actually sent (baseline lookups are archive reads and
    /// are not counted).
    pub probes_sent: usize,
    /// Probes dropped by the per-facility rate limiter.
    pub rate_limited: usize,
}

impl ProbeReport {
    /// The verdict for one candidate, if it was judged.
    pub fn verdict_for(&self, fac: FacilityId) -> Option<FacilityVerdict> {
        self.verdicts.iter().find(|(f, _)| *f == fac).map(|(_, v)| *v)
    }

    /// The single confirmed facility, when exactly one *distinct*
    /// candidate was confirmed down — the disambiguation success case.
    pub fn resolved(&self) -> Option<FacilityId> {
        let confirmed: std::collections::BTreeSet<FacilityId> = self
            .verdicts
            .iter()
            .filter(|(_, v)| *v == FacilityVerdict::Confirmed)
            .map(|(f, _)| *f)
            .collect();
        if confirmed.len() == 1 {
            confirmed.first().copied()
        } else {
            None
        }
    }

    /// Whether every judged candidate was refuted (the suspicion was a
    /// false positive).
    pub fn all_refuted(&self) -> bool {
        !self.verdicts.is_empty()
            && self.verdicts.iter().all(|(_, v)| *v == FacilityVerdict::Refuted)
    }
}

/// A measurement backend: answers one trace from a vantage AS toward a
/// destination AS at a given time. Times in the past are archive lookups
/// (weekly dumps in the paper); the current time is a live campaign.
pub trait TraceBackend {
    /// Measures (or looks up) `vantage → target` at `t`.
    fn trace(&self, vantage: Asn, target: Asn, t: Timestamp) -> Trace;
}

/// The validation interface the detector consumes. `kepler-core` calls
/// this for every ambiguous localization when a prober is attached.
pub trait Prober {
    /// Runs the campaigns for one request and reports verdicts.
    fn validate(&mut self, request: &ProbeRequest, now: Timestamp) -> ProbeReport;
}

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEngineConfig {
    /// Vantage points probing each target.
    pub vantages_per_target: usize,
    /// Targets measured per candidate facility.
    pub max_targets_per_candidate: usize,
    /// Candidates judged per request (paper: a physical link traverses up
    /// to four facilities).
    pub max_candidates: usize,
    /// Per-facility probe budget.
    pub rate: RateLimit,
    /// How far before the bin the baseline lookup reaches (must predate
    /// the event; archives are weekly in the paper, the simulator answers
    /// any past instant).
    pub baseline_lookback_secs: u64,
    /// Fraction of watched baseline paths that must cross the epicenter
    /// again before a restoration check reports
    /// [`RestorationVerdict::Restored`].
    pub restore_quorum: f64,
    /// Verdict thresholds.
    pub analyzer: PathAnalyzer,
}

impl Default for ProbeEngineConfig {
    fn default() -> Self {
        ProbeEngineConfig {
            vantages_per_target: 6,
            max_targets_per_candidate: 10,
            max_candidates: 4,
            rate: RateLimit::default(),
            baseline_lookback_secs: 3_600,
            restore_quorum: 0.5,
            analyzer: PathAnalyzer::default(),
        }
    }
}

/// Lifetime counters of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Requests validated.
    pub requests: usize,
    /// Fresh probes sent.
    pub probes_sent: usize,
    /// Probes dropped by rate limiting.
    pub rate_limited: usize,
    /// Candidates confirmed down.
    pub confirmed: usize,
    /// Candidates refuted.
    pub refuted: usize,
    /// Candidates left inconclusive.
    pub inconclusive: usize,
    /// Restoration checks run.
    pub restoration_checks: usize,
    /// Restoration checks that found the epicenter forwarding again.
    pub restorations_seen: usize,
}

/// The probe engine.
///
/// ```
/// use kepler_bgp::Asn;
/// use kepler_bgpstream::Timestamp;
/// use kepler_docmine::LocationTag;
/// use kepler_probe::{
///     FacilityVerdict, IfaceOwner, ProbeEngine, ProbeEngineConfig, ProbeRequest, Prober,
///     Trace, TraceBackend, TraceHop, VantagePoint, VantageRegistry,
/// };
/// use kepler_topology::entities::Facility;
/// use kepler_topology::{CityId, ColocationMap, Continent, FacilityId, GeoPoint};
///
/// // A backend scripted so facility 0 went dark at t = 5_000 (its
/// // baseline paths now detour) while facility 1 keeps forwarding.
/// // Even-numbered targets are physically behind facility 0, odd ones
/// // behind facility 1.
/// struct Scripted;
/// impl TraceBackend for Scripted {
///     fn trace(&self, _vantage: Asn, target: Asn, t: Timestamp) -> Trace {
///         let fac = FacilityId(target.0 % 2);
///         let hop = TraceHop {
///             addr: std::net::IpAddr::from([11, 0, fac.0 as u8, (target.0 % 250) as u8]),
///             owner: IfaceOwner::FacilityPort { asn: target, facility: fac },
///             rtt_ms: 1.0,
///         };
///         if t >= 5_000 && fac == FacilityId(0) {
///             Trace { hops: vec![], reached: true } // detours around the dark building
///         } else {
///             Trace { hops: vec![hop], reached: true }
///         }
///     }
/// }
///
/// // Two colocation twins listing identical members — passively
/// // indistinguishable, the case the engine exists for.
/// let mut colo = ColocationMap::new();
/// for id in [0u32, 1] {
///     colo.add_facility(Facility {
///         id: FacilityId(id),
///         name: format!("F{id}"),
///         address: String::new(),
///         postcode: format!("P{id}"),
///         country: "GB".into(),
///         city: CityId(0),
///         continent: Continent::Europe,
///         point: GeoPoint::new(51.5, 0.0),
///         operator: "Op".into(),
///     });
///     for far in [20u32, 21, 22, 23] {
///         colo.add_fac_member(FacilityId(id), Asn(far));
///     }
/// }
/// let mut registry = VantageRegistry::new();
/// for i in 0..4u32 {
///     registry.register(VantagePoint { asn: Asn(900 + i), home_city: Some(CityId(5)) });
/// }
///
/// let mut engine = ProbeEngine::new(Scripted, registry, colo, ProbeEngineConfig::default());
/// let report = engine.validate(
///     &ProbeRequest {
///         pop: LocationTag::City(CityId(0)),
///         bin_start: 5_000,
///         candidates: vec![FacilityId(0), FacilityId(1)],
///         affected_far: vec![Asn(20), Asn(21), Asn(22), Asn(23)],
///         affected_near: vec![Asn(1)],
///     },
///     5_060,
/// );
/// // Only the building whose baseline paths vanished is confirmed dark.
/// assert_eq!(report.resolved(), Some(FacilityId(0)));
/// assert_eq!(report.verdict_for(FacilityId(1)), Some(FacilityVerdict::Refuted));
/// ```
pub struct ProbeEngine<B> {
    backend: B,
    registry: VantageRegistry,
    colo: ColocationMap,
    scheduler: ProbeScheduler,
    config: ProbeEngineConfig,
    stats: ProbeStats,
}

impl<B: TraceBackend> ProbeEngine<B> {
    /// Builds an engine over a backend, a vantage registry and the
    /// detector's colocation map.
    pub fn new(
        backend: B,
        registry: VantageRegistry,
        colo: ColocationMap,
        config: ProbeEngineConfig,
    ) -> Self {
        ProbeEngine {
            backend,
            registry,
            colo,
            scheduler: ProbeScheduler::new(config.rate),
            config,
            stats: ProbeStats::default(),
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// The vantage registry (for inspection).
    pub fn registry(&self) -> &VantageRegistry {
        &self.registry
    }

    /// Probe targets for one candidate: affected far-ends co-located in
    /// it, falling back to all affected far-ends when the map knows none.
    fn targets_for(&self, candidate: FacilityId, affected_far: &[Asn]) -> Vec<Asn> {
        let cap = self.config.max_targets_per_candidate;
        let colocated: Vec<Asn> = affected_far
            .iter()
            .copied()
            .filter(|a| self.colo.is_at_facility(*a, candidate))
            .take(cap)
            .collect();
        if !colocated.is_empty() {
            return colocated;
        }
        affected_far.iter().copied().take(cap).collect()
    }

    /// Plans the (rate-limit-trimmed) traceroute campaign against one
    /// candidate facility, recording how many tasks the bucket dropped.
    fn plan_campaign(
        &mut self,
        request: &ProbeRequest,
        candidate: FacilityId,
        now: Timestamp,
    ) -> (Campaign, usize) {
        let targets = self.targets_for(candidate, &request.affected_far);
        let avoid = self.colo.facility(candidate).map(|f| f.city);
        let panel = self.registry.select(
            avoid,
            self.config.vantages_per_target,
            (candidate.0 as u64) << 32 ^ request.bin_start,
        );
        // Target-major task order: trimming a campaign still spreads the
        // remaining probes over all targets.
        let mut tasks: Vec<ProbeTask> = Vec::new();
        for vp in &panel {
            let vantage = self.registry.get(*vp).asn;
            for &target in &targets {
                tasks.push(ProbeTask { vantage, target });
            }
        }
        let want = tasks.len() as u32;
        let grant = self.scheduler.admit(candidate, now, want);
        tasks.truncate(grant as usize);
        let campaign = Campaign { kind: CampaignKind::Traceroute, facility: candidate, tasks };
        (campaign, (want - grant) as usize)
    }
}

impl<B: TraceBackend> Prober for ProbeEngine<B> {
    fn validate(&mut self, request: &ProbeRequest, now: Timestamp) -> ProbeReport {
        self.stats.requests += 1;
        let pre_t = request.bin_start.saturating_sub(self.config.baseline_lookback_secs);
        let mut report = ProbeReport::default();
        for &candidate in request.candidates.iter().take(self.config.max_candidates) {
            let (campaign, dropped) = self.plan_campaign(request, candidate, now);
            report.rate_limited += dropped;
            let mut pairs = Vec::with_capacity(campaign.tasks.len());
            for ProbeTask { vantage, target } in campaign.tasks {
                let pre = self.backend.trace(vantage, target, pre_t);
                let post = self.backend.trace(vantage, target, now);
                report.probes_sent += 1;
                pairs.push(MeasuredPair { vantage, target, pre, post });
            }
            let (verdict, evidence) = self.config.analyzer.judge(candidate, &pairs);
            match verdict {
                FacilityVerdict::Confirmed => self.stats.confirmed += 1,
                FacilityVerdict::Refuted => self.stats.refuted += 1,
                FacilityVerdict::Inconclusive => self.stats.inconclusive += 1,
            }
            report.verdicts.push((candidate, verdict));
            report.evidence.extend(evidence);
        }
        self.stats.probes_sent += report.probes_sent;
        self.stats.rate_limited += report.rate_limited;
        report
    }
}

impl<B: TraceBackend> RestorationProber for ProbeEngine<B> {
    /// Re-probes an incident epicenter: baseline traces anchored before
    /// `incident_start` select the (vantage, target) pairs that crossed
    /// the building when it was healthy; a quorum of them crossing it
    /// again at `now` is restoration. Admission shares the per-facility
    /// token bucket with validation campaigns.
    fn check(
        &mut self,
        epicenter: FacilityId,
        targets: &[Asn],
        incident_start: Timestamp,
        now: Timestamp,
    ) -> RestorationReport {
        self.stats.restoration_checks += 1;
        let targets = self.targets_for(epicenter, targets);
        let avoid = self.colo.facility(epicenter).map(|f| f.city);
        let panel = self.registry.select(
            avoid,
            self.config.vantages_per_target,
            (epicenter.0 as u64) << 32 ^ now,
        );
        let mut tasks: Vec<ProbeTask> = Vec::new();
        for vp in &panel {
            let vantage = self.registry.get(*vp).asn;
            for &target in &targets {
                tasks.push(ProbeTask { vantage, target });
            }
        }
        let want = tasks.len() as u32;
        let grant = self.scheduler.admit(epicenter, now, want);
        tasks.truncate(grant as usize);
        let mut report = RestorationReport {
            verdict: RestorationVerdict::Inconclusive,
            watched: 0,
            crossing: 0,
            probes_sent: 0,
            rate_limited: (want - grant) as usize,
        };
        let pre_t = incident_start.saturating_sub(self.config.baseline_lookback_secs);
        for ProbeTask { vantage, target } in tasks {
            let pre = self.backend.trace(vantage, target, pre_t);
            let post = self.backend.trace(vantage, target, now);
            report.probes_sent += 1;
            if !pre.reached || !pre.crosses_facility(epicenter) {
                continue; // no baseline through the building: proves nothing
            }
            report.watched += 1;
            if post.reached && post.crosses_facility(epicenter) {
                report.crossing += 1;
            }
        }
        report.verdict = if report.watched < self.config.analyzer.min_baseline {
            RestorationVerdict::Inconclusive
        } else if report.crossing as f64 / report.watched as f64 >= self.config.restore_quorum {
            self.stats.restorations_seen += 1;
            RestorationVerdict::Restored
        } else {
            RestorationVerdict::StillDown
        };
        self.stats.probes_sent += report.probes_sent;
        self.stats.rate_limited += report.rate_limited;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PostState;
    use crate::trace::{IfaceOwner, TraceHop};
    use crate::vantage::VantagePoint;
    use kepler_topology::entities::Facility;
    use kepler_topology::{CityId, Continent, GeoPoint};
    use std::net::{IpAddr, Ipv4Addr};

    /// A scripted backend: during `[down_from, down_to)` every path that
    /// would cross `dark` detours (or dies, for odd targets); otherwise
    /// the path crosses the target's facility.
    struct ScriptedBackend {
        dark: FacilityId,
        down_from: Timestamp,
        down_to: Timestamp,
        fac_of: fn(Asn) -> FacilityId,
    }

    fn hop(fac: FacilityId, asn: Asn) -> TraceHop {
        TraceHop {
            addr: IpAddr::V4(Ipv4Addr::new(11, (fac.0 % 250) as u8, (asn.0 % 250) as u8, 1)),
            owner: IfaceOwner::FacilityPort { asn, facility: fac },
            rtt_ms: 1.0,
        }
    }

    impl TraceBackend for ScriptedBackend {
        fn trace(&self, _vantage: Asn, target: Asn, t: Timestamp) -> Trace {
            let fac = (self.fac_of)(target);
            if t >= self.down_from && t < self.down_to && fac == self.dark {
                if target.0 % 2 == 1 {
                    return Trace::unreachable();
                }
                // Detour through a transit facility, skipping the dark one.
                return Trace { hops: vec![hop(FacilityId(99), Asn(7))], reached: true };
            }
            Trace { hops: vec![hop(FacilityId(99), Asn(7)), hop(fac, target)], reached: true }
        }
    }

    fn colo_with(facs: &[(u32, &[u32])]) -> ColocationMap {
        let mut colo = ColocationMap::new();
        // Facility ids must be dense: register every id up to the max.
        let max = facs.iter().map(|(f, _)| *f).max().unwrap_or(0).max(99);
        for f in 0..=max {
            colo.add_facility(Facility {
                id: FacilityId(f),
                name: format!("F{f}"),
                address: String::new(),
                postcode: format!("P{f}"),
                country: "GB".into(),
                city: CityId(0),
                continent: Continent::Europe,
                point: GeoPoint::new(51.5, 0.0),
                operator: "Op".into(),
            });
        }
        for &(f, members) in facs {
            for &m in members {
                colo.add_fac_member(FacilityId(f), Asn(m));
            }
        }
        colo
    }

    fn registry() -> VantageRegistry {
        let mut r = VantageRegistry::new();
        for i in 0..6u32 {
            r.register(VantagePoint { asn: Asn(900 + i), home_city: Some(CityId(5)) });
        }
        r
    }

    fn request(candidates: &[u32], fars: &[u32]) -> ProbeRequest {
        ProbeRequest {
            pop: LocationTag::City(CityId(0)),
            bin_start: 10_000,
            candidates: candidates.iter().map(|&f| FacilityId(f)).collect(),
            affected_far: fars.iter().map(|&a| Asn(a)).collect(),
            affected_near: vec![Asn(1)],
        }
    }

    fn fac_of(a: Asn) -> FacilityId {
        // Targets 20..24 live in facility 1, 30..34 in facility 2.
        if a.0 < 30 {
            FacilityId(1)
        } else {
            FacilityId(2)
        }
    }

    #[test]
    fn disambiguates_the_dark_twin() {
        let colo = colo_with(&[(1, &[20, 21, 22, 30, 31, 32]), (2, &[20, 21, 22, 30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        // Both candidates share the full membership (colocation twins);
        // only paths through facility 1 actually died.
        let report = engine.validate(&request(&[1, 2], &[20, 21, 22, 30, 31, 32]), 10_060);
        assert_eq!(report.verdict_for(FacilityId(1)), Some(FacilityVerdict::Confirmed));
        assert_eq!(report.verdict_for(FacilityId(2)), Some(FacilityVerdict::Refuted));
        assert_eq!(report.resolved(), Some(FacilityId(1)));
        assert!(!report.all_refuted());
        assert!(report.probes_sent > 0);
        // Evidence names the dead building's hop with its post state.
        assert!(report.evidence.iter().any(|e| e.facility == FacilityId(1)
            && matches!(e.post, PostState::Detoured | PostState::Unreachable)));
        assert_eq!(engine.stats().confirmed, 1);
        assert_eq!(engine.stats().refuted, 1);
    }

    #[test]
    fn healthy_candidates_are_refuted() {
        let colo = colo_with(&[(2, &[30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let report = engine.validate(&request(&[2], &[30, 31, 32]), 10_060);
        assert!(report.all_refuted());
        assert_eq!(report.resolved(), None);
    }

    #[test]
    fn rate_limiting_bounds_and_degrades_to_inconclusive() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let config = ProbeEngineConfig {
            rate: RateLimit { burst: 4, per_sec: 0.5 },
            ..ProbeEngineConfig::default()
        };
        let mut engine = ProbeEngine::new(backend, registry(), colo, config);
        let r1 = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert_eq!(r1.probes_sent, 4, "burst bounds the first campaign");
        assert!(r1.rate_limited > 0);
        // Immediately re-validating finds an empty bucket: no probes, no
        // baseline, inconclusive — never a made-up verdict.
        let r2 = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert_eq!(r2.probes_sent, 0);
        assert_eq!(r2.verdict_for(FacilityId(1)), Some(FacilityVerdict::Inconclusive));
    }

    #[test]
    fn restoration_check_tracks_the_repair() {
        // Facility 1 dark during [9_500, 20_000): checks before the repair
        // must say StillDown, checks after it Restored.
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        use crate::restoration::{RestorationProber, RestorationVerdict};
        let targets = [Asn(20), Asn(21), Asn(22)];
        let during = engine.check(FacilityId(1), &targets, 9_600, 12_000);
        assert_eq!(during.verdict, RestorationVerdict::StillDown);
        assert!(during.watched >= 2, "baseline paths crossed the building");
        assert_eq!(during.crossing, 0, "nothing crosses a dark building");
        let after = engine.check(FacilityId(1), &targets, 9_600, 30_000);
        assert_eq!(after.verdict, RestorationVerdict::Restored);
        assert_eq!(after.crossing, after.watched);
        assert_eq!(engine.stats().restoration_checks, 2);
        assert_eq!(engine.stats().restorations_seen, 1);
    }

    #[test]
    fn restoration_without_baseline_or_budget_is_inconclusive() {
        use crate::restoration::{RestorationProber, RestorationVerdict};
        // Targets in facility 2: no baseline ever crossed facility 1, so a
        // check on facility 1 cannot decide anything.
        let colo = colo_with(&[(1, &[20]), (2, &[30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let no_baseline = engine.check(FacilityId(1), &[Asn(30), Asn(31)], 9_600, 30_000);
        assert_eq!(no_baseline.verdict, RestorationVerdict::Inconclusive);
        // A drained bucket yields Inconclusive, never Restored.
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let config = ProbeEngineConfig {
            rate: RateLimit { burst: 1, per_sec: 0.0 },
            ..ProbeEngineConfig::default()
        };
        let mut engine = ProbeEngine::new(backend, registry(), colo, config);
        let starved = engine.check(FacilityId(1), &[Asn(20), Asn(21), Asn(22)], 9_600, 30_000);
        assert_eq!(starved.verdict, RestorationVerdict::Inconclusive, "{starved:?}");
        assert!(starved.rate_limited > 0);
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let colo = colo_with(&[(1, &[20]), (2, &[20]), (3, &[20]), (4, &[20]), (5, &[20])]);
        let backend =
            ScriptedBackend { dark: FacilityId(9), down_from: u64::MAX, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let report = engine.validate(&request(&[1, 2, 3, 4, 5], &[20, 21]), 10_060);
        assert_eq!(report.verdicts.len(), 4, "paper's four-facility bound");
    }
}

//! The probe engine: schedule → measure → analyze, behind the
//! [`Prober`] trait the detector consumes.
//!
//! The engine is generic over an [`AsyncTraceBackend`] — the netsim data
//! plane behind a [`SyncAdapter`] in this repository, a RIPE-Atlas-shaped
//! API client in a deployment. One [`ProbeRequest`] (emitted by
//! `kepler-core`'s investigator when passive localization is ambiguous)
//! becomes, per candidate facility:
//!
//! 1. target selection — affected far-end ASes co-located in the
//!    candidate, from the colocation map;
//! 2. vantage selection — a deterministic panel avoiding the suspect
//!    city;
//! 3. admission — the per-facility token bucket and the platform credit
//!    ledger trim the campaign;
//! 4. measurement — one archived/pre-event baseline trace and one fresh
//!    trace per admitted (vantage, target) pair, each driven through the
//!    async lifecycle (submit → poll → collect, with deadlines and
//!    retries on seeded exponential backoff);
//! 5. analysis — [`PathAnalyzer::judge`] turns the completed pairs into
//!    a [`FacilityVerdict`] with hop-level evidence.
//!
//! A campaign where fewer than a quorum of pairs complete is marked
//! *degraded* ([`ProbeReport::degraded`]); campaign outcomes feed the
//! backend [`HealthTracker`], and while the backend is OFFLINE the engine
//! shrinks to a canary campaign so recovery stays detectable without
//! hammering a dead platform.

use crate::analysis::{FacilityVerdict, HopEvidence, MeasuredPair, PathAnalyzer};
use crate::health::{BackendHealth, HealthConfig, HealthTracker};
use crate::lifecycle::{drive, AsyncTraceBackend, LifecycleConfig, SyncAdapter};
use crate::restoration::{Epicenter, RestorationProber, RestorationReport, RestorationVerdict};
use crate::schedule::{
    Campaign, CampaignKind, CreditConfig, CreditLedger, ProbeScheduler, ProbeTask, RateLimit,
};
use crate::telemetry::SharedRttLedger;
use crate::trace::{IfaceOwner, Trace};
use crate::vantage::VantageRegistry;
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use kepler_topology::{CityId, ColocationMap, FacilityId};

/// A validation request from the investigation stage: "passive evidence
/// suspects these colocated facilities — which one is actually dark?"
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeRequest {
    /// The PoP tag whose signals raised the suspicion.
    pub pop: LocationTag,
    /// Start of the bin that raised it.
    pub bin_start: Timestamp,
    /// Candidate epicenters, best passive score first (the paper bounds
    /// this at the up-to-four facilities along a physical link).
    pub candidates: Vec<FacilityId>,
    /// Far-end ASes whose stable paths deviated (probe targets).
    pub affected_far: Vec<Asn>,
    /// Near-end ASes that raised the signals.
    pub affected_near: Vec<Asn>,
}

/// What the engine found for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeReport {
    /// Per-candidate verdicts, in request order.
    pub verdicts: Vec<(FacilityId, FacilityVerdict)>,
    /// Hop-level evidence behind the verdicts.
    pub evidence: Vec<HopEvidence>,
    /// Fresh probes actually sent (baseline lookups are archive reads and
    /// are not counted; retries of one probe are not re-counted).
    pub probes_sent: usize,
    /// Probes dropped by the per-facility rate limiter or the credit
    /// ledger.
    pub rate_limited: usize,
    /// Fraction of planned measurement pairs that completed (1.0 when
    /// nothing needed measuring).
    pub completeness: f64,
    /// Measurement attempts that hit their deadline.
    pub timeouts: usize,
    /// Re-submissions after failed/expired attempts.
    pub retries: usize,
    /// Whether the campaign fell below the completeness quorum (or the
    /// backend was OFFLINE): verdicts are present but must not be
    /// trusted — the detector falls back to passive localization.
    pub degraded: bool,
}

impl Default for ProbeReport {
    fn default() -> Self {
        ProbeReport {
            verdicts: Vec::new(),
            evidence: Vec::new(),
            probes_sent: 0,
            rate_limited: 0,
            completeness: 1.0,
            timeouts: 0,
            retries: 0,
            degraded: false,
        }
    }
}

impl ProbeReport {
    /// The verdict for one candidate, if it was judged.
    pub fn verdict_for(&self, fac: FacilityId) -> Option<FacilityVerdict> {
        self.verdicts.iter().find(|(f, _)| *f == fac).map(|(_, v)| *v)
    }

    /// The single confirmed facility, when exactly one *distinct*
    /// candidate was confirmed down — the disambiguation success case.
    pub fn resolved(&self) -> Option<FacilityId> {
        let confirmed: std::collections::BTreeSet<FacilityId> = self
            .verdicts
            .iter()
            .filter(|(_, v)| *v == FacilityVerdict::Confirmed)
            .map(|(f, _)| *f)
            .collect();
        if confirmed.len() == 1 {
            confirmed.first().copied()
        } else {
            None
        }
    }

    /// Whether every judged candidate was refuted (the suspicion was a
    /// false positive).
    pub fn all_refuted(&self) -> bool {
        !self.verdicts.is_empty()
            && self.verdicts.iter().all(|(_, v)| *v == FacilityVerdict::Refuted)
    }
}

/// A synchronous measurement backend: answers one trace from a vantage
/// AS toward a destination AS at a given time. Times in the past are
/// archive lookups (weekly dumps in the paper); the current time is a
/// live campaign. Wrap in [`SyncAdapter`] to satisfy the engine's
/// [`AsyncTraceBackend`] bound (or just call [`ProbeEngine::new`], which
/// wraps for you).
pub trait TraceBackend {
    /// Measures (or looks up) `vantage → target` at `t`.
    fn trace(&self, vantage: Asn, target: Asn, t: Timestamp) -> Trace;
}

/// The validation interface the detector consumes. `kepler-core` calls
/// this for every ambiguous localization when a prober is attached.
pub trait Prober {
    /// Runs the campaigns for one request and reports verdicts.
    fn validate(&mut self, request: &ProbeRequest, now: Timestamp) -> ProbeReport;

    /// Current backend health, for graceful degradation decisions.
    /// Probers without health tracking report permanently ONLINE.
    fn health(&self) -> BackendHealth {
        BackendHealth::Online
    }
}

/// Engine tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeEngineConfig {
    /// Vantage points probing each target.
    pub vantages_per_target: usize,
    /// Targets measured per candidate facility.
    pub max_targets_per_candidate: usize,
    /// Candidates judged per request (paper: a physical link traverses up
    /// to four facilities).
    pub max_candidates: usize,
    /// Per-facility probe budget.
    pub rate: RateLimit,
    /// Platform credit budget (shared across all campaigns of this
    /// engine's API key).
    pub credits: CreditConfig,
    /// Per-measurement lifecycle: deadlines, retries, completeness
    /// quorum.
    pub lifecycle: LifecycleConfig,
    /// Backend-health hysteresis thresholds.
    pub health: HealthConfig,
    /// How far before the bin the baseline lookup reaches (must predate
    /// the event; archives are weekly in the paper, the simulator answers
    /// any past instant).
    pub baseline_lookback_secs: u64,
    /// Fraction of watched baseline paths that must cross the epicenter
    /// again before a restoration check reports
    /// [`RestorationVerdict::Restored`].
    pub restore_quorum: f64,
    /// Verdict thresholds.
    pub analyzer: PathAnalyzer,
}

impl Default for ProbeEngineConfig {
    fn default() -> Self {
        ProbeEngineConfig {
            vantages_per_target: 6,
            max_targets_per_candidate: 10,
            max_candidates: 4,
            rate: RateLimit::default(),
            credits: CreditConfig::default(),
            lifecycle: LifecycleConfig::default(),
            health: HealthConfig::default(),
            baseline_lookback_secs: 3_600,
            restore_quorum: 0.5,
            analyzer: PathAnalyzer::default(),
        }
    }
}

/// Lifetime counters of one engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Requests validated.
    pub requests: usize,
    /// Fresh probes sent.
    pub probes_sent: usize,
    /// Probes dropped by rate limiting or credit exhaustion.
    pub rate_limited: usize,
    /// Of those, probes denied by the credit ledger specifically.
    pub credit_denied: usize,
    /// Measurement attempts that hit their deadline.
    pub timeouts: usize,
    /// Measurement re-submissions.
    pub retries: usize,
    /// Campaigns that fell below the completeness quorum.
    pub degraded_campaigns: usize,
    /// Candidates confirmed down.
    pub confirmed: usize,
    /// Candidates refuted.
    pub refuted: usize,
    /// Candidates left inconclusive.
    pub inconclusive: usize,
    /// Restoration checks run.
    pub restoration_checks: usize,
    /// Restoration checks that found the epicenter forwarding again.
    pub restorations_seen: usize,
}

/// The probe engine.
///
/// ```
/// use kepler_bgp::Asn;
/// use kepler_bgpstream::Timestamp;
/// use kepler_docmine::LocationTag;
/// use kepler_probe::{
///     FacilityVerdict, IfaceOwner, ProbeEngine, ProbeEngineConfig, ProbeRequest, Prober,
///     Trace, TraceBackend, TraceHop, VantagePoint, VantageRegistry,
/// };
/// use kepler_topology::entities::Facility;
/// use kepler_topology::{CityId, ColocationMap, Continent, FacilityId, GeoPoint};
///
/// // A backend scripted so facility 0 went dark at t = 5_000 (its
/// // baseline paths now detour) while facility 1 keeps forwarding.
/// // Even-numbered targets are physically behind facility 0, odd ones
/// // behind facility 1.
/// struct Scripted;
/// impl TraceBackend for Scripted {
///     fn trace(&self, _vantage: Asn, target: Asn, t: Timestamp) -> Trace {
///         let fac = FacilityId(target.0 % 2);
///         let hop = TraceHop {
///             addr: std::net::IpAddr::from([11, 0, fac.0 as u8, (target.0 % 250) as u8]),
///             owner: IfaceOwner::FacilityPort { asn: target, facility: fac },
///             rtt_ms: 1.0,
///         };
///         if t >= 5_000 && fac == FacilityId(0) {
///             Trace { hops: vec![], reached: true } // detours around the dark building
///         } else {
///             Trace { hops: vec![hop], reached: true }
///         }
///     }
/// }
///
/// // Two colocation twins listing identical members — passively
/// // indistinguishable, the case the engine exists for.
/// let mut colo = ColocationMap::new();
/// for id in [0u32, 1] {
///     colo.add_facility(Facility {
///         id: FacilityId(id),
///         name: format!("F{id}"),
///         address: String::new(),
///         postcode: format!("P{id}"),
///         country: "GB".into(),
///         city: CityId(0),
///         continent: Continent::Europe,
///         point: GeoPoint::new(51.5, 0.0),
///         operator: "Op".into(),
///     });
///     for far in [20u32, 21, 22, 23] {
///         colo.add_fac_member(FacilityId(id), Asn(far));
///     }
/// }
/// let mut registry = VantageRegistry::new();
/// for i in 0..4u32 {
///     registry.register(VantagePoint { asn: Asn(900 + i), home_city: Some(CityId(5)) });
/// }
///
/// let mut engine = ProbeEngine::new(Scripted, registry, colo, ProbeEngineConfig::default());
/// let report = engine.validate(
///     &ProbeRequest {
///         pop: LocationTag::City(CityId(0)),
///         bin_start: 5_000,
///         candidates: vec![FacilityId(0), FacilityId(1)],
///         affected_far: vec![Asn(20), Asn(21), Asn(22), Asn(23)],
///         affected_near: vec![Asn(1)],
///     },
///     5_060,
/// );
/// // Only the building whose baseline paths vanished is confirmed dark.
/// assert_eq!(report.resolved(), Some(FacilityId(0)));
/// assert_eq!(report.verdict_for(FacilityId(1)), Some(FacilityVerdict::Refuted));
/// assert_eq!(report.completeness, 1.0, "a sync backend never loses probes");
/// assert!(!report.degraded);
/// ```
pub struct ProbeEngine<B> {
    backend: B,
    registry: VantageRegistry,
    colo: ColocationMap,
    scheduler: ProbeScheduler,
    credits: CreditLedger,
    health: HealthTracker,
    config: ProbeEngineConfig,
    stats: ProbeStats,
    telemetry: Option<SharedRttLedger>,
}

impl<B: TraceBackend> ProbeEngine<SyncAdapter<B>> {
    /// Builds an engine over a *synchronous* backend (the common case in
    /// this repository), wrapping it in [`SyncAdapter`].
    pub fn new(
        backend: B,
        registry: VantageRegistry,
        colo: ColocationMap,
        config: ProbeEngineConfig,
    ) -> Self {
        ProbeEngine::with_async(SyncAdapter(backend), registry, colo, config)
    }
}

impl<B: AsyncTraceBackend> ProbeEngine<B> {
    /// Builds an engine over an async-shaped backend (a real measurement
    /// platform client, a fault-injection wrapper, a transcript
    /// [`ReplayBackend`](crate::fixture::ReplayBackend)).
    pub fn with_async(
        backend: B,
        registry: VantageRegistry,
        colo: ColocationMap,
        config: ProbeEngineConfig,
    ) -> Self {
        ProbeEngine {
            backend,
            registry,
            colo,
            scheduler: ProbeScheduler::new(config.rate),
            credits: CreditLedger::new(config.credits),
            health: HealthTracker::new(config.health),
            config,
            stats: ProbeStats::default(),
            telemetry: None,
        }
    }

    /// Attaches a shared RTT ledger: from now on every completed
    /// measurement pair also feeds differential-RTT telemetry — the
    /// pre-event leg as a shared hop-pair baseline, the live leg as a
    /// current observation checked against it. Campaign verdicts are
    /// unchanged; the ledger is a pure tap.
    pub fn with_telemetry(mut self, ledger: SharedRttLedger) -> Self {
        self.telemetry = Some(ledger);
        self
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ProbeStats {
        self.stats
    }

    /// Current backend health.
    pub fn backend_health(&self) -> BackendHealth {
        self.health.state()
    }

    /// The measurement backend (e.g. to extract a recorded transcript).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The vantage registry (for inspection).
    pub fn registry(&self) -> &VantageRegistry {
        &self.registry
    }

    /// Probe targets for an epicenter at any granularity: affected
    /// far-ends co-located there, falling back to all affected far-ends
    /// when the map knows none.
    fn targets_for_epicenter(&self, epicenter: Epicenter, affected_far: &[Asn]) -> Vec<Asn> {
        let cap = self.config.max_targets_per_candidate;
        let at_epicenter = |a: &Asn| match epicenter {
            Epicenter::Facility(f) => self.colo.is_at_facility(*a, f),
            Epicenter::Ixp(x) => self.colo.members_of_ixp(x).contains(a),
            Epicenter::City(c) => self
                .colo
                .facilities_of_as(*a)
                .iter()
                .any(|f| self.colo.facility(*f).map(|f| f.city == c).unwrap_or(false)),
        };
        let colocated: Vec<Asn> =
            affected_far.iter().copied().filter(|a| at_epicenter(a)).take(cap).collect();
        if !colocated.is_empty() {
            return colocated;
        }
        affected_far.iter().copied().take(cap).collect()
    }

    /// The metro to keep vantage points out of.
    fn epicenter_city(&self, epicenter: Epicenter) -> Option<CityId> {
        match epicenter {
            Epicenter::Facility(f) => self.colo.facility(f).map(|f| f.city),
            Epicenter::Ixp(x) => self.colo.ixp(x).map(|x| x.city),
            Epicenter::City(c) => Some(c),
        }
    }

    /// Whether a trace demonstrably crosses the epicenter.
    fn crosses_epicenter(&self, trace: &Trace, epicenter: Epicenter) -> bool {
        match epicenter {
            Epicenter::Facility(f) => trace.crosses_facility(f),
            Epicenter::Ixp(x) => trace.crosses_ixp(x),
            Epicenter::City(c) => trace.hops.iter().any(|h| match h.owner {
                IfaceOwner::FacilityPort { facility, .. } => {
                    self.colo.facility(facility).map(|f| f.city == c).unwrap_or(false)
                }
                IfaceOwner::IxpLan { ixp, .. } => {
                    self.colo.ixp(ixp).map(|x| x.city == c).unwrap_or(false)
                }
            }),
        }
    }

    /// Plans the admission-trimmed traceroute campaign against one
    /// epicenter: token bucket first (per-epicenter fairness), credit
    /// ledger second (platform-wide spend). Returns the campaign and how
    /// many tasks admission dropped.
    fn plan_epicenter_campaign(
        &mut self,
        epicenter: Epicenter,
        affected_far: &[Asn],
        panel_seed: u64,
        now: Timestamp,
        vantage_cap: usize,
    ) -> (Vec<ProbeTask>, usize) {
        let targets = self.targets_for_epicenter(epicenter, affected_far);
        let avoid = self.epicenter_city(epicenter);
        let panel = self.registry.select(
            avoid,
            vantage_cap.min(self.config.vantages_per_target),
            panel_seed,
        );
        // Target-major task order: trimming a campaign still spreads the
        // remaining probes over all targets.
        let mut tasks: Vec<ProbeTask> = Vec::new();
        for vp in &panel {
            let vantage = self.registry.get(*vp).asn;
            for &target in &targets {
                tasks.push(ProbeTask { vantage, target });
            }
        }
        let want = tasks.len() as u32;
        let bucket_grant = self.scheduler.admit_key(epicenter.sched_key(), now, want);
        let grant = self.credits.admit(now, bucket_grant);
        self.stats.credit_denied += (bucket_grant - grant) as usize;
        tasks.truncate(grant as usize);
        (tasks, (want - grant) as usize)
    }

    /// Plans the (admission-trimmed) traceroute campaign against one
    /// candidate facility.
    fn plan_campaign(
        &mut self,
        request: &ProbeRequest,
        candidate: FacilityId,
        now: Timestamp,
        vantage_cap: usize,
    ) -> (Campaign, usize) {
        let (tasks, dropped) = self.plan_epicenter_campaign(
            Epicenter::Facility(candidate),
            &request.affected_far,
            (candidate.0 as u64) << 32 ^ request.bin_start,
            now,
            vantage_cap,
        );
        let campaign = Campaign { kind: CampaignKind::Traceroute, facility: candidate, tasks };
        (campaign, dropped)
    }

    /// Drives the pre/post measurement pair for one task through the
    /// async lifecycle. Returns the completed pair (if both legs landed)
    /// and accumulates lifecycle counters into `report`.
    fn measure_pair(
        &mut self,
        task: ProbeTask,
        pre_t: Timestamp,
        now: Timestamp,
        report: &mut ProbeReport,
    ) -> Option<MeasuredPair> {
        let ProbeTask { vantage, target } = task;
        let cfg = self.config.lifecycle;
        let pre = drive(&mut self.backend, vantage, target, pre_t, now, &cfg);
        let post = drive(&mut self.backend, vantage, target, now, now, &cfg);
        report.probes_sent += 1;
        report.retries += pre.retries + post.retries;
        report.timeouts += pre.timeouts + post.timeouts;
        match (pre.trace, post.trace) {
            (Some(pre), Some(post)) => {
                if let Some(ledger) = &self.telemetry {
                    let mut ledger = ledger.lock().expect("telemetry ledger poisoned");
                    ledger.observe_baseline(vantage, &pre);
                    ledger.observe_current(vantage, now, &post);
                }
                Some(MeasuredPair { vantage, target, pre, post })
            }
            _ => None,
        }
    }
}

impl<B: AsyncTraceBackend> Prober for ProbeEngine<B> {
    fn validate(&mut self, request: &ProbeRequest, now: Timestamp) -> ProbeReport {
        self.stats.requests += 1;
        let pre_t = request.bin_start.saturating_sub(self.config.baseline_lookback_secs);
        let mut report = ProbeReport::default();
        // While the backend is OFFLINE, shrink to a canary: one candidate,
        // one vantage per target. The canary keeps recovery detectable
        // without hammering a dead platform; its verdicts are marked
        // degraded regardless of how they come out.
        let offline = self.health.state() == BackendHealth::Offline;
        let (cand_cap, vantage_cap) =
            if offline { (1, 1) } else { (self.config.max_candidates, usize::MAX) };
        let mut planned = 0usize;
        let mut completed = 0usize;
        for &candidate in request.candidates.iter().take(cand_cap) {
            let (campaign, dropped) = self.plan_campaign(request, candidate, now, vantage_cap);
            report.rate_limited += dropped;
            planned += campaign.tasks.len();
            let mut pairs = Vec::with_capacity(campaign.tasks.len());
            for task in campaign.tasks {
                if let Some(pair) = self.measure_pair(task, pre_t, now, &mut report) {
                    pairs.push(pair);
                }
            }
            completed += pairs.len();
            let (verdict, evidence) = self.config.analyzer.judge(candidate, &pairs);
            match verdict {
                FacilityVerdict::Confirmed => self.stats.confirmed += 1,
                FacilityVerdict::Refuted => self.stats.refuted += 1,
                FacilityVerdict::Inconclusive => self.stats.inconclusive += 1,
            }
            report.verdicts.push((candidate, verdict));
            report.evidence.extend(evidence);
        }
        report.completeness = if planned == 0 { 1.0 } else { completed as f64 / planned as f64 };
        let quorum_met = report.completeness >= self.config.lifecycle.quorum;
        report.degraded = offline || (planned > 0 && !quorum_met);
        if planned > 0 {
            self.health.record(quorum_met);
        }
        if report.degraded {
            self.stats.degraded_campaigns += 1;
        }
        self.stats.probes_sent += report.probes_sent;
        self.stats.rate_limited += report.rate_limited;
        self.stats.timeouts += report.timeouts;
        self.stats.retries += report.retries;
        report
    }

    fn health(&self) -> BackendHealth {
        self.health.state()
    }
}

impl<B: AsyncTraceBackend> RestorationProber for ProbeEngine<B> {
    /// Re-probes an incident epicenter: baseline traces anchored before
    /// `incident_start` select the (vantage, target) pairs that crossed
    /// it when it was healthy; a quorum of them crossing it again at
    /// `now` is restoration. Admission shares the token buckets and the
    /// credit ledger with validation campaigns.
    fn check(
        &mut self,
        epicenter: Epicenter,
        targets: &[Asn],
        incident_start: Timestamp,
        now: Timestamp,
    ) -> RestorationReport {
        self.stats.restoration_checks += 1;
        let vantage_cap =
            if self.health.state() == BackendHealth::Offline { 1 } else { usize::MAX };
        let (tasks, dropped) = self.plan_epicenter_campaign(
            epicenter,
            targets,
            epicenter.seed() ^ now,
            now,
            vantage_cap,
        );
        let mut report = RestorationReport {
            verdict: RestorationVerdict::Inconclusive,
            watched: 0,
            crossing: 0,
            probes_sent: 0,
            rate_limited: dropped,
        };
        let pre_t = incident_start.saturating_sub(self.config.baseline_lookback_secs);
        let planned = tasks.len();
        let mut completed = 0usize;
        let mut scratch = ProbeReport::default();
        for task in tasks {
            let Some(pair) = self.measure_pair(task, pre_t, now, &mut scratch) else {
                continue;
            };
            completed += 1;
            if !pair.pre.reached || !self.crosses_epicenter(&pair.pre, epicenter) {
                continue; // no baseline through the epicenter: proves nothing
            }
            report.watched += 1;
            if pair.post.reached && self.crosses_epicenter(&pair.post, epicenter) {
                report.crossing += 1;
            }
        }
        report.probes_sent = scratch.probes_sent;
        report.verdict = if report.watched < self.config.analyzer.min_baseline {
            RestorationVerdict::Inconclusive
        } else if report.crossing as f64 / report.watched as f64 >= self.config.restore_quorum {
            self.stats.restorations_seen += 1;
            RestorationVerdict::Restored
        } else {
            RestorationVerdict::StillDown
        };
        if planned > 0 {
            self.health.record(completed as f64 / planned as f64 >= self.config.lifecycle.quorum);
        }
        self.stats.probes_sent += scratch.probes_sent;
        self.stats.rate_limited += report.rate_limited;
        self.stats.timeouts += scratch.timeouts;
        self.stats.retries += scratch.retries;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::PostState;
    use crate::lifecycle::{Measurement, MeasurementState, SubmitResult};
    use crate::trace::{IfaceOwner, TraceHop};
    use crate::vantage::VantagePoint;
    use kepler_topology::entities::{Facility, Ixp};
    use kepler_topology::{CityId, Continent, GeoPoint, IxpId};
    use std::net::{IpAddr, Ipv4Addr};

    /// A scripted backend: during `[down_from, down_to)` every path that
    /// would cross `dark` detours (or dies, for odd targets); otherwise
    /// the path crosses the target's facility.
    struct ScriptedBackend {
        dark: FacilityId,
        down_from: Timestamp,
        down_to: Timestamp,
        fac_of: fn(Asn) -> FacilityId,
    }

    fn hop(fac: FacilityId, asn: Asn) -> TraceHop {
        TraceHop {
            addr: IpAddr::V4(Ipv4Addr::new(11, (fac.0 % 250) as u8, (asn.0 % 250) as u8, 1)),
            owner: IfaceOwner::FacilityPort { asn, facility: fac },
            rtt_ms: 1.0,
        }
    }

    impl TraceBackend for ScriptedBackend {
        fn trace(&self, _vantage: Asn, target: Asn, t: Timestamp) -> Trace {
            let fac = (self.fac_of)(target);
            if t >= self.down_from && t < self.down_to && fac == self.dark {
                if target.0 % 2 == 1 {
                    return Trace::unreachable();
                }
                // Detour through a transit facility, skipping the dark one.
                return Trace { hops: vec![hop(FacilityId(99), Asn(7))], reached: true };
            }
            Trace { hops: vec![hop(FacilityId(99), Asn(7)), hop(fac, target)], reached: true }
        }
    }

    fn colo_with(facs: &[(u32, &[u32])]) -> ColocationMap {
        let mut colo = ColocationMap::new();
        // Facility ids must be dense: register every id up to the max.
        let max = facs.iter().map(|(f, _)| *f).max().unwrap_or(0).max(99);
        for f in 0..=max {
            colo.add_facility(Facility {
                id: FacilityId(f),
                name: format!("F{f}"),
                address: String::new(),
                postcode: format!("P{f}"),
                country: "GB".into(),
                city: CityId(0),
                continent: Continent::Europe,
                point: GeoPoint::new(51.5, 0.0),
                operator: "Op".into(),
            });
        }
        for &(f, members) in facs {
            for &m in members {
                colo.add_fac_member(FacilityId(f), Asn(m));
            }
        }
        colo
    }

    fn registry() -> VantageRegistry {
        let mut r = VantageRegistry::new();
        for i in 0..6u32 {
            r.register(VantagePoint { asn: Asn(900 + i), home_city: Some(CityId(5)) });
        }
        r
    }

    fn request(candidates: &[u32], fars: &[u32]) -> ProbeRequest {
        ProbeRequest {
            pop: LocationTag::City(CityId(0)),
            bin_start: 10_000,
            candidates: candidates.iter().map(|&f| FacilityId(f)).collect(),
            affected_far: fars.iter().map(|&a| Asn(a)).collect(),
            affected_near: vec![Asn(1)],
        }
    }

    fn fac_of(a: Asn) -> FacilityId {
        // Targets 20..24 live in facility 1, 30..34 in facility 2.
        if a.0 < 30 {
            FacilityId(1)
        } else {
            FacilityId(2)
        }
    }

    #[test]
    fn disambiguates_the_dark_twin() {
        let colo = colo_with(&[(1, &[20, 21, 22, 30, 31, 32]), (2, &[20, 21, 22, 30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        // Both candidates share the full membership (colocation twins);
        // only paths through facility 1 actually died.
        let report = engine.validate(&request(&[1, 2], &[20, 21, 22, 30, 31, 32]), 10_060);
        assert_eq!(report.verdict_for(FacilityId(1)), Some(FacilityVerdict::Confirmed));
        assert_eq!(report.verdict_for(FacilityId(2)), Some(FacilityVerdict::Refuted));
        assert_eq!(report.resolved(), Some(FacilityId(1)));
        assert!(!report.all_refuted());
        assert!(report.probes_sent > 0);
        assert_eq!(report.completeness, 1.0);
        assert!(!report.degraded);
        // Evidence names the dead building's hop with its post state.
        assert!(report.evidence.iter().any(|e| e.facility == FacilityId(1)
            && matches!(e.post, PostState::Detoured | PostState::Unreachable)));
        assert_eq!(engine.stats().confirmed, 1);
        assert_eq!(engine.stats().refuted, 1);
        assert_eq!(engine.backend_health(), BackendHealth::Online);
    }

    #[test]
    fn healthy_candidates_are_refuted() {
        let colo = colo_with(&[(2, &[30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let report = engine.validate(&request(&[2], &[30, 31, 32]), 10_060);
        assert!(report.all_refuted());
        assert_eq!(report.resolved(), None);
    }

    #[test]
    fn rate_limiting_bounds_and_degrades_to_inconclusive() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let config = ProbeEngineConfig {
            rate: RateLimit { burst: 4, per_sec: 0.5 },
            ..ProbeEngineConfig::default()
        };
        let mut engine = ProbeEngine::new(backend, registry(), colo, config);
        let r1 = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert_eq!(r1.probes_sent, 4, "burst bounds the first campaign");
        assert!(r1.rate_limited > 0);
        // Immediately re-validating finds an empty bucket: no probes, no
        // baseline, inconclusive — never a made-up verdict.
        let r2 = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert_eq!(r2.probes_sent, 0);
        assert_eq!(r2.verdict_for(FacilityId(1)), Some(FacilityVerdict::Inconclusive));
        assert_eq!(r2.completeness, 1.0, "nothing planned, nothing incomplete");
        assert!(!r2.degraded, "an empty campaign is not a backend failure");
    }

    #[test]
    fn credit_exhaustion_trims_campaigns() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: u64::MAX, fac_of };
        let config = ProbeEngineConfig {
            credits: CreditConfig { capacity: 5.0, per_sec: 0.0, cost_per_probe: 1.0 },
            ..ProbeEngineConfig::default()
        };
        let mut engine = ProbeEngine::new(backend, registry(), colo, config);
        let r1 = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert_eq!(r1.probes_sent, 5, "credit pool bounds the campaign below the bucket");
        assert!(r1.rate_limited > 0);
        assert!(engine.stats().credit_denied > 0);
        let r2 = engine.validate(&request(&[1], &[20, 21, 22]), 10_070);
        assert_eq!(r2.probes_sent, 0, "pool stays drained without refill");
        assert_eq!(r2.verdict_for(FacilityId(1)), Some(FacilityVerdict::Inconclusive));
    }

    /// An async backend wrapping the scripted one that loses every
    /// measurement (eternally pending) while `lost` is true, and rejects
    /// submissions outright while `reject` is true.
    struct LossyBackend {
        inner: ScriptedBackend,
        lose: fn(&Measurement) -> bool,
        reject: fn(&Measurement) -> bool,
    }

    impl AsyncTraceBackend for LossyBackend {
        fn submit(&mut self, m: &Measurement) -> SubmitResult {
            if (self.reject)(m) {
                SubmitResult::Rejected
            } else {
                SubmitResult::Accepted
            }
        }
        fn poll(&mut self, m: &Measurement, _now: Timestamp) -> MeasurementState {
            if (self.lose)(m) {
                MeasurementState::Pending
            } else {
                MeasurementState::Ready(self.inner.trace(m.vantage, m.target, m.at))
            }
        }
    }

    fn lossy(lose: fn(&Measurement) -> bool, reject: fn(&Measurement) -> bool) -> LossyBackend {
        LossyBackend {
            inner: ScriptedBackend {
                dark: FacilityId(1),
                down_from: 9_500,
                down_to: u64::MAX,
                fac_of,
            },
            lose,
            reject,
        }
    }

    #[test]
    fn partial_loss_above_quorum_still_yields_verdicts() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        // Lose every measurement toward one target on every attempt: the
        // other pairs complete, quorum holds, verdicts stand.
        let backend = lossy(|m| m.target == Asn(21), |_| false);
        let mut engine =
            ProbeEngine::with_async(backend, registry(), colo, ProbeEngineConfig::default());
        let report = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert!(report.completeness > 0.5 && report.completeness < 1.0, "{report:?}");
        assert!(!report.degraded);
        assert!(report.timeouts > 0, "lost probes hit their deadlines");
        assert!(report.retries > 0, "and were retried");
        assert_eq!(report.verdict_for(FacilityId(1)), Some(FacilityVerdict::Confirmed));
        assert_eq!(engine.backend_health(), BackendHealth::Online);
    }

    #[test]
    fn total_loss_degrades_and_drives_health_offline() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend = lossy(|_| true, |_| false);
        let mut engine =
            ProbeEngine::with_async(backend, registry(), colo, ProbeEngineConfig::default());
        let mut states = Vec::new();
        for i in 0..7u64 {
            let report = engine.validate(&request(&[1], &[20, 21, 22]), 10_060 + i * 600);
            assert!(report.degraded, "nothing completed: report marked degraded");
            assert_eq!(report.completeness, 0.0);
            assert_eq!(
                report.verdict_for(FacilityId(1)),
                Some(FacilityVerdict::Inconclusive),
                "no measurements can never fabricate a verdict"
            );
            states.push(engine.backend_health());
        }
        assert!(states.contains(&BackendHealth::Degraded), "{states:?}");
        assert_eq!(*states.last().unwrap(), BackendHealth::Offline, "{states:?}");
        assert!(engine.stats().degraded_campaigns >= 7);
    }

    #[test]
    fn offline_canary_recovers_health() {
        let colo = colo_with(&[(1, &[20, 21, 22]), (2, &[20, 21, 22])]);
        // Reject everything before t=20_000 (a brownout), then heal.
        let backend = lossy(|_| false, |m| m.submitted < 20_000);
        let mut engine =
            ProbeEngine::with_async(backend, registry(), colo, ProbeEngineConfig::default());
        for i in 0..8u64 {
            engine.validate(&request(&[1, 2], &[20, 21, 22]), 10_060 + i * 600);
        }
        assert_eq!(engine.backend_health(), BackendHealth::Offline);
        // During the brownout the canary campaign is tiny.
        let canary = engine.validate(&request(&[1, 2], &[20, 21, 22]), 16_000);
        assert!(canary.degraded);
        assert_eq!(canary.verdicts.len(), 1, "offline: one canary candidate only");
        // After the platform heals, canaries succeed and health recovers.
        let mut last = BackendHealth::Offline;
        for i in 0..4u64 {
            engine.validate(&request(&[1, 2], &[20, 21, 22]), 30_000 + i * 600);
            last = engine.backend_health();
        }
        assert_eq!(last, BackendHealth::Online);
        // Fully recovered: campaigns are full-size and trusted again.
        let healed = engine.validate(&request(&[1, 2], &[20, 21, 22]), 40_000);
        assert!(!healed.degraded);
        assert_eq!(healed.verdicts.len(), 2);
    }

    #[test]
    fn restoration_check_tracks_the_repair() {
        // Facility 1 dark during [9_500, 20_000): checks before the repair
        // must say StillDown, checks after it Restored.
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        use crate::restoration::{RestorationProber, RestorationVerdict};
        let targets = [Asn(20), Asn(21), Asn(22)];
        let during = engine.check(Epicenter::Facility(FacilityId(1)), &targets, 9_600, 12_000);
        assert_eq!(during.verdict, RestorationVerdict::StillDown);
        assert!(during.watched >= 2, "baseline paths crossed the building");
        assert_eq!(during.crossing, 0, "nothing crosses a dark building");
        let after = engine.check(Epicenter::Facility(FacilityId(1)), &targets, 9_600, 30_000);
        assert_eq!(after.verdict, RestorationVerdict::Restored);
        assert_eq!(after.crossing, after.watched);
        assert_eq!(engine.stats().restoration_checks, 2);
        assert_eq!(engine.stats().restorations_seen, 1);
    }

    /// A backend where paths to targets cross an IXP fabric (IxpId 4)
    /// that goes dark during `[down_from, down_to)`.
    struct IxpBackend {
        down_from: Timestamp,
        down_to: Timestamp,
    }

    impl TraceBackend for IxpBackend {
        fn trace(&self, _vantage: Asn, target: Asn, t: Timestamp) -> Trace {
            let lan = TraceHop {
                addr: IpAddr::V4(Ipv4Addr::new(12, 4, (target.0 % 250) as u8, 1)),
                owner: IfaceOwner::IxpLan { asn: target, ixp: IxpId(4) },
                rtt_ms: 1.0,
            };
            if t >= self.down_from && t < self.down_to {
                // Fabric dark: private-interconnect detour, no LAN hop.
                return Trace { hops: vec![hop(FacilityId(99), Asn(7))], reached: true };
            }
            Trace { hops: vec![hop(FacilityId(99), Asn(7)), lan], reached: true }
        }
    }

    fn colo_with_ixp() -> ColocationMap {
        let mut colo = colo_with(&[(1, &[20, 21, 22])]);
        for i in 0..=4 {
            colo.add_ixp(Ixp {
                id: IxpId(i),
                name: "X".into(),
                url: String::new(),
                city: CityId(0),
                continent: Continent::Europe,
                route_server_asn: None,
            });
        }
        for m in [20u32, 21, 22] {
            colo.add_ixp_member(IxpId(4), Asn(m));
        }
        colo
    }

    #[test]
    fn ixp_epicenter_restoration_closes_on_crossing_evidence() {
        use crate::restoration::{RestorationProber, RestorationVerdict};
        let backend = IxpBackend { down_from: 9_500, down_to: 20_000 };
        let mut engine =
            ProbeEngine::new(backend, registry(), colo_with_ixp(), ProbeEngineConfig::default());
        let targets = [Asn(20), Asn(21), Asn(22)];
        let during = engine.check(Epicenter::Ixp(IxpId(4)), &targets, 9_600, 12_000);
        assert_eq!(during.verdict, RestorationVerdict::StillDown, "{during:?}");
        let after = engine.check(Epicenter::Ixp(IxpId(4)), &targets, 9_600, 30_000);
        assert_eq!(after.verdict, RestorationVerdict::Restored, "{after:?}");
    }

    #[test]
    fn city_epicenter_restoration_closes_on_crossing_evidence() {
        use crate::restoration::{RestorationProber, RestorationVerdict};
        // Facility 1 sits in CityId(0); its outage is a city-scoped
        // incident when passive localization could not split the metro.
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let targets = [Asn(20), Asn(21), Asn(22)];
        // Note: the scripted detour hop (FacilityId 99) is also in city 0,
        // so "crossing the city" holds even during the outage via the
        // detour facility — pick the *dark* facility's city carefully.
        // Here both are CityId(0); during the outage detours still cross
        // city 0, so the city check must say Restored throughout. That is
        // correct behavior for this topology (the metro keeps forwarding);
        // assert the conservative direction only after repair.
        let after = engine.check(Epicenter::City(CityId(0)), &targets, 9_600, 30_000);
        assert_eq!(after.verdict, RestorationVerdict::Restored, "{after:?}");
    }

    #[test]
    fn restoration_without_baseline_or_budget_is_inconclusive() {
        use crate::restoration::{RestorationProber, RestorationVerdict};
        // Targets in facility 2: no baseline ever crossed facility 1, so a
        // check on facility 1 cannot decide anything.
        let colo = colo_with(&[(1, &[20]), (2, &[30, 31, 32])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let no_baseline =
            engine.check(Epicenter::Facility(FacilityId(1)), &[Asn(30), Asn(31)], 9_600, 30_000);
        assert_eq!(no_baseline.verdict, RestorationVerdict::Inconclusive);
        // A drained bucket yields Inconclusive, never Restored.
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(1), down_from: 9_500, down_to: 20_000, fac_of };
        let config = ProbeEngineConfig {
            rate: RateLimit { burst: 1, per_sec: 0.0 },
            ..ProbeEngineConfig::default()
        };
        let mut engine = ProbeEngine::new(backend, registry(), colo, config);
        let starved = engine.check(
            Epicenter::Facility(FacilityId(1)),
            &[Asn(20), Asn(21), Asn(22)],
            9_600,
            30_000,
        );
        assert_eq!(starved.verdict, RestorationVerdict::Inconclusive, "{starved:?}");
        assert!(starved.rate_limited > 0);
    }

    #[test]
    fn lost_restoration_probes_never_restore() {
        use crate::restoration::{RestorationProber, RestorationVerdict};
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        // The building is actually back up (down_to 20_000, check at
        // 30_000) but every measurement is lost: the check must stay
        // Inconclusive, never guess Restored.
        let backend = lossy(|_| true, |_| false);
        let mut engine =
            ProbeEngine::with_async(backend, registry(), colo, ProbeEngineConfig::default());
        let r = engine.check(
            Epicenter::Facility(FacilityId(1)),
            &[Asn(20), Asn(21), Asn(22)],
            9_600,
            30_000,
        );
        assert_eq!(r.verdict, RestorationVerdict::Inconclusive, "{r:?}");
    }

    #[test]
    fn telemetry_tap_records_measured_pairs() {
        let colo = colo_with(&[(1, &[20, 21, 22])]);
        let backend =
            ScriptedBackend { dark: FacilityId(9), down_from: u64::MAX, down_to: u64::MAX, fac_of };
        let ledger = crate::telemetry::shared_ledger(10.0);
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default())
            .with_telemetry(ledger.clone());
        let report = engine.validate(&request(&[1], &[20, 21, 22]), 10_060);
        assert!(report.probes_sent > 0);
        let mut l = ledger.lock().unwrap();
        assert!(l.baseline_pairs() > 0, "pre legs built shared baselines");
        let (base, cur) = l.observations();
        assert_eq!(base, report.probes_sent, "one baseline trace per completed pair");
        assert_eq!(cur, report.probes_sent, "one live trace per completed pair");
        // Scripted RTTs are flat: telemetry on a healthy world is silent.
        assert!(l.drain_anomalies().is_empty());
    }

    #[test]
    fn candidate_cap_is_enforced() {
        let colo = colo_with(&[(1, &[20]), (2, &[20]), (3, &[20]), (4, &[20]), (5, &[20])]);
        let backend =
            ScriptedBackend { dark: FacilityId(9), down_from: u64::MAX, down_to: u64::MAX, fac_of };
        let mut engine = ProbeEngine::new(backend, registry(), colo, ProbeEngineConfig::default());
        let report = engine.validate(&request(&[1, 2, 3, 4, 5], &[20, 21]), 10_060);
        assert_eq!(report.verdicts.len(), 4, "paper's four-facility bound");
    }
}

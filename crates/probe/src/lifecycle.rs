//! The async-shaped measurement lifecycle: `submit → poll → collect`.
//!
//! Real measurement platforms (RIPE-Atlas-shaped, as in Fontugne et al.)
//! do not answer a traceroute synchronously: a campaign is *submitted*,
//! *polled* until results materialize, and results may never come —
//! vantage points churn away mid-campaign, probes time out, the platform
//! throttles on credit exhaustion. This module is the probe engine's
//! contract with that reality:
//!
//! * [`AsyncTraceBackend`] — the submit/poll interface every backend
//!   implements. Purely timestamp-driven: `poll` takes an explicit
//!   virtual clock, so the whole lifecycle is deterministic and
//!   replayable (no wall clock, no real sleeping).
//! * [`SyncAdapter`] — lifts any synchronous [`TraceBackend`] (the
//!   netsim data plane, scripted test backends) into the async contract:
//!   submissions always accept, the first poll answers.
//! * [`drive`] — the per-measurement driver: enforces a deadline on each
//!   attempt, retries on exponential backoff with deterministic seeded
//!   jitter, and gives up after a bounded number of attempts. It never
//!   blocks and never panics; a measurement that cannot complete simply
//!   yields no trace.
//!
//! The engine aggregates driver outcomes into a campaign *completeness*
//! score (completed pairs / planned pairs); a campaign meeting the
//! configured quorum still yields verdicts, one below it is marked
//! degraded so the detector can fall back to passive localization.

use crate::engine::TraceBackend;
use crate::restoration::Backoff;
use crate::trace::{splitmix64, Trace};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;

/// One measurement in flight: a single `vantage → target` trace request
/// at a virtual instant `at` (past instants are archive lookups). The
/// identity carried here is the complete key — backends need no
/// server-side state to answer a poll, which keeps replay trivial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Measurement {
    /// Probe host AS.
    pub vantage: Asn,
    /// Destination AS.
    pub target: Asn,
    /// The instant being measured (an archive read when in the past).
    pub at: Timestamp,
    /// Retry ordinal: 0 for the first submission.
    pub attempt: u32,
    /// When this attempt was submitted (virtual time).
    pub submitted: Timestamp,
}

impl Measurement {
    /// Deterministic 64-bit key of the measurement identity (submission
    /// time excluded: a retry of the same attempt hashes identically).
    /// Fault injection and jitter derive from this, so failures are pure
    /// functions of *what* is measured, not of call order.
    pub fn key(&self) -> u64 {
        let mut h = splitmix64(((self.vantage.0 as u64) << 32) | self.target.0 as u64);
        h = splitmix64(h ^ self.at);
        splitmix64(h ^ self.attempt as u64)
    }
}

/// Whether the platform accepted a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// The measurement is in flight; poll for it.
    Accepted,
    /// The platform refused (credit exhaustion, vantage gone, brownout).
    Rejected,
}

/// What a poll found.
#[derive(Debug, Clone, PartialEq)]
pub enum MeasurementState {
    /// Still in flight — poll again later.
    Pending,
    /// Completed with a trace.
    Ready(Trace),
    /// The platform reported a terminal failure for this attempt.
    Failed,
}

/// The asynchronous measurement contract: submit a measurement, poll it
/// to completion. Implementations must be deterministic functions of the
/// measurement identity and the poll timestamp — there is no wall clock
/// anywhere on the probe path.
pub trait AsyncTraceBackend {
    /// Offers one measurement attempt to the platform.
    fn submit(&mut self, m: &Measurement) -> SubmitResult;
    /// Polls one in-flight attempt at virtual time `now`.
    fn poll(&mut self, m: &Measurement, now: Timestamp) -> MeasurementState;
}

/// Lifts a synchronous [`TraceBackend`] into the async contract: every
/// submission is accepted and the first poll answers with the trace.
#[derive(Debug, Clone, Default)]
pub struct SyncAdapter<B>(pub B);

impl<B: TraceBackend> AsyncTraceBackend for SyncAdapter<B> {
    fn submit(&mut self, _m: &Measurement) -> SubmitResult {
        SubmitResult::Accepted
    }

    fn poll(&mut self, m: &Measurement, _now: Timestamp) -> MeasurementState {
        MeasurementState::Ready(self.0.trace(m.vantage, m.target, m.at))
    }
}

/// Tunables of the per-measurement lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// Per-attempt deadline: an attempt still pending this many virtual
    /// seconds after submission counts as timed out.
    pub deadline_secs: u64,
    /// Virtual polling cadence within an attempt.
    pub poll_interval_secs: u64,
    /// Submissions per measurement before giving up (≥ 1).
    pub max_attempts: u32,
    /// Exponential backoff between re-submissions.
    pub retry: Backoff,
    /// Upper bound of the deterministic jitter added to each retry delay
    /// (decorrelates retry storms; seeded, so fully replayable).
    pub jitter_secs: u64,
    /// Minimum fraction of planned measurement pairs that must complete
    /// for a campaign's verdicts to be trusted; below it the report is
    /// marked degraded and the detector falls back to passive verdicts.
    pub quorum: f64,
    /// Seed for the jitter hash.
    pub seed: u64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            deadline_secs: 60,
            poll_interval_secs: 5,
            max_attempts: 3,
            retry: Backoff { initial_secs: 30, max_secs: 240 },
            jitter_secs: 7,
            quorum: 0.5,
            seed: 0x6C1F_ECE5,
        }
    }
}

/// What [`drive`] concluded about one measurement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasurementOutcome {
    /// The trace, when any attempt completed.
    pub trace: Option<Trace>,
    /// Re-submissions after the first attempt.
    pub retries: usize,
    /// Attempts that hit their deadline without an answer.
    pub timeouts: usize,
    /// Attempts rejected at submission.
    pub rejections: usize,
}

/// Drives one measurement through the lifecycle: submit, poll until the
/// per-attempt deadline, retry on exponential backoff with seeded jitter,
/// give up after `max_attempts`. All arithmetic saturates, so timestamps
/// near `u64::MAX` (multi-year replays, corrupt inputs) degrade to "no
/// trace" instead of panicking.
pub fn drive<B: AsyncTraceBackend>(
    backend: &mut B,
    vantage: Asn,
    target: Asn,
    at: Timestamp,
    now: Timestamp,
    cfg: &LifecycleConfig,
) -> MeasurementOutcome {
    let mut out = MeasurementOutcome::default();
    let mut submit_at = now;
    let mut delay = cfg.retry.first();
    for attempt in 0..cfg.max_attempts.max(1) {
        if attempt > 0 {
            out.retries += 1;
        }
        let m = Measurement { vantage, target, at, attempt, submitted: submit_at };
        match backend.submit(&m) {
            SubmitResult::Rejected => out.rejections += 1,
            SubmitResult::Accepted => {
                let deadline = submit_at.saturating_add(cfg.deadline_secs.max(1));
                let step = cfg.poll_interval_secs.max(1);
                let mut t = deadline.min(submit_at.saturating_add(step));
                loop {
                    match backend.poll(&m, t) {
                        MeasurementState::Ready(trace) => {
                            out.trace = Some(trace);
                            return out;
                        }
                        MeasurementState::Failed => break,
                        MeasurementState::Pending => {
                            if t >= deadline {
                                out.timeouts += 1;
                                break;
                            }
                            t = deadline.min(t.saturating_add(step));
                        }
                    }
                }
            }
        }
        // Next attempt: wait out the deadline plus backoff plus jitter.
        let jitter = splitmix64(cfg.seed ^ m.key()) % cfg.jitter_secs.saturating_add(1);
        submit_at = submit_at
            .saturating_add(cfg.deadline_secs)
            .saturating_add(delay)
            .saturating_add(jitter);
        delay = cfg.retry.next(delay);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{IfaceOwner, TraceHop};
    use kepler_topology::FacilityId;
    use std::net::{IpAddr, Ipv4Addr};

    fn trace_ok() -> Trace {
        Trace {
            hops: vec![TraceHop {
                addr: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)),
                owner: IfaceOwner::FacilityPort { asn: Asn(7), facility: FacilityId(1) },
                rtt_ms: 1.0,
            }],
            reached: true,
        }
    }

    /// A backend that answers only from `ok_attempt` on, and only after
    /// `latency` virtual seconds of polling.
    struct Flaky {
        ok_attempt: u32,
        latency: u64,
        submits: Vec<Timestamp>,
    }

    impl AsyncTraceBackend for Flaky {
        fn submit(&mut self, m: &Measurement) -> SubmitResult {
            self.submits.push(m.submitted);
            SubmitResult::Accepted
        }
        fn poll(&mut self, m: &Measurement, now: Timestamp) -> MeasurementState {
            if m.attempt < self.ok_attempt || now < m.submitted + self.latency {
                MeasurementState::Pending
            } else {
                MeasurementState::Ready(trace_ok())
            }
        }
    }

    #[test]
    fn sync_adapter_answers_first_poll() {
        struct Echo;
        impl TraceBackend for Echo {
            fn trace(&self, _v: Asn, _t: Asn, _at: Timestamp) -> Trace {
                trace_ok()
            }
        }
        let mut b = SyncAdapter(Echo);
        let out = drive(&mut b, Asn(1), Asn(2), 100, 1_000, &LifecycleConfig::default());
        assert!(out.trace.is_some());
        assert_eq!((out.retries, out.timeouts, out.rejections), (0, 0, 0));
    }

    #[test]
    fn retries_recover_after_timeouts() {
        let mut b = Flaky { ok_attempt: 2, latency: 1, submits: Vec::new() };
        let cfg = LifecycleConfig::default();
        let out = drive(&mut b, Asn(1), Asn(2), 100, 1_000, &cfg);
        assert!(out.trace.is_some(), "third attempt answers");
        assert_eq!(out.retries, 2);
        assert_eq!(out.timeouts, 2, "first two attempts hit the deadline");
        // Retry submissions are strictly later and spaced by at least the
        // deadline + backoff floor.
        assert_eq!(b.submits.len(), 3);
        assert!(b.submits.windows(2).all(|w| w[1] >= w[0] + cfg.deadline_secs + cfg.retry.first()));
    }

    #[test]
    fn give_up_is_graceful() {
        let mut b = Flaky { ok_attempt: 99, latency: 0, submits: Vec::new() };
        let out = drive(&mut b, Asn(1), Asn(2), 100, 1_000, &LifecycleConfig::default());
        assert!(out.trace.is_none());
        assert_eq!(out.timeouts, 3);
    }

    #[test]
    fn slow_answer_within_deadline_lands() {
        let mut b = Flaky { ok_attempt: 0, latency: 40, submits: Vec::new() };
        let out = drive(&mut b, Asn(1), Asn(2), 100, 1_000, &LifecycleConfig::default());
        assert!(out.trace.is_some());
        assert_eq!(out.timeouts, 0);
    }

    #[test]
    fn rejections_are_counted_and_bounded() {
        struct Wall;
        impl AsyncTraceBackend for Wall {
            fn submit(&mut self, _m: &Measurement) -> SubmitResult {
                SubmitResult::Rejected
            }
            fn poll(&mut self, _m: &Measurement, _now: Timestamp) -> MeasurementState {
                MeasurementState::Pending
            }
        }
        let out = drive(&mut Wall, Asn(1), Asn(2), 100, 1_000, &LifecycleConfig::default());
        assert!(out.trace.is_none());
        assert_eq!(out.rejections, 3);
    }

    #[test]
    fn driver_is_deterministic() {
        let cfg = LifecycleConfig::default();
        let runs: Vec<Vec<Timestamp>> = (0..2)
            .map(|_| {
                let mut b = Flaky { ok_attempt: 99, latency: 0, submits: Vec::new() };
                drive(&mut b, Asn(3), Asn(4), 200, 5_000, &cfg);
                b.submits
            })
            .collect();
        assert_eq!(runs[0], runs[1], "identical inputs replay identically");
    }

    #[test]
    fn timestamps_near_max_do_not_panic() {
        let mut b = Flaky { ok_attempt: 99, latency: 0, submits: Vec::new() };
        let cfg = LifecycleConfig { jitter_secs: u64::MAX, ..LifecycleConfig::default() };
        let out = drive(&mut b, Asn(1), Asn(2), u64::MAX, u64::MAX - 5, &cfg);
        assert!(out.trace.is_none(), "saturates instead of overflowing");
    }
}

//! Recorded campaign transcripts: record once, replay bit-identically.
//!
//! CI has no network and no measurement platform; the chaos suite wants
//! to exercise the *exact* failure sequences it saw once. The fixture
//! layer closes both gaps:
//!
//! * [`RecordingBackend`] wraps any [`AsyncTraceBackend`] and journals
//!   the terminal outcome of every measurement attempt into a
//!   [`CampaignTranscript`];
//! * [`CampaignTranscript`] serializes to a line-oriented text format
//!   (no external dependencies; f64 RTTs round-trip via their bit
//!   patterns) and parses back;
//! * [`ReplayBackend`] answers submit/poll purely from a transcript —
//!   attempts recorded as rejected reject again, recorded traces return
//!   on the first poll, recorded failures fail, and attempts *absent*
//!   from the transcript stay pending forever, reproducing the original
//!   timeout.
//!
//! Because the lifecycle driver's control flow depends only on the
//! per-attempt outcomes (and its jitter only on measurement identities),
//! replaying a transcript reproduces the original campaign's verdicts,
//! completeness and retry counts bit-identically.

use crate::lifecycle::{AsyncTraceBackend, Measurement, MeasurementState, SubmitResult};
use crate::trace::{IfaceOwner, Trace, TraceHop};
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_topology::{FacilityId, IxpId};
use std::collections::BTreeMap;

/// Transcript key: the full identity of one measurement attempt.
type Key = (u32, u32, Timestamp, u32);

fn key_of(m: &Measurement) -> Key {
    (m.vantage.0, m.target.0, m.at, m.attempt)
}

/// The terminal outcome of one recorded attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordedOutcome {
    /// Submission was rejected.
    Rejected,
    /// The platform reported a terminal failure.
    Failed,
    /// A trace came back.
    Done(Trace),
}

/// A serialized campaign: every terminal attempt outcome, keyed by
/// measurement identity. Attempts that timed out (never reached a
/// terminal state) are deliberately absent — absence replays as an
/// eternal `Pending`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignTranscript {
    entries: BTreeMap<Key, RecordedOutcome>,
}

const HEADER: &str = "kepler-campaign-transcript v1";

impl CampaignTranscript {
    /// Records one terminal outcome (first write wins: a terminal state
    /// is only ever observed once per attempt).
    pub fn record(&mut self, m: &Measurement, outcome: RecordedOutcome) {
        self.entries.entry(key_of(m)).or_insert(outcome);
    }

    /// Looks up the outcome for one attempt.
    pub fn get(&self, m: &Measurement) -> Option<&RecordedOutcome> {
        self.entries.get(&key_of(m))
    }

    /// Number of recorded attempts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to the line-oriented text format.
    pub fn serialize(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        for (&(v, t, at, attempt), outcome) in &self.entries {
            match outcome {
                RecordedOutcome::Rejected => {
                    let _ = writeln!(out, "r {v} {t} {at} {attempt}");
                }
                RecordedOutcome::Failed => {
                    let _ = writeln!(out, "f {v} {t} {at} {attempt}");
                }
                RecordedOutcome::Done(trace) => {
                    let _ = write!(out, "t {v} {t} {at} {attempt} {}", u8::from(trace.reached));
                    for hop in &trace.hops {
                        let (kind, asn, id) = match hop.owner {
                            IfaceOwner::FacilityPort { asn, facility } => {
                                ("fac", asn.0, facility.0)
                            }
                            IfaceOwner::IxpLan { asn, ixp } => ("ixp", asn.0, ixp.0),
                        };
                        let _ = write!(
                            out,
                            " {kind}/{asn}/{id}/{}/{:016x}",
                            hop.addr,
                            hop.rtt_ms.to_bits()
                        );
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Parses the text format back. Errors carry the offending line.
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut lines = s.lines();
        match lines.next() {
            Some(h) if h.trim() == HEADER => {}
            other => return Err(format!("bad transcript header: {other:?}")),
        }
        let mut transcript = CampaignTranscript::default();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().unwrap_or_default();
            let mut num = |name: &str| -> Result<u64, String> {
                fields
                    .next()
                    .ok_or_else(|| format!("missing {name}: {line}"))?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| format!("bad {name} ({e}): {line}"))
            };
            let key =
                (num("vantage")? as u32, num("target")? as u32, num("at")?, num("attempt")? as u32);
            let outcome = match tag {
                "r" => RecordedOutcome::Rejected,
                "f" => RecordedOutcome::Failed,
                "t" => {
                    let reached = num("reached")? != 0;
                    let mut hops = Vec::new();
                    for hop in fields {
                        let parts: Vec<&str> = hop.split('/').collect();
                        if parts.len() != 5 {
                            return Err(format!("bad hop {hop:?}: {line}"));
                        }
                        let asn: u32 =
                            parts[1].parse().map_err(|e| format!("bad hop asn ({e}): {line}"))?;
                        let id: u32 =
                            parts[2].parse().map_err(|e| format!("bad hop id ({e}): {line}"))?;
                        let owner = match parts[0] {
                            "fac" => {
                                IfaceOwner::FacilityPort { asn: Asn(asn), facility: FacilityId(id) }
                            }
                            "ixp" => IfaceOwner::IxpLan { asn: Asn(asn), ixp: IxpId(id) },
                            k => return Err(format!("bad hop kind {k:?}: {line}")),
                        };
                        let addr =
                            parts[3].parse().map_err(|e| format!("bad hop addr ({e}): {line}"))?;
                        let bits = u64::from_str_radix(parts[4], 16)
                            .map_err(|e| format!("bad hop rtt ({e}): {line}"))?;
                        hops.push(TraceHop { addr, owner, rtt_ms: f64::from_bits(bits) });
                    }
                    RecordedOutcome::Done(Trace { hops, reached })
                }
                other => return Err(format!("bad record tag {other:?}: {line}")),
            };
            transcript.entries.insert(key, outcome);
        }
        Ok(transcript)
    }
}

/// Wraps a backend and journals every terminal attempt outcome.
#[derive(Debug)]
pub struct RecordingBackend<B> {
    inner: B,
    /// The transcript accumulated so far.
    pub transcript: CampaignTranscript,
}

impl<B> RecordingBackend<B> {
    /// Starts recording over `inner`.
    pub fn new(inner: B) -> Self {
        RecordingBackend { inner, transcript: CampaignTranscript::default() }
    }
}

impl<B: AsyncTraceBackend> AsyncTraceBackend for RecordingBackend<B> {
    fn submit(&mut self, m: &Measurement) -> SubmitResult {
        let r = self.inner.submit(m);
        if r == SubmitResult::Rejected {
            self.transcript.record(m, RecordedOutcome::Rejected);
        }
        r
    }

    fn poll(&mut self, m: &Measurement, now: Timestamp) -> MeasurementState {
        let state = self.inner.poll(m, now);
        match &state {
            MeasurementState::Ready(trace) => {
                self.transcript.record(m, RecordedOutcome::Done(trace.clone()));
            }
            MeasurementState::Failed => self.transcript.record(m, RecordedOutcome::Failed),
            MeasurementState::Pending => {}
        }
        state
    }
}

/// Answers the lifecycle purely from a transcript — no network, no
/// simulator, fully offline.
#[derive(Debug, Clone)]
pub struct ReplayBackend {
    transcript: CampaignTranscript,
}

impl ReplayBackend {
    /// A backend replaying `transcript`.
    pub fn new(transcript: CampaignTranscript) -> Self {
        ReplayBackend { transcript }
    }
}

impl AsyncTraceBackend for ReplayBackend {
    fn submit(&mut self, m: &Measurement) -> SubmitResult {
        match self.transcript.get(m) {
            Some(RecordedOutcome::Rejected) => SubmitResult::Rejected,
            _ => SubmitResult::Accepted,
        }
    }

    fn poll(&mut self, m: &Measurement, _now: Timestamp) -> MeasurementState {
        match self.transcript.get(m) {
            Some(RecordedOutcome::Done(trace)) => MeasurementState::Ready(trace.clone()),
            Some(RecordedOutcome::Failed) => MeasurementState::Failed,
            // Unknown or rejected attempts replay as the original timeout.
            Some(RecordedOutcome::Rejected) | None => MeasurementState::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{drive, LifecycleConfig};
    use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

    fn sample_trace() -> Trace {
        Trace {
            hops: vec![
                TraceHop {
                    addr: IpAddr::V4(Ipv4Addr::new(11, 0, 1, 2)),
                    owner: IfaceOwner::FacilityPort { asn: Asn(20), facility: FacilityId(3) },
                    rtt_ms: 1.5,
                },
                TraceHop {
                    addr: IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 7)),
                    owner: IfaceOwner::IxpLan { asn: Asn(21), ixp: IxpId(4) },
                    rtt_ms: f64::from_bits(0x3FF8_0000_0000_0001), // not representable in decimal
                },
            ],
            reached: true,
        }
    }

    fn m(v: u32, t: u32, at: Timestamp, attempt: u32) -> Measurement {
        Measurement { vantage: Asn(v), target: Asn(t), at, attempt, submitted: at }
    }

    #[test]
    fn serialize_parse_round_trips_bit_identically() {
        let mut tr = CampaignTranscript::default();
        tr.record(&m(900, 20, 5_000, 0), RecordedOutcome::Done(sample_trace()));
        tr.record(&m(900, 21, 5_000, 0), RecordedOutcome::Rejected);
        tr.record(&m(901, 20, 5_000, 1), RecordedOutcome::Failed);
        tr.record(
            &m(901, 22, 5_000, 0),
            RecordedOutcome::Done(Trace { hops: vec![], reached: false }),
        );
        let text = tr.serialize();
        let back = CampaignTranscript::parse(&text).expect("parse");
        assert_eq!(back, tr);
        // And the serialization itself is stable.
        assert_eq!(back.serialize(), text);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignTranscript::parse("").is_err(), "missing header");
        assert!(CampaignTranscript::parse("kepler-campaign-transcript v1\nx 1 2 3 4").is_err());
        assert!(CampaignTranscript::parse("kepler-campaign-transcript v1\nt 1 2 3").is_err());
        assert!(CampaignTranscript::parse(
            "kepler-campaign-transcript v1\nt 1 2 3 0 1 zz/1/2/8.8.8.8/0"
        )
        .is_err());
    }

    #[test]
    fn record_then_replay_reproduces_driver_outcomes() {
        // A scripted backend: target 20 answers on attempt 1, target 21 is
        // rejected forever, target 22 never answers at all.
        struct Script;
        impl AsyncTraceBackend for Script {
            fn submit(&mut self, m: &Measurement) -> SubmitResult {
                if m.target == Asn(21) {
                    SubmitResult::Rejected
                } else {
                    SubmitResult::Accepted
                }
            }
            fn poll(&mut self, m: &Measurement, _now: Timestamp) -> MeasurementState {
                match (m.target, m.attempt) {
                    (Asn(20), a) if a >= 1 => MeasurementState::Ready(sample_trace()),
                    (Asn(20), _) => MeasurementState::Failed,
                    _ => MeasurementState::Pending,
                }
            }
        }
        let cfg = LifecycleConfig::default();
        let mut rec = RecordingBackend::new(Script);
        let live: Vec<_> = [20, 21, 22]
            .iter()
            .map(|&t| drive(&mut rec, Asn(900), Asn(t), 5_000, 6_000, &cfg))
            .collect();
        let text = rec.transcript.serialize();
        let mut replay = ReplayBackend::new(CampaignTranscript::parse(&text).expect("parse"));
        let replayed: Vec<_> = [20, 21, 22]
            .iter()
            .map(|&t| drive(&mut replay, Asn(900), Asn(t), 5_000, 6_000, &cfg))
            .collect();
        assert_eq!(live, replayed, "replay is bit-identical, counters included");
    }
}

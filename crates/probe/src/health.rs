//! Backend-health tracking with hysteresis.
//!
//! A measurement platform browns out gradually: a few lost campaigns, a
//! stretch of rejections, then nothing. Reacting to single failures makes
//! the detector flap between active and passive modes; never reacting
//! wedges every validation behind a dead backend. The tracker here walks
//! a three-state machine with *consecutive-count* thresholds, so
//! transitions need sustained evidence in either direction:
//!
//! ```text
//!            ┌──────────────── recovery_threshold successes ─────────────┐
//!            │                                                           │
//!            ▼          degraded_threshold             offline_threshold │
//!        ┌────────┐  consecutive failures  ┌──────────┐  more failures ┌─┴───────┐
//!   ──▶  │ ONLINE │ ─────────────────────▶ │ DEGRADED │ ─────────────▶ │ OFFLINE │
//!        └────────┘                        └──────────┘                └─────────┘
//!            ▲                                   │
//!            └── recovery_threshold successes ───┘
//! ```
//!
//! A campaign meeting its completeness quorum is a success; one below it
//! (timeouts, rejections, a brownout window) is a failure. While OFFLINE
//! the engine shrinks campaigns to a canary so the platform is not
//! hammered, and the detector treats every verdict as degraded — falling
//! back to passive localization and deferring the incident for
//! re-validation once the canary brings the state back to ONLINE.

/// The three backend states the detector distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendHealth {
    /// Campaigns are completing; verdicts are trusted.
    #[default]
    Online,
    /// Sustained failures: verdicts still computed, but suspect.
    Degraded,
    /// The platform is effectively down: campaigns shrink to a canary and
    /// the detector runs passive-only.
    Offline,
}

impl std::fmt::Display for BackendHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BackendHealth::Online => "online",
            BackendHealth::Degraded => "degraded",
            BackendHealth::Offline => "offline",
        })
    }
}

/// Hysteresis thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive campaign failures before ONLINE demotes to DEGRADED.
    pub degraded_threshold: u32,
    /// Consecutive campaign failures before DEGRADED demotes to OFFLINE
    /// (counted from the first failure, so must exceed
    /// `degraded_threshold`).
    pub offline_threshold: u32,
    /// Consecutive campaign successes before any degraded state promotes
    /// back to ONLINE.
    pub recovery_threshold: u32,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { degraded_threshold: 3, offline_threshold: 6, recovery_threshold: 2 }
    }
}

/// The state machine. Purely event-driven — feed it campaign outcomes,
/// read the state; no clocks involved.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthTracker {
    config: HealthConfig,
    state: BackendHealth,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// Lifetime state transitions (observability).
    transitions: usize,
}

impl HealthTracker {
    /// A tracker starting ONLINE.
    pub fn new(config: HealthConfig) -> Self {
        HealthTracker { config, ..HealthTracker::default() }
    }

    /// Current state.
    pub fn state(&self) -> BackendHealth {
        self.state
    }

    /// Lifetime state transitions.
    pub fn transitions(&self) -> usize {
        self.transitions
    }

    fn set(&mut self, next: BackendHealth) {
        if next != self.state {
            self.state = next;
            self.transitions += 1;
        }
    }

    /// Records one campaign outcome: `true` = completeness quorum met.
    pub fn record(&mut self, success: bool) {
        if success {
            self.consecutive_failures = 0;
            self.consecutive_successes = self.consecutive_successes.saturating_add(1);
            if self.consecutive_successes >= self.config.recovery_threshold {
                self.set(BackendHealth::Online);
            }
        } else {
            self.consecutive_successes = 0;
            self.consecutive_failures = self.consecutive_failures.saturating_add(1);
            if self.consecutive_failures >= self.config.offline_threshold.max(1) {
                self.set(BackendHealth::Offline);
            } else if self.consecutive_failures >= self.config.degraded_threshold.max(1) {
                self.set(BackendHealth::Degraded);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demotion_needs_sustained_failures() {
        let mut h = HealthTracker::new(HealthConfig::default());
        h.record(false);
        h.record(false);
        assert_eq!(h.state(), BackendHealth::Online, "two failures are noise");
        h.record(false);
        assert_eq!(h.state(), BackendHealth::Degraded);
        for _ in 0..3 {
            h.record(false);
        }
        assert_eq!(h.state(), BackendHealth::Offline);
    }

    #[test]
    fn one_success_does_not_promote() {
        let mut h = HealthTracker::new(HealthConfig::default());
        for _ in 0..6 {
            h.record(false);
        }
        assert_eq!(h.state(), BackendHealth::Offline);
        h.record(true);
        assert_eq!(h.state(), BackendHealth::Offline, "hysteresis: one canary is not recovery");
        h.record(true);
        assert_eq!(h.state(), BackendHealth::Online);
    }

    #[test]
    fn interleaved_outcomes_do_not_flap() {
        // Alternating success/failure never accumulates enough consecutive
        // evidence to leave ONLINE.
        let mut h = HealthTracker::new(HealthConfig::default());
        for i in 0..20 {
            h.record(i % 2 == 0);
        }
        assert_eq!(h.state(), BackendHealth::Online);
        assert_eq!(h.transitions(), 0);
    }

    #[test]
    fn degenerate_thresholds_are_clamped() {
        let mut h = HealthTracker::new(HealthConfig {
            degraded_threshold: 0,
            offline_threshold: 0,
            recovery_threshold: 0,
        });
        h.record(false);
        assert_eq!(h.state(), BackendHealth::Offline, "zero thresholds demote on first failure");
        h.record(true);
        assert_eq!(h.state(), BackendHealth::Online, "zero recovery promotes on first success");
    }
}

//! The vantage-point registry.
//!
//! Real deployments probe from measurement platforms (RIPE Atlas, CAIDA
//! Ark) whose hosts sit in edge networks. The registry interns each
//! vantage point to a dense [`VantageId`] once, at registration time —
//! the same dense-identity discipline as the monitor hot path — and
//! answers deterministic selection queries: *k* vantages, spread by a
//! seeded hash, avoiding hosts homed in the suspect city (a probe from
//! inside the blast radius proves nothing about reachability *into* it).

use crate::trace::splitmix64;
use kepler_bgp::Asn;
use kepler_topology::CityId;
use std::collections::HashMap;

/// Dense id of one vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VantageId(pub u32);

/// One probe host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VantagePoint {
    /// The AS hosting the probe.
    pub asn: Asn,
    /// Where the host lives, when known (used to avoid probing a city
    /// from inside itself).
    pub home_city: Option<CityId>,
}

/// Registry of available vantage points with dense ids.
#[derive(Debug, Default)]
pub struct VantageRegistry {
    points: Vec<VantagePoint>,
    by_asn: HashMap<Asn, VantageId>,
}

impl VantageRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        VantageRegistry::default()
    }

    /// Registers a vantage point, minting a dense id on first sight. A
    /// re-registered ASN keeps its original id (first write wins).
    pub fn register(&mut self, vp: VantagePoint) -> VantageId {
        if let Some(&id) = self.by_asn.get(&vp.asn) {
            return id;
        }
        let id = VantageId(u32::try_from(self.points.len()).expect("vantage id space exhausted"));
        self.by_asn.insert(vp.asn, id);
        self.points.push(vp);
        id
    }

    /// The vantage point behind a minted id.
    pub fn get(&self, id: VantageId) -> &VantagePoint {
        &self.points[id.0 as usize]
    }

    /// Number of registered vantage points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All registered points in id order.
    pub fn iter(&self) -> impl Iterator<Item = (VantageId, &VantagePoint)> {
        self.points.iter().enumerate().map(|(i, p)| (VantageId(i as u32), p))
    }

    /// Picks up to `k` vantage points, deterministically in `salt`,
    /// skipping hosts homed in `avoid` (falling back to all hosts when
    /// the filter would leave nothing).
    pub fn select(&self, avoid: Option<CityId>, k: usize, salt: u64) -> Vec<VantageId> {
        let eligible: Vec<VantageId> = self
            .iter()
            .filter(|(_, p)| match (avoid, p.home_city) {
                (Some(a), Some(h)) => a != h,
                _ => true,
            })
            .map(|(id, _)| id)
            .collect();
        let pool =
            if eligible.is_empty() { self.iter().map(|(id, _)| id).collect() } else { eligible };
        let mut ranked: Vec<(u64, VantageId)> =
            pool.into_iter().map(|id| (splitmix64(salt ^ (id.0 as u64) << 17), id)).collect();
        ranked.sort_unstable();
        ranked.into_iter().take(k).map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry(n: u32) -> VantageRegistry {
        let mut r = VantageRegistry::new();
        for i in 0..n {
            r.register(VantagePoint { asn: Asn(100 + i), home_city: Some(CityId(i % 4)) });
        }
        r
    }

    #[test]
    fn registration_is_idempotent_and_dense() {
        let mut r = VantageRegistry::new();
        let a = r.register(VantagePoint { asn: Asn(1), home_city: None });
        let b = r.register(VantagePoint { asn: Asn(2), home_city: Some(CityId(0)) });
        assert_eq!(a, VantageId(0));
        assert_eq!(b, VantageId(1));
        // Re-registering keeps the first id.
        assert_eq!(r.register(VantagePoint { asn: Asn(1), home_city: Some(CityId(9)) }), a);
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(a).home_city, None, "first write wins");
    }

    #[test]
    fn selection_is_deterministic_and_avoids_the_city() {
        let r = registry(16);
        let picked = r.select(Some(CityId(1)), 5, 42);
        assert_eq!(picked.len(), 5);
        assert_eq!(picked, r.select(Some(CityId(1)), 5, 42), "same salt, same picks");
        assert_ne!(picked, r.select(Some(CityId(1)), 5, 43), "salt varies the panel");
        for id in &picked {
            assert_ne!(r.get(*id).home_city, Some(CityId(1)));
        }
    }

    #[test]
    fn selection_falls_back_when_filter_empties_the_pool() {
        let mut r = VantageRegistry::new();
        for i in 0..3u32 {
            r.register(VantagePoint { asn: Asn(i + 1), home_city: Some(CityId(7)) });
        }
        // Every host lives in the avoided city: still get probes.
        assert_eq!(r.select(Some(CityId(7)), 2, 1).len(), 2);
        assert!(r.select(None, 99, 1).len() == 3, "k larger than pool is capped");
    }
}

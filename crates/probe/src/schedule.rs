//! The rate-limited probe scheduler.
//!
//! Targeted campaigns must not hammer a facility that is likely having
//! its worst day: every candidate facility gets a token bucket, and a
//! campaign only fires as many probes as the bucket grants. Buckets are
//! keyed on the raw dense facility id and refill from explicit
//! timestamps, so scheduling is fully deterministic and replayable —
//! there is no wall clock anywhere on the probe path.

use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_topology::FacilityId;
use std::collections::HashMap;

/// Per-facility probe budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimit {
    /// Bucket capacity: the largest burst one campaign may send.
    pub burst: u32,
    /// Sustained refill rate, probes per second.
    pub per_sec: f64,
}

impl Default for RateLimit {
    fn default() -> Self {
        RateLimit { burst: 64, per_sec: 8.0 }
    }
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Timestamp,
}

/// Token-bucket admission per target facility.
#[derive(Debug, Default)]
pub struct ProbeScheduler {
    limit: RateLimit,
    buckets: HashMap<u32, Bucket>,
}

impl ProbeScheduler {
    /// A scheduler enforcing `limit` per facility.
    pub fn new(limit: RateLimit) -> Self {
        ProbeScheduler { limit, buckets: HashMap::new() }
    }

    /// The limit in force.
    pub fn limit(&self) -> RateLimit {
        self.limit
    }

    fn refill(limit: RateLimit, b: &mut Bucket, now: Timestamp) {
        if now > b.last {
            // Saturating: a multi-year (or corrupt, near-u64::MAX) jump
            // must cap at burst, never overflow or go non-finite.
            let dt = now.saturating_sub(b.last) as f64;
            b.tokens = (b.tokens + dt * limit.per_sec).min(limit.burst as f64);
            if !b.tokens.is_finite() {
                b.tokens = limit.burst as f64;
            }
            b.last = now;
        }
    }

    /// Admits up to `want` probes toward `fac` at `now`, returning how
    /// many may actually be sent. Time moving backwards is clamped (the
    /// bucket neither refills nor leaks).
    pub fn admit(&mut self, fac: FacilityId, now: Timestamp, want: u32) -> u32 {
        self.admit_key(fac.0, now, want)
    }

    /// Keyed admission for non-facility epicenters (IXP fabrics, whole
    /// cities): same token-bucket discipline, caller-chosen key space.
    pub fn admit_key(&mut self, key: u32, now: Timestamp, want: u32) -> u32 {
        let limit = self.limit;
        let b = self.buckets.entry(key).or_insert(Bucket { tokens: limit.burst as f64, last: now });
        Self::refill(limit, b, now);
        let grant = want.min(b.tokens.floor() as u32);
        b.tokens -= grant as f64;
        grant
    }

    /// How many probes toward `fac` would currently be admitted, without
    /// taking any tokens.
    pub fn available(&self, fac: FacilityId, now: Timestamp) -> u32 {
        match self.buckets.get(&fac.0) {
            None => self.limit.burst,
            Some(b) => {
                let mut copy = *b;
                Self::refill(self.limit, &mut copy, now);
                copy.tokens.floor() as u32
            }
        }
    }
}

/// Per-platform-key credit budget (RIPE-Atlas-style): every measurement
/// costs credits from a shared pool that refills linearly. Layered *on
/// top of* the per-facility token buckets — the buckets bound how hard
/// any one facility is hammered, the ledger bounds total platform spend
/// under one API key.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CreditConfig {
    /// Pool capacity in credits.
    pub capacity: f64,
    /// Sustained refill, credits per second.
    pub per_sec: f64,
    /// Cost of one traceroute measurement.
    pub cost_per_probe: f64,
}

impl Default for CreditConfig {
    fn default() -> Self {
        CreditConfig { capacity: 4_096.0, per_sec: 64.0, cost_per_probe: 1.0 }
    }
}

/// The credit pool. Explicit-timestamp refill like the token buckets:
/// deterministic, replayable, clamped against time going backwards and
/// saturating against large jumps.
#[derive(Debug, Clone, Copy)]
pub struct CreditLedger {
    config: CreditConfig,
    balance: f64,
    last: Timestamp,
    denied: u64,
}

impl CreditLedger {
    /// A full ledger.
    pub fn new(config: CreditConfig) -> Self {
        CreditLedger { config, balance: config.capacity, last: 0, denied: 0 }
    }

    fn refill(&mut self, now: Timestamp) {
        if now > self.last {
            let dt = now.saturating_sub(self.last) as f64;
            self.balance = (self.balance + dt * self.config.per_sec).min(self.config.capacity);
            if !self.balance.is_finite() {
                self.balance = self.config.capacity;
            }
            self.last = now;
        }
    }

    /// Admits up to `want` probes at `now`, deducting their cost.
    pub fn admit(&mut self, now: Timestamp, want: u32) -> u32 {
        self.refill(now);
        let cost = self.config.cost_per_probe.max(0.0);
        let affordable = if cost > 0.0 { (self.balance / cost).floor() } else { f64::INFINITY };
        // `as u32` saturates on inf/overflow — a free pool grants everything.
        let grant = want.min(affordable.max(0.0) as u32);
        self.balance -= grant as f64 * cost;
        self.denied += (want - grant) as u64;
        grant
    }

    /// Current balance.
    pub fn balance(&self) -> f64 {
        self.balance
    }

    /// Lifetime probes denied for lack of credits.
    pub fn denied(&self) -> u64 {
        self.denied
    }
}

/// What a single probe measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignKind {
    /// Full hop-by-hop path capture.
    Traceroute,
    /// Reachability/latency only.
    Ping,
}

/// One probe task: measure `vantage → target`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeTask {
    /// Probe host AS.
    pub vantage: Asn,
    /// Destination AS (one of the affected far-ends at the suspect
    /// facility).
    pub target: Asn,
}

/// A scheduled measurement campaign against one candidate facility.
#[derive(Debug, Clone, PartialEq)]
pub struct Campaign {
    /// What each task measures.
    pub kind: CampaignKind,
    /// The facility under suspicion.
    pub facility: FacilityId,
    /// The admitted tasks (already rate-limit-trimmed).
    pub tasks: Vec<ProbeTask>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_bounds_the_first_campaign() {
        let mut s = ProbeScheduler::new(RateLimit { burst: 10, per_sec: 1.0 });
        assert_eq!(s.admit(FacilityId(1), 1_000, 25), 10, "grant capped at burst");
        assert_eq!(s.admit(FacilityId(1), 1_000, 25), 0, "bucket drained");
        // A different facility has its own bucket.
        assert_eq!(s.admit(FacilityId(2), 1_000, 4), 4);
    }

    #[test]
    fn refill_is_linear_and_capped() {
        let mut s = ProbeScheduler::new(RateLimit { burst: 10, per_sec: 2.0 });
        assert_eq!(s.admit(FacilityId(1), 1_000, 10), 10);
        // 3 seconds later: 6 tokens back.
        assert_eq!(s.available(FacilityId(1), 1_003), 6);
        assert_eq!(s.admit(FacilityId(1), 1_003, 99), 6);
        // A long quiet period refills to burst, never beyond.
        assert_eq!(s.available(FacilityId(1), 10_000), 10);
    }

    #[test]
    fn time_going_backwards_is_clamped() {
        let mut s = ProbeScheduler::new(RateLimit { burst: 4, per_sec: 1.0 });
        assert_eq!(s.admit(FacilityId(1), 1_000, 4), 4);
        // Earlier timestamp: no refill, no panic, nothing granted.
        assert_eq!(s.admit(FacilityId(1), 500, 4), 0);
        // Forward progress resumes from the original watermark.
        assert_eq!(s.admit(FacilityId(1), 1_002, 4), 2);
    }

    #[test]
    fn huge_timestamp_jumps_saturate() {
        // A multi-year (and then near-u64::MAX) jump refills to burst and
        // keeps granting without overflow or NaN.
        let mut s = ProbeScheduler::new(RateLimit { burst: 8, per_sec: 1.0e18 });
        assert_eq!(s.admit(FacilityId(1), 0, 8), 8);
        assert_eq!(s.admit(FacilityId(1), 200_000_000, 8), 8, "multi-year jump");
        assert_eq!(s.admit(FacilityId(1), u64::MAX, 8), 8, "max-timestamp jump");
        let mut c =
            CreditLedger::new(CreditConfig { capacity: 5.0, per_sec: 1.0e18, cost_per_probe: 1.0 });
        assert_eq!(c.admit(0, 5), 5);
        assert_eq!(c.admit(u64::MAX, 9), 5);
        assert_eq!(c.denied(), 4);
    }

    #[test]
    fn credit_ledger_deducts_and_refills() {
        let mut c =
            CreditLedger::new(CreditConfig { capacity: 10.0, per_sec: 2.0, cost_per_probe: 2.0 });
        // 10 credits at cost 2 → 5 probes.
        assert_eq!(c.admit(1_000, 8), 5);
        assert_eq!(c.denied(), 3);
        assert_eq!(c.admit(1_000, 1), 0, "pool drained");
        // 4 seconds later: 8 credits back → 4 probes.
        assert_eq!(c.admit(1_004, 9), 4);
        // Time going backwards neither refills nor panics.
        assert_eq!(c.admit(500, 1), 0);
        // A zero cost never starves.
        let mut free =
            CreditLedger::new(CreditConfig { capacity: 1.0, per_sec: 0.0, cost_per_probe: 0.0 });
        assert_eq!(free.admit(0, 1_000), 1_000);
    }

    #[test]
    fn keyed_admission_is_independent_per_key() {
        let mut s = ProbeScheduler::new(RateLimit { burst: 3, per_sec: 0.0 });
        assert_eq!(s.admit_key(7, 1_000, 9), 3);
        assert_eq!(s.admit_key(7, 1_000, 9), 0, "key 7 drained");
        assert_eq!(s.admit_key(0x8000_0007, 1_000, 9), 3, "city key space is separate");
    }

    #[test]
    fn grants_never_exceed_want_or_budget() {
        // Admission safety across arbitrary call sequences: the total
        // granted never exceeds burst + elapsed * rate.
        let limit = RateLimit { burst: 7, per_sec: 3.0 };
        let mut s = ProbeScheduler::new(limit);
        let t0 = 5_000u64;
        let mut granted = 0u64;
        for step in 0..200u64 {
            let now = t0 + step / 2; // half the calls repeat the same second
            let want = (step % 5) as u32;
            let got = s.admit(FacilityId(3), now, want);
            assert!(got <= want);
            granted += got as u64;
            let budget = limit.burst as f64 + (now - t0) as f64 * limit.per_sec;
            assert!(granted as f64 <= budget + 1e-9, "granted {granted} > budget {budget}");
        }
    }
}

//! Interface-level trace modeling shared by the simulator and the
//! detector.
//!
//! These types are the single owner of the data-plane vocabulary that was
//! previously split between `kepler-core::dataplane` and
//! `kepler-netsim::dataplane`: interface ownership and hop records live
//! here, both crates re-export them, and the §4.4 baseline re-probe
//! arithmetic ([`ProbeResult`] / [`confirm`]) sits next to them.

use kepler_bgp::Asn;
use kepler_topology::{FacilityId, IxpId};
use serde::{Deserialize, Serialize};
use std::net::IpAddr;

/// What an interface address resolves to (the traIXroute-style
/// IP-to-infrastructure mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IfaceOwner {
    /// A router port of `asn` inside `facility`.
    FacilityPort {
        /// Port owner.
        asn: Asn,
        /// Building.
        facility: FacilityId,
    },
    /// An address on an IXP peering LAN.
    IxpLan {
        /// The member using the address.
        asn: Asn,
        /// The exchange.
        ixp: IxpId,
    },
}

/// One traceroute hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceHop {
    /// Responding interface.
    pub addr: IpAddr,
    /// Its resolution.
    pub owner: IfaceOwner,
    /// Cumulative RTT at this hop, milliseconds.
    pub rtt_ms: f64,
}

/// One measured path: the hop sequence and whether the destination
/// answered. Backends return this; the analysis module consumes it.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Trace {
    /// The responding hops in TTL order (non-responding hops are simply
    /// absent, like `*` rows of a real traceroute).
    pub hops: Vec<TraceHop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl Trace {
    /// A trace that never got an answer.
    pub fn unreachable() -> Self {
        Trace { hops: Vec::new(), reached: false }
    }

    /// End-to-end RTT (last hop), if reached.
    pub fn rtt_ms(&self) -> Option<f64> {
        if self.reached {
            self.hops.last().map(|h| h.rtt_ms)
        } else {
            None
        }
    }

    /// Index of the first hop inside the given facility.
    pub fn facility_hop(&self, fac: FacilityId) -> Option<usize> {
        facility_hop(&self.hops, fac)
    }

    /// Whether any hop crosses the given facility.
    pub fn crosses_facility(&self, fac: FacilityId) -> bool {
        facility_hop(&self.hops, fac).is_some()
    }

    /// Whether any hop crosses the given IXP.
    pub fn crosses_ixp(&self, ixp: IxpId) -> bool {
        ixp_hop(&self.hops, ixp).is_some()
    }

    /// Whether the trace revisits an interface (a forwarding loop).
    pub fn has_loop(&self) -> bool {
        has_loop(&self.hops)
    }
}

/// Index of the first hop inside `fac`, over a raw hop slice.
pub fn facility_hop(hops: &[TraceHop], fac: FacilityId) -> Option<usize> {
    hops.iter()
        .position(|h| matches!(h.owner, IfaceOwner::FacilityPort { facility: f, .. } if f == fac))
}

/// Index of the first hop on `ixp`'s peering LAN, over a raw hop slice.
pub fn ixp_hop(hops: &[TraceHop], ixp: IxpId) -> Option<usize> {
    hops.iter().position(|h| matches!(h.owner, IfaceOwner::IxpLan { ixp: x, .. } if x == ixp))
}

/// Whether a hop sequence revisits an interface address (loop detection;
/// real traceroutes show this during reconvergence).
pub fn has_loop(hops: &[TraceHop]) -> bool {
    for (i, h) in hops.iter().enumerate() {
        if hops[..i].iter().any(|g| g.addr == h.addr) {
            return true;
        }
    }
    false
}

/// Result of re-probing a PoP's baseline paths (paper §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeResult {
    /// Baseline paths that still cross the PoP.
    pub still_crossing: usize,
    /// Baseline paths measured.
    pub baseline: usize,
}

impl ProbeResult {
    /// Fraction of baseline paths still crossing.
    pub fn crossing_fraction(&self) -> f64 {
        if self.baseline == 0 {
            return 1.0;
        }
        self.still_crossing as f64 / self.baseline as f64
    }
}

/// Confirmation verdict given a probe result and the detection threshold:
/// an outage is confirmed when fewer than `t_fail` of the baseline paths
/// still cross the PoP.
pub fn confirm(result: ProbeResult, t_fail: f64) -> bool {
    result.crossing_fraction() < t_fail
}

/// SplitMix64 — the deterministic hash every probe-path derivation uses
/// (shared with the simulator's interface-address synthesis).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn hop(last_octet: u8, owner: IfaceOwner, rtt: f64) -> TraceHop {
        TraceHop { addr: IpAddr::V4(Ipv4Addr::new(11, 0, 0, last_octet)), owner, rtt_ms: rtt }
    }

    fn fac_hop(last_octet: u8, fac: u32) -> TraceHop {
        hop(
            last_octet,
            IfaceOwner::FacilityPort { asn: Asn(1), facility: FacilityId(fac) },
            last_octet as f64,
        )
    }

    #[test]
    fn crossing_queries() {
        let t = Trace {
            hops: vec![
                fac_hop(1, 7),
                hop(2, IfaceOwner::IxpLan { asn: Asn(2), ixp: IxpId(3) }, 2.0),
                fac_hop(3, 9),
            ],
            reached: true,
        };
        assert_eq!(t.facility_hop(FacilityId(7)), Some(0));
        assert_eq!(t.facility_hop(FacilityId(9)), Some(2));
        assert_eq!(t.facility_hop(FacilityId(8)), None);
        assert!(t.crosses_ixp(IxpId(3)));
        assert!(!t.crosses_ixp(IxpId(4)));
        assert_eq!(t.rtt_ms(), Some(3.0));
        assert_eq!(Trace::unreachable().rtt_ms(), None);
    }

    #[test]
    fn loop_detection() {
        assert!(!has_loop(&[]));
        assert!(!has_loop(&[fac_hop(1, 1), fac_hop(2, 1)]));
        assert!(has_loop(&[fac_hop(1, 1), fac_hop(2, 2), fac_hop(1, 1)]));
    }

    #[test]
    fn confirmation_thresholding() {
        assert!(confirm(ProbeResult { still_crossing: 0, baseline: 20 }, 0.10));
        assert!(confirm(ProbeResult { still_crossing: 1, baseline: 20 }, 0.10));
        assert!(!confirm(ProbeResult { still_crossing: 3, baseline: 20 }, 0.10));
        assert!(!confirm(ProbeResult { still_crossing: 20, baseline: 20 }, 0.10));
        // No baseline: fraction defaults to 1.0 — never confirms.
        assert!(!confirm(ProbeResult { still_crossing: 0, baseline: 0 }, 0.10));
    }

    #[test]
    fn splitmix_is_stable() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}

//! Path analysis: pre/post-event hop diffing and facility verdicts.
//!
//! For each candidate facility the engine measures pairs of traces — a
//! pre-event baseline (from archives in a deployment, from the simulator
//! here) and a fresh post-event trace — and this module decides what the
//! data plane says about the building:
//!
//! * **Confirmed** — the baseline paths through the candidate are gone
//!   (detoured around it or unreachable): the building is dark.
//! * **Refuted** — the baseline paths still cross the candidate: whatever
//!   the control plane saw, this building is forwarding.
//! * **Inconclusive** — too few baseline paths crossed the candidate, or
//!   the still-crossing fraction sits between the thresholds.
//!
//! Every judged pair leaves a [`HopEvidence`] row naming the baseline hop
//! inside the candidate and what happened to it post-event, so reports
//! can carry hop-level justification.

use crate::trace::{facility_hop, Trace, TraceHop};
use kepler_bgp::Asn;
use kepler_topology::FacilityId;
use serde::{Deserialize, Serialize};

/// The data plane's verdict on one candidate facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FacilityVerdict {
    /// Baseline paths through the facility are gone: outage confirmed.
    Confirmed,
    /// Baseline paths still cross the facility: suspicion refuted.
    Refuted,
    /// Not enough evidence either way.
    Inconclusive,
}

/// What became of one baseline path after the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PostState {
    /// The post-event trace still crosses the candidate at this hop index.
    StillCrossing {
        /// Hop index in the post-event trace.
        hop: u32,
    },
    /// The destination still answers but the path avoids the candidate.
    Detoured,
    /// The destination no longer answers at all.
    Unreachable,
}

/// One judged measurement pair: hop-level evidence for a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HopEvidence {
    /// Probe host AS.
    pub vantage: Asn,
    /// Destination AS.
    pub target: Asn,
    /// The candidate facility being judged.
    pub facility: FacilityId,
    /// Hop index of the candidate crossing in the pre-event baseline.
    pub pre_hop: u32,
    /// What the post-event trace showed.
    pub post: PostState,
}

/// Structural diff of two hop sequences.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HopDiff {
    /// Hops shared from the start (paths usually agree near the vantage).
    pub common_prefix: usize,
    /// Interfaces present pre but absent post (what the event removed).
    pub lost: Vec<TraceHop>,
    /// Interfaces present post but absent pre (the detour).
    pub gained: Vec<TraceHop>,
}

/// Diffs two hop sequences by interface address.
pub fn hop_diff(pre: &[TraceHop], post: &[TraceHop]) -> HopDiff {
    let common_prefix = pre.iter().zip(post.iter()).take_while(|(a, b)| a.addr == b.addr).count();
    let lost = pre.iter().filter(|h| !post.iter().any(|g| g.addr == h.addr)).copied().collect();
    let gained = post.iter().filter(|h| !pre.iter().any(|g| g.addr == h.addr)).copied().collect();
    HopDiff { common_prefix, lost, gained }
}

/// One measured (vantage, target) pair with both phases.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredPair {
    /// Probe host AS.
    pub vantage: Asn,
    /// Destination AS.
    pub target: Asn,
    /// Pre-event baseline trace (archived in a deployment).
    pub pre: Trace,
    /// Fresh post-event trace.
    pub post: Trace,
}

/// The verdict thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathAnalyzer {
    /// Still-crossing fraction strictly below which the candidate is
    /// confirmed down.
    pub confirm_below: f64,
    /// Still-crossing fraction at or above which the suspicion is
    /// refuted.
    pub refute_at: f64,
    /// Minimum baseline paths crossing the candidate for any verdict.
    pub min_baseline: usize,
    /// Minimum [`PostState::Detoured`] pairs required to confirm. A
    /// destination that has gone *unreachable* indicts every facility its
    /// baseline crossed — only a path that still answers while steering
    /// around the candidate discriminates between colocated buildings.
    pub min_detours: usize,
}

impl Default for PathAnalyzer {
    fn default() -> Self {
        PathAnalyzer { confirm_below: 0.25, refute_at: 0.6, min_baseline: 2, min_detours: 1 }
    }
}

impl PathAnalyzer {
    /// Judges one candidate facility from measured pairs. Pairs whose
    /// baseline never reached the destination, or never crossed the
    /// candidate, contribute nothing (missing baseline ⇒ no evidence);
    /// with fewer than `min_baseline` usable pairs the verdict is
    /// [`FacilityVerdict::Inconclusive`].
    pub fn judge(
        &self,
        facility: FacilityId,
        pairs: &[MeasuredPair],
    ) -> (FacilityVerdict, Vec<HopEvidence>) {
        let mut evidence = Vec::new();
        let mut baseline = 0usize;
        let mut still = 0usize;
        let mut detoured = 0usize;
        for p in pairs {
            if !p.pre.reached {
                continue; // no pre-event baseline for this pair
            }
            let Some(pre_hop) = facility_hop(&p.pre.hops, facility) else {
                continue; // baseline never crossed the candidate
            };
            baseline += 1;
            let post = if !p.post.reached {
                PostState::Unreachable
            } else {
                match facility_hop(&p.post.hops, facility) {
                    Some(hop) => {
                        still += 1;
                        PostState::StillCrossing { hop: hop as u32 }
                    }
                    None => {
                        detoured += 1;
                        PostState::Detoured
                    }
                }
            };
            evidence.push(HopEvidence {
                vantage: p.vantage,
                target: p.target,
                facility,
                pre_hop: pre_hop as u32,
                post,
            });
        }
        if baseline < self.min_baseline {
            return (FacilityVerdict::Inconclusive, evidence);
        }
        let frac = still as f64 / baseline as f64;
        let verdict = if frac < self.confirm_below && detoured >= self.min_detours {
            FacilityVerdict::Confirmed
        } else if frac >= self.refute_at {
            FacilityVerdict::Refuted
        } else {
            FacilityVerdict::Inconclusive
        };
        (verdict, evidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::IfaceOwner;
    use std::net::{IpAddr, Ipv4Addr};

    fn hop(octet: u8, fac: u32) -> TraceHop {
        TraceHop {
            addr: IpAddr::V4(Ipv4Addr::new(11, 0, fac as u8, octet)),
            owner: IfaceOwner::FacilityPort {
                asn: Asn(50 + octet as u32),
                facility: FacilityId(fac),
            },
            rtt_ms: octet as f64,
        }
    }

    fn trace(facs: &[u32]) -> Trace {
        Trace {
            hops: facs.iter().enumerate().map(|(i, &f)| hop(i as u8 + 1, f)).collect(),
            reached: true,
        }
    }

    fn pair(i: u32, pre: Trace, post: Trace) -> MeasuredPair {
        MeasuredPair { vantage: Asn(900 + i), target: Asn(800 + i), pre, post }
    }

    #[test]
    fn confirmed_when_baseline_paths_vanish() {
        let a = PathAnalyzer::default();
        let pairs = vec![
            pair(0, trace(&[1, 5, 9]), trace(&[1, 3, 9])), // detoured around 5
            pair(1, trace(&[2, 5, 9]), Trace::unreachable()), // dead
            pair(2, trace(&[2, 9]), trace(&[2, 9])),       // never crossed 5: ignored
        ];
        let (v, ev) = a.judge(FacilityId(5), &pairs);
        assert_eq!(v, FacilityVerdict::Confirmed);
        assert_eq!(ev.len(), 2);
        assert_eq!(ev[0].post, PostState::Detoured);
        assert_eq!(ev[0].pre_hop, 1);
        assert_eq!(ev[1].post, PostState::Unreachable);
    }

    #[test]
    fn refuted_when_paths_still_cross() {
        let a = PathAnalyzer::default();
        let pairs = vec![
            pair(0, trace(&[1, 5, 9]), trace(&[1, 5, 9])),
            pair(1, trace(&[2, 5]), trace(&[2, 5])),
            pair(2, trace(&[3, 5, 9]), trace(&[3, 9])),
        ];
        let (v, ev) = a.judge(FacilityId(5), &pairs);
        assert_eq!(v, FacilityVerdict::Refuted, "2/3 still crossing");
        assert!(matches!(ev[0].post, PostState::StillCrossing { hop: 1 }));
    }

    #[test]
    fn missing_baseline_is_inconclusive() {
        let a = PathAnalyzer::default();
        // Pre-event traces that never reached: no baseline at all.
        let pairs = vec![
            pair(0, Trace::unreachable(), trace(&[1, 5])),
            pair(1, Trace::unreachable(), Trace::unreachable()),
        ];
        let (v, ev) = a.judge(FacilityId(5), &pairs);
        assert_eq!(v, FacilityVerdict::Inconclusive);
        assert!(ev.is_empty());
        // Empty pair list, same story.
        assert_eq!(a.judge(FacilityId(5), &[]).0, FacilityVerdict::Inconclusive);
        // One usable baseline is below min_baseline = 2.
        let pairs = vec![pair(0, trace(&[5]), trace(&[]))];
        assert_eq!(a.judge(FacilityId(5), &pairs).0, FacilityVerdict::Inconclusive);
    }

    #[test]
    fn bare_unreachability_cannot_confirm() {
        // Every baseline path died — that indicts every facility those
        // paths crossed, so without a single discriminating detour the
        // verdict must stay inconclusive.
        let a = PathAnalyzer::default();
        let pairs = vec![
            pair(0, trace(&[1, 5, 9]), Trace::unreachable()),
            pair(1, trace(&[2, 5, 9]), Trace::unreachable()),
            pair(2, trace(&[3, 5]), Trace::unreachable()),
        ];
        assert_eq!(a.judge(FacilityId(5), &pairs).0, FacilityVerdict::Inconclusive);
        // One surviving detour tips it to confirmed.
        let mut with_detour = pairs;
        with_detour.push(pair(3, trace(&[4, 5, 9]), trace(&[4, 9])));
        assert_eq!(a.judge(FacilityId(5), &with_detour).0, FacilityVerdict::Confirmed);
    }

    #[test]
    fn empty_traces_and_loops_are_handled() {
        let a = PathAnalyzer { min_baseline: 1, ..PathAnalyzer::default() };
        // Empty (but "reached") pre trace: no crossing, no evidence.
        let empty_pre = vec![pair(0, Trace { hops: vec![], reached: true }, trace(&[5]))];
        assert_eq!(a.judge(FacilityId(5), &empty_pre).0, FacilityVerdict::Inconclusive);
        // A looping post trace that revisits the candidate still counts
        // as crossing (the facility answered).
        let looping_post = Trace { hops: vec![hop(1, 5), hop(2, 6), hop(1, 5)], reached: true };
        assert!(looping_post.has_loop());
        let pairs = vec![pair(0, trace(&[5, 9]), looping_post)];
        let (v, ev) = a.judge(FacilityId(5), &pairs);
        assert_eq!(v, FacilityVerdict::Refuted);
        assert!(matches!(ev[0].post, PostState::StillCrossing { hop: 0 }));
    }

    #[test]
    fn hop_diff_edges() {
        let d = hop_diff(&[], &[]);
        assert_eq!(d, HopDiff::default());
        let pre = trace(&[1, 5, 9]).hops;
        let post = trace(&[1, 3, 9]).hops;
        let d = hop_diff(&pre, &post);
        assert_eq!(d.common_prefix, 1);
        assert_eq!(d.lost.len(), 1);
        assert_eq!(d.gained.len(), 1);
        assert!(matches!(
            d.lost[0].owner,
            IfaceOwner::FacilityPort { facility: FacilityId(5), .. }
        ));
        // Pre-only: everything lost, nothing gained.
        let d = hop_diff(&pre, &[]);
        assert_eq!((d.common_prefix, d.lost.len(), d.gained.len()), (0, 3, 0));
    }
}

//! CRC-framed append-only write-ahead log, std-only I/O.
//!
//! One WAL file is a header followed by frames:
//!
//! ```text
//! header:  "KWAL" (4 bytes)  version u32 LE
//! frame:   len u32 LE | crc32(payload) u32 LE | payload (len bytes)
//! ```
//!
//! Appends are atomic at bin granularity: the daemon writes one frame
//! per closed-bin batch and fsyncs before acknowledging the bin. A
//! crash can therefore leave at most one *tail* frame incomplete
//! (truncated write) or corrupt (torn write); [`read_frames`] stops at
//! the first frame whose length or checksum does not hold and reports
//! how many tail bytes it dropped, so recovery is total: every fully
//! fsynced frame survives, a damaged tail never poisons the replay.

use crate::codec::crc32;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"KWAL";
const VERSION: u32 = 1;
const HEADER_LEN: usize = 8;

/// Appends CRC-framed records to a WAL file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Opens `path` for appending, writing the header if the file is new
    /// (or empty). An existing file must carry a valid header.
    pub fn open(path: &Path) -> std::io::Result<WalWriter> {
        let mut file = OpenOptions::new().read(true).create(true).append(true).open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            file.write_all(MAGIC)?;
            file.write_all(&VERSION.to_le_bytes())?;
            file.sync_all()?;
        } else {
            let mut header = [0u8; HEADER_LEN];
            let mut probe = File::open(path)?;
            probe.read_exact(&mut header)?;
            if &header[..4] != MAGIC {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{} is not a kepler WAL", path.display()),
                ));
            }
        }
        Ok(WalWriter { file })
    }

    /// Appends one frame. The frame is durable only after
    /// [`sync`](Self::sync) returns.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let len = u32::try_from(payload.len()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
        })?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        // One write per frame: a crash mid-call tears at most this frame.
        self.file.write_all(&frame)
    }

    /// Flushes appended frames to stable storage (fsync).
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// The result of scanning a WAL file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Payloads of every intact frame, in append order.
    pub frames: Vec<Vec<u8>>,
    /// Bytes dropped from the tail (truncated or torn final write).
    /// Zero for a cleanly closed log.
    pub dropped_bytes: u64,
}

/// Reads every intact frame of the WAL at `path`. A missing file is an
/// empty log. Scanning stops at the first frame whose length runs past
/// the file or whose CRC does not match — the damaged tail is counted,
/// not replayed.
pub fn read_frames(path: &Path) -> std::io::Result<WalScan> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    };
    if bytes.len() < HEADER_LEN || &bytes[..4] != MAGIC {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{} is not a kepler WAL", path.display()),
        ));
    }
    let mut scan = WalScan::default();
    let mut pos = HEADER_LEN;
    while pos < bytes.len() {
        let rest = bytes.len() - pos;
        if rest < 8 {
            break; // truncated frame header
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if rest - 8 < len {
            break; // truncated payload
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32(payload) != crc {
            break; // torn write
        }
        scan.frames.push(payload.to_vec());
        pos += 8 + len;
    }
    scan.dropped_bytes = (bytes.len() - pos) as u64;
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kepler-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn frames_round_trip_in_order() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        for i in 0..10u8 {
            w.append(&vec![i; (i as usize + 1) * 3]).unwrap();
        }
        w.sync().unwrap();
        let scan = read_frames(&path).unwrap();
        assert_eq!(scan.frames.len(), 10);
        assert_eq!(scan.dropped_bytes, 0);
        assert_eq!(scan.frames[4], vec![4u8; 15]);
        // Reopening appends after existing frames.
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"tail").unwrap();
        w.sync().unwrap();
        let scan = read_frames(&path).unwrap();
        assert_eq!(scan.frames.len(), 11);
        assert_eq!(scan.frames[10], b"tail");
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let dir = tmpdir("truncated");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"frame-one").unwrap();
        w.append(b"frame-two-longer").unwrap();
        w.sync().unwrap();
        drop(w);
        // Chop mid-way into the last frame's payload.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let scan = read_frames(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0], b"frame-one");
        assert!(scan.dropped_bytes > 0);
    }

    #[test]
    fn torn_frame_fails_crc_and_is_dropped() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"frame-one").unwrap();
        w.append(b"frame-two").unwrap();
        w.sync().unwrap();
        drop(w);
        // Flip a byte inside the last frame's payload: length holds, CRC
        // must not.
        let mut full = std::fs::read(&path).unwrap();
        let n = full.len();
        full[n - 2] ^= 0xFF;
        std::fs::write(&path, &full).unwrap();
        let scan = read_frames(&path).unwrap();
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0], b"frame-one");
        assert_eq!(scan.dropped_bytes, (8 + b"frame-two".len()) as u64);
    }

    #[test]
    fn missing_file_is_an_empty_log_and_garbage_is_rejected() {
        let dir = tmpdir("edge");
        let scan = read_frames(&dir.join("absent.log")).unwrap();
        assert!(scan.frames.is_empty());
        let bad = dir.join("garbage.log");
        std::fs::write(&bad, b"not a wal at all").unwrap();
        assert!(read_frames(&bad).is_err());
        assert!(WalWriter::open(&bad).is_err());
    }
}

//! The serve daemon: a long-running shell around [`Kepler`] that tails
//! collector input, commits incident state durably once per closed bin,
//! fans alerts out, and publishes an O(1) query view.
//!
//! Clocking is deterministic: everything — WAL commits, alert
//! timestamps, the published view's `as_of` — is stamped with the
//! detector's bin clock ([`Kepler::last_bin_end`]), never wall time.
//! Replaying the same stream yields the same store bytes and the same
//! alert sequence.
//!
//! Backpressure: [`Daemon::run_stream`] pulls records through a
//! **bounded** channel. The producer blocks when the daemon falls
//! behind; records are never dropped. (Decode itself can additionally
//! be parallelized by building the detector with
//! `Kepler::with_parallel_ingest` — the daemon is agnostic to which
//! ingest stage backs the detector.)
//!
//! Restart: [`Daemon::new`] recovers snapshot+WAL state from the store
//! directory and seeds the fresh detector with it
//! ([`Kepler::import_incidents`]), so a killed daemon resumes with the
//! same open incidents, lifecycle clocks, and evidence ledgers it had
//! durably committed.

use crate::alert::{AlertRouter, Channel};
use crate::query::{StatusView, ViewCell};
use crate::store::{IncidentStore, RecoveryReport, Transition};
use kepler_bgpstream::{BgpRecord, Timestamp};
use kepler_core::events::OutageReport;
use kepler_core::Kepler;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::sync_channel;
use std::sync::Arc;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory holding `snapshot.bin` and `wal.log`.
    pub store_dir: PathBuf,
    /// Compact the WAL into a snapshot every N committed bins
    /// (0 = only at shutdown).
    pub snapshot_every_bins: u64,
    /// Bound of the ingest queue used by [`Daemon::run_stream`]. A full
    /// queue blocks the producer (backpressure), never drops.
    pub queue_depth: usize,
}

impl DaemonConfig {
    /// Defaults: compact every 64 bins, queue depth 1024.
    pub fn new(store_dir: PathBuf) -> DaemonConfig {
        DaemonConfig { store_dir, snapshot_every_bins: 64, queue_depth: 1024 }
    }
}

/// Counters for one daemon run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunSummary {
    /// Records ingested.
    pub events: u64,
    /// Bin batches committed to the store.
    pub commits: u64,
    /// Lifecycle transitions observed.
    pub transitions: u64,
}

/// A live detector wrapped with durability, alerting, and a query view.
pub struct Daemon {
    detector: Kepler,
    store: IncidentStore,
    router: AlertRouter,
    view: Arc<ViewCell>,
    recovery: RecoveryReport,
    /// Store sequence at startup: the fresh detector's bin counter
    /// restarts at zero, so committed sequences are `seq_base +
    /// bins_closed` to stay monotone across restarts.
    seq_base: u64,
    queue_depth: usize,
    summary: RunSummary,
}

impl Daemon {
    /// Wraps `detector` with the durable store under
    /// `config.store_dir`, recovering any previously committed incident
    /// state into it.
    pub fn new(mut detector: Kepler, config: &DaemonConfig) -> io::Result<Daemon> {
        let (store, recovery) = IncidentStore::open(&config.store_dir, config.snapshot_every_bins)?;
        let recovered = store.state();
        if recovered != &kepler_core::TrackerState::default() {
            detector.import_incidents(recovered);
        }
        let view = Arc::new(ViewCell::new(StatusView::from_state(
            store.state(),
            store.last_bin(),
            store.seq(),
        )));
        let seq_base = store.seq();
        Ok(Daemon {
            detector,
            store,
            router: AlertRouter::new(),
            view,
            recovery,
            seq_base,
            queue_depth: config.queue_depth.max(1),
            summary: RunSummary::default(),
        })
    }

    /// Registers an alert channel.
    pub fn add_channel(&mut self, channel: Channel) {
        self.router.add_channel(channel);
    }

    /// The shared query cell. Clone the `Arc` into as many reader
    /// threads as you like; each [`ViewCell::load`] is O(1).
    pub fn view(&self) -> Arc<ViewCell> {
        Arc::clone(&self.view)
    }

    /// What recovery found at startup.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Counters so far.
    pub fn summary(&self) -> RunSummary {
        self.summary
    }

    /// The wrapped detector.
    pub fn detector(&self) -> &Kepler {
        &self.detector
    }

    /// Per-channel alert delivery counters.
    pub fn alert_stats(&self) -> Vec<(String, crate::alert::ChannelStats)> {
        self.router.stats()
    }

    /// Feeds one record, committing durably if it closed a bin.
    pub fn ingest(&mut self, record: BgpRecord) -> io::Result<()> {
        self.detector.process_record_owned(record);
        self.summary.events += 1;
        self.commit_closed_bins()
    }

    /// Commits any bins the detector closed since the last commit: one
    /// WAL frame (fsynced) per batch, alert dispatch, view publish.
    fn commit_closed_bins(&mut self) -> io::Result<()> {
        let seq = self.seq_base + self.detector.bins_closed();
        if seq <= self.store.seq() {
            return Ok(());
        }
        let bin_end = self.detector.last_bin_end();
        let state = self.detector.export_incidents();
        let transitions = self.store.commit_bin(seq, bin_end, &state)?;
        self.publish(bin_end, seq, &transitions);
        self.summary.commits += 1;
        Ok(())
    }

    fn publish(&mut self, bin_end: Timestamp, seq: u64, transitions: &[Transition]) {
        self.summary.transitions += transitions.len() as u64;
        self.router.dispatch(transitions, bin_end);
        self.router.flush(bin_end);
        self.view.store(StatusView::from_state(self.store.state(), bin_end, seq));
    }

    /// Pulls a whole record stream through a bounded queue: the producer
    /// thread blocks when the daemon falls behind (backpressure — slow
    /// consumers stall ingest, they never drop events). Does **not**
    /// finish the run; call [`finish`](Self::finish) afterwards.
    pub fn run_stream<I>(&mut self, records: I) -> io::Result<()>
    where
        I: IntoIterator<Item = BgpRecord>,
        I::IntoIter: Send,
    {
        let depth = self.queue_depth;
        let iter = records.into_iter();
        let mut result = Ok(());
        std::thread::scope(|scope| {
            let (tx, rx) = sync_channel::<BgpRecord>(depth);
            scope.spawn(move || {
                for rec in iter {
                    // A closed receiver means the consumer hit an I/O
                    // error and bailed; stop producing.
                    if tx.send(rec).is_err() {
                        return;
                    }
                }
            });
            for rec in rx {
                if let Err(e) = self.ingest(rec) {
                    result = Err(e);
                    break;
                }
            }
            // Dropping `rx` (loop end or break) unblocks the producer.
        });
        result
    }

    /// Closes the run: flushes the detector's trailing bins, records the
    /// final report set, force-delivers parked alerts, compacts the
    /// store, and publishes the final view. Returns the finalized
    /// reports.
    pub fn finish(mut self) -> io::Result<(Vec<OutageReport>, RunSummary)> {
        let reports = self.detector.finalize();
        let seq = self.seq_base + self.detector.bins_closed() + 1;
        let bin_end = self.detector.last_bin_end();
        let transitions = self.store.close_run(seq, bin_end, &reports)?;
        self.publish(bin_end, seq, &transitions);
        self.router.drain();
        Ok((reports, self.summary))
    }
}

impl std::fmt::Debug for Daemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Daemon")
            .field("store", &self.store.dir())
            .field("seq", &self.store.seq())
            .field("recovery", &self.recovery)
            .field("summary", &self.summary)
            .finish()
    }
}

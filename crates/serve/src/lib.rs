//! Kepler as a live service.
//!
//! This crate wraps the offline detection pipeline
//! ([`kepler_core::Kepler`]) in the machinery a long-running deployment
//! needs, in four layers:
//!
//! 1. **Daemon loop** ([`daemon`]) — tails collector input on the
//!    detector's deterministic bin clock, with bounded-queue
//!    backpressure (slow consumers stall ingest, never drop events).
//! 2. **Durable incident store** ([`store`], [`wal`], [`codec`]) — an
//!    append-only CRC-framed WAL of per-bin incident deltas, fsynced on
//!    bin close and compacted into atomic snapshots; recovery replays
//!    WAL-over-snapshot to **bit-identical** tracker state.
//! 3. **Alert fan-out** ([`alert`]) — lifecycle transitions dispatched
//!    to pluggable sinks (log / file / callback) behind per-channel
//!    token-bucket rate limits with burst coalescing.
//! 4. **Query surface** ([`query`]) — an immutable status view swapped
//!    atomically each bin; a reader's status lookup is O(1) and never
//!    contends with ingest.
//!
//! ```no_run
//! use kepler_serve::{Daemon, DaemonConfig};
//! # fn detector() -> kepler_core::Kepler { unimplemented!() }
//! # fn records() -> Vec<kepler_bgpstream::BgpRecord> { unimplemented!() }
//! let config = DaemonConfig::new("var/kepler".into());
//! let mut daemon = Daemon::new(detector(), &config).unwrap();
//! let view = daemon.view(); // share with reader threads
//! daemon.run_stream(records()).unwrap();
//! let (reports, summary) = daemon.finish().unwrap();
//! # let _ = (reports, summary, view);
//! ```

pub mod alert;
pub mod codec;
pub mod daemon;
pub mod query;
pub mod store;
pub mod wal;

pub use alert::{
    Alert, AlertRouter, AlertSink, CallbackSink, Channel, ChannelStats, FileSink, LogSink,
    TokenBucket,
};
pub use daemon::{Daemon, DaemonConfig, RunSummary};
pub use query::{ScopeStatus, StatusView, ViewCell};
pub use store::{IncidentStore, RecoveryReport, Transition, TransitionKind};

//! Hand-rolled binary codec for the durable incident store.
//!
//! crates.io is unavailable in this build environment (the vendored
//! `serde` is a no-op stub), so WAL frames and snapshots are encoded
//! with an explicit little-endian byte codec. The format is
//! deterministic — equal [`TrackerState`]s encode to equal bytes — which
//! is what makes "bit-identical recovery" checkable at the byte level.
//!
//! Every container is length-prefixed (`u32`), every enum starts with a
//! `u8` discriminant, floats travel as IEEE-754 bit patterns, and
//! decoding is total: corrupt input yields [`CodecError`], never a
//! panic. The composite frame integrity check (length + CRC-32) lives in
//! [`crate::wal`]; this module is only the payload encoding.

use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId};
use kepler_core::events::{IncidentState, OutageReport, OutageScope, RouteKey, ValidationStatus};
use kepler_core::signal::{SignalKind, SourceContribution};
use kepler_core::tracker::{OngoingExport, TrackerState};
use kepler_docmine::LocationTag;
use kepler_probe::{HopEvidence, PostState};
use kepler_topology::{CityId, FacilityId, IxpId};
use std::net::IpAddr;

/// A decoding failure: the input bytes do not describe a valid value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What the decoder was reading when it failed.
    pub context: &'static str,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt record while decoding {}", self.context)
    }
}

impl std::error::Error for CodecError {}

fn corrupt(context: &'static str) -> CodecError {
    CodecError { context }
}

/// Little-endian byte writer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round
    /// trip, including negative zero).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// Appends a container length (`u32`; the store never holds more
    /// than 4G elements in one record).
    pub fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("container too large for record"));
    }
}

/// Little-endian byte reader over a borrowed slice.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
}

impl<'a> Dec<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf }
    }

    /// Whether every byte has been consumed (trailing garbage in a
    /// record is corruption too).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(corrupt(context));
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, CodecError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2, context)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().unwrap()))
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn usize(&mut self, context: &'static str) -> Result<usize, CodecError> {
        usize::try_from(self.u64(context)?).map_err(|_| corrupt(context))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a bool.
    pub fn bool(&mut self, context: &'static str) -> Result<bool, CodecError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(corrupt(context)),
        }
    }

    /// Reads a container length, bounded by the bytes remaining so a
    /// corrupt length cannot trigger a huge allocation.
    pub fn len(&mut self, context: &'static str) -> Result<usize, CodecError> {
        let n = self.u32(context)? as usize;
        if n > self.buf.len() {
            return Err(corrupt(context));
        }
        Ok(n)
    }
}

// --- identity types -------------------------------------------------------

fn enc_option_u64(e: &mut Enc, v: Option<u64>) {
    match v {
        None => e.u8(0),
        Some(t) => {
            e.u8(1);
            e.u64(t);
        }
    }
}

fn dec_option_u64(d: &mut Dec, context: &'static str) -> Result<Option<u64>, CodecError> {
    match d.u8(context)? {
        0 => Ok(None),
        1 => Ok(Some(d.u64(context)?)),
        _ => Err(corrupt(context)),
    }
}

fn enc_option_bool(e: &mut Enc, v: Option<bool>) {
    match v {
        None => e.u8(0),
        Some(b) => {
            e.u8(1);
            e.bool(b);
        }
    }
}

fn dec_option_bool(d: &mut Dec, context: &'static str) -> Result<Option<bool>, CodecError> {
    match d.u8(context)? {
        0 => Ok(None),
        1 => Ok(Some(d.bool(context)?)),
        _ => Err(corrupt(context)),
    }
}

fn enc_ip(e: &mut Enc, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            e.u8(4);
            e.buf.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            e.u8(6);
            e.buf.extend_from_slice(&v6.octets());
        }
    }
}

fn dec_ip(d: &mut Dec) -> Result<IpAddr, CodecError> {
    match d.u8("ip family")? {
        4 => {
            let o: [u8; 4] = d.take(4, "ipv4")?.try_into().unwrap();
            Ok(IpAddr::from(o))
        }
        6 => {
            let o: [u8; 16] = d.take(16, "ipv6")?.try_into().unwrap();
            Ok(IpAddr::from(o))
        }
        _ => Err(corrupt("ip family")),
    }
}

fn enc_prefix(e: &mut Enc, p: &Prefix) {
    enc_ip(e, p.addr());
    e.u8(p.len());
}

fn dec_prefix(d: &mut Dec) -> Result<Prefix, CodecError> {
    let addr = dec_ip(d)?;
    let len = d.u8("prefix len")?;
    Prefix::new(addr, len).map_err(|_| corrupt("prefix len"))
}

/// Encodes one [`RouteKey`].
pub fn enc_route_key(e: &mut Enc, k: &RouteKey) {
    e.u16(k.collector.0);
    e.u32(k.peer.asn.0);
    enc_ip(e, k.peer.addr);
    enc_prefix(e, &k.prefix);
}

/// Decodes one [`RouteKey`].
pub fn dec_route_key(d: &mut Dec) -> Result<RouteKey, CodecError> {
    let collector = CollectorId(d.u16("collector")?);
    let asn = Asn(d.u32("peer asn")?);
    let addr = dec_ip(d)?;
    let prefix = dec_prefix(d)?;
    Ok(RouteKey { collector, peer: PeerId { asn, addr }, prefix })
}

/// Encodes an [`OutageScope`].
pub fn enc_scope(e: &mut Enc, s: OutageScope) {
    match s {
        OutageScope::Facility(f) => {
            e.u8(0);
            e.u32(f.0);
        }
        OutageScope::Ixp(x) => {
            e.u8(1);
            e.u32(x.0);
        }
        OutageScope::City(c) => {
            e.u8(2);
            e.u32(c.0);
        }
    }
}

/// Decodes an [`OutageScope`].
pub fn dec_scope(d: &mut Dec) -> Result<OutageScope, CodecError> {
    let tag = d.u8("scope tag")?;
    let id = d.u32("scope id")?;
    match tag {
        0 => Ok(OutageScope::Facility(FacilityId(id))),
        1 => Ok(OutageScope::Ixp(IxpId(id))),
        2 => Ok(OutageScope::City(CityId(id))),
        _ => Err(corrupt("scope tag")),
    }
}

fn enc_location_tag(e: &mut Enc, t: LocationTag) {
    match t {
        LocationTag::City(c) => {
            e.u8(0);
            e.u32(c.0);
        }
        LocationTag::Facility(f) => {
            e.u8(1);
            e.u32(f.0);
        }
        LocationTag::Ixp(x) => {
            e.u8(2);
            e.u32(x.0);
        }
    }
}

fn dec_location_tag(d: &mut Dec) -> Result<LocationTag, CodecError> {
    let tag = d.u8("location tag")?;
    let id = d.u32("location id")?;
    match tag {
        0 => Ok(LocationTag::City(CityId(id))),
        1 => Ok(LocationTag::Facility(FacilityId(id))),
        2 => Ok(LocationTag::Ixp(IxpId(id))),
        _ => Err(corrupt("location tag")),
    }
}

fn enc_validation(e: &mut Enc, v: ValidationStatus) {
    e.u8(match v {
        ValidationStatus::Unvalidated => 0,
        ValidationStatus::Confirmed => 1,
        ValidationStatus::Refuted => 2,
        ValidationStatus::Inconclusive => 3,
    });
}

fn dec_validation(d: &mut Dec) -> Result<ValidationStatus, CodecError> {
    match d.u8("validation")? {
        0 => Ok(ValidationStatus::Unvalidated),
        1 => Ok(ValidationStatus::Confirmed),
        2 => Ok(ValidationStatus::Refuted),
        3 => Ok(ValidationStatus::Inconclusive),
        _ => Err(corrupt("validation")),
    }
}

fn enc_incident_state(e: &mut Enc, s: IncidentState) {
    e.u8(match s {
        IncidentState::Open => 0,
        IncidentState::Recovering => 1,
        IncidentState::Closed => 2,
    });
}

fn dec_incident_state(d: &mut Dec) -> Result<IncidentState, CodecError> {
    match d.u8("incident state")? {
        0 => Ok(IncidentState::Open),
        1 => Ok(IncidentState::Recovering),
        2 => Ok(IncidentState::Closed),
        _ => Err(corrupt("incident state")),
    }
}

fn enc_hop_evidence(e: &mut Enc, h: &HopEvidence) {
    e.u32(h.vantage.0);
    e.u32(h.target.0);
    e.u32(h.facility.0);
    e.u32(h.pre_hop);
    match h.post {
        PostState::StillCrossing { hop } => {
            e.u8(0);
            e.u32(hop);
        }
        PostState::Detoured => {
            e.u8(1);
            e.u32(0);
        }
        PostState::Unreachable => {
            e.u8(2);
            e.u32(0);
        }
    }
}

fn dec_hop_evidence(d: &mut Dec) -> Result<HopEvidence, CodecError> {
    let vantage = Asn(d.u32("evidence vantage")?);
    let target = Asn(d.u32("evidence target")?);
    let facility = FacilityId(d.u32("evidence facility")?);
    let pre_hop = d.u32("evidence pre hop")?;
    let tag = d.u8("evidence post tag")?;
    let hop = d.u32("evidence post hop")?;
    let post = match tag {
        0 => PostState::StillCrossing { hop },
        1 => PostState::Detoured,
        2 => PostState::Unreachable,
        _ => return Err(corrupt("evidence post tag")),
    };
    Ok(HopEvidence { vantage, target, facility, pre_hop, post })
}

fn enc_sources(e: &mut Enc, sources: &[SourceContribution]) {
    e.len(sources.len());
    for s in sources {
        e.u8(s.kind.tag());
        e.f64(s.confidence);
        e.u64(s.first_bin);
    }
}

fn dec_sources(d: &mut Dec) -> Result<Vec<SourceContribution>, CodecError> {
    let n = d.len("sources")?;
    (0..n)
        .map(|_| {
            let kind = SignalKind::from_tag(d.u8("source kind")?).ok_or(corrupt("source kind"))?;
            let confidence = d.f64("source confidence")?;
            let first_bin = d.u64("source first bin")?;
            Ok(SourceContribution { kind, confidence, first_bin })
        })
        .collect()
}

// --- composite records ----------------------------------------------------

/// Encodes an [`OutageReport`] — the store's `outages` row.
pub fn enc_report(e: &mut Enc, r: &OutageReport) {
    enc_scope(e, r.scope);
    e.u64(r.start);
    enc_option_u64(e, r.end);
    e.len(r.affected_near.len());
    for a in &r.affected_near {
        e.u32(a.0);
    }
    e.len(r.affected_far.len());
    for a in &r.affected_far {
        e.u32(a.0);
    }
    e.usize(r.affected_paths);
    e.usize(r.oscillations);
    enc_option_bool(e, r.dataplane_confirmed);
    enc_validation(e, r.validation);
    e.len(r.probe_evidence.len());
    for h in &r.probe_evidence {
        enc_hop_evidence(e, h);
    }
    e.f64(r.probe_completeness);
    enc_incident_state(e, r.state);
    enc_sources(e, &r.sources);
}

/// Decodes an [`OutageReport`].
pub fn dec_report(d: &mut Dec) -> Result<OutageReport, CodecError> {
    let scope = dec_scope(d)?;
    let start = d.u64("report start")?;
    let end = dec_option_u64(d, "report end")?;
    let n = d.len("report near")?;
    let affected_near = (0..n).map(|_| d.u32("near asn").map(Asn)).collect::<Result<_, _>>()?;
    let n = d.len("report far")?;
    let affected_far = (0..n).map(|_| d.u32("far asn").map(Asn)).collect::<Result<_, _>>()?;
    let affected_paths = d.usize("report paths")?;
    let oscillations = d.usize("report oscillations")?;
    let dataplane_confirmed = dec_option_bool(d, "report dataplane")?;
    let validation = dec_validation(d)?;
    let n = d.len("report evidence")?;
    let probe_evidence = (0..n).map(|_| dec_hop_evidence(d)).collect::<Result<_, _>>()?;
    let probe_completeness = d.f64("report completeness")?;
    let state = dec_incident_state(d)?;
    let sources = dec_sources(d)?;
    Ok(OutageReport {
        scope,
        start,
        end,
        affected_near,
        affected_far,
        affected_paths,
        oscillations,
        dataplane_confirmed,
        validation,
        probe_evidence,
        probe_completeness,
        state,
        sources,
    })
}

/// Encodes one ongoing-incident image — the store's `degraded_events`
/// row shape (vigil): the live incident with all lifecycle clocks.
pub fn enc_ongoing(e: &mut Enc, o: &OngoingExport) {
    enc_scope(e, o.scope);
    e.u64(o.started);
    e.u64(o.prior_duration);
    e.u64(o.segment_start);
    e.usize(o.oscillations);
    e.len(o.affected_near.len());
    for a in &o.affected_near {
        e.u32(a.0);
    }
    e.len(o.affected_far.len());
    for a in &o.affected_far {
        e.u32(a.0);
    }
    e.len(o.affected_keys.len());
    for k in &o.affected_keys {
        enc_route_key(e, k);
    }
    e.len(o.watch.len());
    for (k, tag, near) in &o.watch {
        enc_route_key(e, k);
        enc_location_tag(e, *tag);
        e.u32(near.0);
    }
    enc_option_bool(e, o.dataplane_confirmed);
    enc_validation(e, o.validation);
    e.len(o.evidence.len());
    for h in &o.evidence {
        enc_hop_evidence(e, h);
    }
    e.f64(o.completeness);
    e.f64(o.confidence);
    e.u64(o.confidence_at);
    e.u64(o.next_probe);
    e.u64(o.probe_backoff);
    enc_option_u64(e, o.probe_restored_at);
    e.usize(o.restored_streak);
    enc_option_u64(e, o.restored_first);
    enc_sources(e, &o.sources);
}

/// Decodes one ongoing-incident image.
pub fn dec_ongoing(d: &mut Dec) -> Result<OngoingExport, CodecError> {
    let scope = dec_scope(d)?;
    let started = d.u64("ongoing started")?;
    let prior_duration = d.u64("ongoing prior duration")?;
    let segment_start = d.u64("ongoing segment start")?;
    let oscillations = d.usize("ongoing oscillations")?;
    let n = d.len("ongoing near")?;
    let affected_near = (0..n).map(|_| d.u32("near asn").map(Asn)).collect::<Result<_, _>>()?;
    let n = d.len("ongoing far")?;
    let affected_far = (0..n).map(|_| d.u32("far asn").map(Asn)).collect::<Result<_, _>>()?;
    let n = d.len("ongoing keys")?;
    let affected_keys = (0..n).map(|_| dec_route_key(d)).collect::<Result<_, _>>()?;
    let n = d.len("ongoing watch")?;
    let watch = (0..n)
        .map(|_| {
            let k = dec_route_key(d)?;
            let tag = dec_location_tag(d)?;
            let near = Asn(d.u32("watch near")?);
            Ok((k, tag, near))
        })
        .collect::<Result<_, CodecError>>()?;
    let dataplane_confirmed = dec_option_bool(d, "ongoing dataplane")?;
    let validation = dec_validation(d)?;
    let n = d.len("ongoing evidence")?;
    let evidence = (0..n).map(|_| dec_hop_evidence(d)).collect::<Result<_, _>>()?;
    let completeness = d.f64("ongoing completeness")?;
    let confidence = d.f64("ongoing confidence")?;
    let confidence_at = d.u64("ongoing confidence at")?;
    let next_probe = d.u64("ongoing next probe")?;
    let probe_backoff = d.u64("ongoing backoff")?;
    let probe_restored_at = dec_option_u64(d, "ongoing restored at")?;
    let restored_streak = d.usize("ongoing restored streak")?;
    let restored_first = dec_option_u64(d, "ongoing restored first")?;
    let sources = dec_sources(d)?;
    Ok(OngoingExport {
        scope,
        started,
        prior_duration,
        segment_start,
        oscillations,
        affected_near,
        affected_far,
        affected_keys,
        watch,
        dataplane_confirmed,
        validation,
        evidence,
        completeness,
        confidence,
        confidence_at,
        next_probe,
        probe_backoff,
        probe_restored_at,
        restored_streak,
        restored_first,
        sources,
    })
}

/// Encodes a full [`TrackerState`] (the snapshot body).
pub fn enc_state(e: &mut Enc, s: &TrackerState) {
    e.len(s.ongoing.len());
    for o in &s.ongoing {
        enc_ongoing(e, o);
    }
    e.len(s.cooling.len());
    for (scope, report, acc) in &s.cooling {
        enc_scope(e, *scope);
        enc_report(e, report);
        e.u64(*acc);
    }
    e.len(s.warming.len());
    for &(scope, streak, last, first) in &s.warming {
        enc_scope(e, scope);
        e.usize(streak);
        e.u64(last);
        e.u64(first);
    }
    e.len(s.finished.len());
    for r in &s.finished {
        enc_report(e, r);
    }
}

/// Decodes a full [`TrackerState`].
pub fn dec_state(d: &mut Dec) -> Result<TrackerState, CodecError> {
    let n = d.len("state ongoing")?;
    let ongoing = (0..n).map(|_| dec_ongoing(d)).collect::<Result<_, _>>()?;
    let n = d.len("state cooling")?;
    let cooling = (0..n)
        .map(|_| {
            let scope = dec_scope(d)?;
            let report = dec_report(d)?;
            let acc = d.u64("cooling acc")?;
            Ok((scope, report, acc))
        })
        .collect::<Result<_, CodecError>>()?;
    let n = d.len("state warming")?;
    let warming = (0..n)
        .map(|_| {
            let scope = dec_scope(d)?;
            let streak = d.usize("warming streak")?;
            let last = d.u64("warming last")?;
            let first = d.u64("warming first")?;
            Ok((scope, streak, last, first))
        })
        .collect::<Result<_, CodecError>>()?;
    let n = d.len("state finished")?;
    let finished = (0..n).map(|_| dec_report(d)).collect::<Result<_, _>>()?;
    Ok(TrackerState { ongoing, cooling, warming, finished })
}

// --- CRC-32 ---------------------------------------------------------------

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over `bytes`.
/// Table-driven, computed once at first use.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = !0u32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(i as u16),
            peer: PeerId { asn: Asn(100 + i as u32), addr: "10.0.0.9".parse().unwrap() },
            prefix: Prefix::v4(10, i, 0, 0, 24),
        }
    }

    fn evidence(v: u32) -> HopEvidence {
        HopEvidence {
            vantage: Asn(v),
            target: Asn(20),
            facility: FacilityId(1),
            pre_hop: 3,
            post: PostState::StillCrossing { hop: 5 },
        }
    }

    fn sample_report() -> OutageReport {
        OutageReport {
            scope: OutageScope::City(CityId(3)),
            start: 1_000,
            end: Some(2_000),
            affected_near: [Asn(5), Asn(6)].into(),
            affected_far: [Asn(7)].into(),
            affected_paths: 9,
            oscillations: 2,
            dataplane_confirmed: Some(true),
            validation: ValidationStatus::Confirmed,
            probe_evidence: vec![evidence(900)],
            probe_completeness: 0.75,
            state: IncidentState::Closed,
            sources: vec![
                SourceContribution {
                    kind: SignalKind::Deviation,
                    confidence: 1.0,
                    first_bin: 1_000,
                },
                SourceContribution {
                    kind: SignalKind::Forecast,
                    confidence: 0.625,
                    first_bin: 940,
                },
            ],
        }
    }

    fn sample_state() -> TrackerState {
        TrackerState {
            ongoing: vec![OngoingExport {
                scope: OutageScope::Facility(FacilityId(1)),
                started: 100,
                prior_duration: 60,
                segment_start: 200,
                oscillations: 2,
                affected_near: vec![Asn(5)],
                affected_far: vec![Asn(6), Asn(7)],
                affected_keys: vec![key(0), key(1)],
                watch: vec![(key(0), LocationTag::Facility(FacilityId(1)), Asn(5))],
                dataplane_confirmed: None,
                validation: ValidationStatus::Inconclusive,
                evidence: vec![evidence(901), evidence(902)],
                completeness: 0.5,
                confidence: 0.25,
                confidence_at: 150,
                next_probe: 400,
                probe_backoff: 120,
                probe_restored_at: Some(350),
                restored_streak: 1,
                restored_first: None,
                sources: vec![SourceContribution {
                    kind: SignalKind::Delay,
                    confidence: 0.4,
                    first_bin: 120,
                }],
            }],
            cooling: vec![(OutageScope::Ixp(IxpId(2)), sample_report(), 900)],
            warming: vec![(OutageScope::Facility(FacilityId(3)), 1, 500, 500)],
            finished: vec![sample_report()],
        }
    }

    #[test]
    fn state_round_trips_bit_identically() {
        let state = sample_state();
        let mut e = Enc::new();
        enc_state(&mut e, &state);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = dec_state(&mut d).expect("decodes");
        assert!(d.is_empty(), "no trailing bytes");
        assert_eq!(back, state);
        // Determinism: the same value encodes to the same bytes.
        let mut e2 = Enc::new();
        enc_state(&mut e2, &state);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn ipv6_and_unreachable_round_trip() {
        let mut r = sample_report();
        r.probe_evidence[0].post = PostState::Unreachable;
        let k = RouteKey {
            collector: CollectorId(9),
            peer: PeerId { asn: Asn(1), addr: "2001:db8::1".parse().unwrap() },
            prefix: Prefix::v6(0x2001_0db8_0000_0000, 48),
        };
        let mut e = Enc::new();
        enc_report(&mut e, &r);
        enc_route_key(&mut e, &k);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(dec_report(&mut d).unwrap(), r);
        assert_eq!(dec_route_key(&mut d).unwrap(), k);
    }

    #[test]
    fn truncated_and_corrupt_input_error_instead_of_panicking() {
        let mut e = Enc::new();
        enc_state(&mut e, &sample_state());
        let bytes = e.into_bytes();
        // Every truncation point must fail cleanly (or, for a prefix that
        // happens to parse, leave no claim of success on the full value).
        for cut in 0..bytes.len() {
            let _ = dec_state(&mut Dec::new(&bytes[..cut]));
        }
        // A wild discriminant fails cleanly.
        let mut bad = bytes.clone();
        bad[0] = 0xFF;
        assert!(dec_state(&mut Dec::new(&bad)).is_err() || !bad.is_empty());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }
}

//! The durable incident store: WAL-over-snapshot persistence of the
//! tracker's lifecycle state.
//!
//! Schema (shaped like vigil's `outages` / `degraded_events` tables,
//! on offline-friendly storage): the store's logical state is one
//! [`TrackerState`] — live incidents with their lifecycle clocks
//! (`degraded_events`) plus finalized reports (`outages`). Two files
//! under the store directory persist it:
//!
//! * `wal.log` — append-only, CRC-framed ([`crate::wal`]) records, one
//!   per closed-bin batch, fsynced before the bin is acknowledged. Each
//!   record is a **delta**: upserts/removes per lifecycle map plus the
//!   reports finalized that bin, stamped with the monotone bin sequence.
//! * `snapshot.bin` — the full state at a sequence point, written
//!   atomically (tmp + rename) every `snapshot_every` bins; the WAL is
//!   then restarted. A crash between rename and restart is harmless:
//!   replay skips WAL records whose sequence the snapshot already
//!   covers.
//!
//! Recovery loads the snapshot (if any) and replays intact WAL frames
//! over it. Because deltas are pure functions of the exported state and
//! both sides are scope-sorted, the reconstruction is **bit-identical**
//! to the uninterrupted tracker's export — the recovery tests assert
//! equality on the encoded bytes.

use crate::codec::{self, CodecError, Dec, Enc};
use crate::wal::{read_frames, WalWriter};
use kepler_bgpstream::Timestamp;
use kepler_core::events::{IncidentState, OutageReport, OutageScope, ValidationStatus};
use kepler_core::tracker::{OngoingExport, TrackerState};
use kepler_probe::HopEvidence;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

const SNAPSHOT_MAGIC: &[u8; 4] = b"KSNP";
const SNAPSHOT_VERSION: u32 = 1;
const REC_BIN_COMMIT: u8 = 1;
const REC_RUN_CLOSED: u8 = 2;

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// A lifecycle transition observed while committing a bin — the unit the
/// alert fan-out consumes, carrying the full incident context.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// What happened.
    pub kind: TransitionKind,
    /// The incident's epicenter.
    pub scope: OutageScope,
    /// Commit time (end of the closed bin).
    pub at: Timestamp,
    /// When the incident opened.
    pub started: Timestamp,
    /// End time, once closed.
    pub end: Option<Timestamp>,
    /// Probe verdict for the epicenter.
    pub validation: ValidationStatus,
    /// Worst campaign completeness observed.
    pub completeness: f64,
    /// Accumulated hop evidence.
    pub evidence: Vec<HopEvidence>,
    /// Affected near-end AS count.
    pub affected_near: usize,
    /// Affected far-end AS count.
    pub affected_far: usize,
    /// Oscillation segments so far.
    pub oscillations: usize,
}

/// The kind of lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionKind {
    /// A new incident entered the live set.
    Opened,
    /// An open incident started recovering.
    Recovering,
    /// A recovering incident relapsed to open (oscillation).
    Reopened,
    /// An incident left the live set.
    Closed,
}

impl std::fmt::Display for TransitionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransitionKind::Opened => "OPENED",
            TransitionKind::Recovering => "RECOVERING",
            TransitionKind::Reopened => "REOPENED",
            TransitionKind::Closed => "CLOSED",
        })
    }
}

/// What recovery found on disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a snapshot was loaded.
    pub had_snapshot: bool,
    /// Sequence the snapshot covered (0 without one).
    pub snapshot_seq: u64,
    /// WAL frames replayed over the snapshot.
    pub frames_applied: usize,
    /// WAL frames skipped because the snapshot already covered them.
    pub frames_skipped: usize,
    /// Damaged tail bytes dropped from the WAL (truncated/torn write).
    pub dropped_bytes: u64,
}

/// One closed-bin delta between two exported states.
#[derive(Debug, Default, Clone, PartialEq)]
struct BinDelta {
    seq: u64,
    bin_end: Timestamp,
    ongoing_upserts: Vec<OngoingExport>,
    ongoing_removes: Vec<OutageScope>,
    cooling_upserts: Vec<(OutageScope, OutageReport, u64)>,
    cooling_removes: Vec<OutageScope>,
    warming_upserts: Vec<(OutageScope, usize, Timestamp, Timestamp)>,
    warming_removes: Vec<OutageScope>,
    finished_appended: Vec<OutageReport>,
}

fn diff(old: &TrackerState, new: &TrackerState, seq: u64, bin_end: Timestamp) -> BinDelta {
    let mut delta = BinDelta { seq, bin_end, ..BinDelta::default() };
    let old_ongoing: BTreeMap<OutageScope, &OngoingExport> =
        old.ongoing.iter().map(|o| (o.scope, o)).collect();
    for o in &new.ongoing {
        if old_ongoing.get(&o.scope).map(|prev| *prev != o).unwrap_or(true) {
            delta.ongoing_upserts.push(o.clone());
        }
    }
    let new_scopes: std::collections::BTreeSet<OutageScope> =
        new.ongoing.iter().map(|o| o.scope).collect();
    delta.ongoing_removes =
        old.ongoing.iter().map(|o| o.scope).filter(|s| !new_scopes.contains(s)).collect();

    let old_cooling: BTreeMap<OutageScope, (&OutageReport, u64)> =
        old.cooling.iter().map(|(s, r, a)| (*s, (r, *a))).collect();
    for (s, r, a) in &new.cooling {
        if old_cooling.get(s).map(|(pr, pa)| *pr != r || *pa != *a).unwrap_or(true) {
            delta.cooling_upserts.push((*s, r.clone(), *a));
        }
    }
    let new_scopes: std::collections::BTreeSet<OutageScope> =
        new.cooling.iter().map(|(s, ..)| *s).collect();
    delta.cooling_removes =
        old.cooling.iter().map(|(s, ..)| *s).filter(|s| !new_scopes.contains(s)).collect();

    let old_warming: BTreeMap<OutageScope, (usize, Timestamp, Timestamp)> =
        old.warming.iter().map(|&(s, n, l, f)| (s, (n, l, f))).collect();
    for &(s, n, l, f) in &new.warming {
        if old_warming.get(&s).map(|&prev| prev != (n, l, f)).unwrap_or(true) {
            delta.warming_upserts.push((s, n, l, f));
        }
    }
    let new_scopes: std::collections::BTreeSet<OutageScope> =
        new.warming.iter().map(|&(s, ..)| s).collect();
    delta.warming_removes =
        old.warming.iter().map(|&(s, ..)| s).filter(|s| !new_scopes.contains(s)).collect();

    debug_assert!(
        new.finished.len() >= old.finished.len()
            && new.finished[..old.finished.len()] == old.finished[..],
        "finished reports only grow during a run"
    );
    delta.finished_appended = new.finished[old.finished.len().min(new.finished.len())..].to_vec();
    delta
}

fn apply(state: &mut TrackerState, delta: &BinDelta) {
    fn upsert_by_scope<T>(
        vec: &mut Vec<T>,
        scope: OutageScope,
        value: T,
        key: impl Fn(&T) -> OutageScope,
    ) {
        match vec.binary_search_by_key(&scope, key) {
            Ok(i) => vec[i] = value,
            Err(i) => vec.insert(i, value),
        }
    }
    fn remove_by_scope<T>(vec: &mut Vec<T>, scope: OutageScope, key: impl Fn(&T) -> OutageScope) {
        if let Ok(i) = vec.binary_search_by_key(&scope, key) {
            vec.remove(i);
        }
    }
    for o in &delta.ongoing_upserts {
        upsert_by_scope(&mut state.ongoing, o.scope, o.clone(), |x| x.scope);
    }
    for &s in &delta.ongoing_removes {
        remove_by_scope(&mut state.ongoing, s, |x| x.scope);
    }
    for (s, r, a) in &delta.cooling_upserts {
        upsert_by_scope(&mut state.cooling, *s, (*s, r.clone(), *a), |x| x.0);
    }
    for &s in &delta.cooling_removes {
        remove_by_scope(&mut state.cooling, s, |x| x.0);
    }
    for &(s, n, l, f) in &delta.warming_upserts {
        upsert_by_scope(&mut state.warming, s, (s, n, l, f), |x| x.0);
    }
    for &s in &delta.warming_removes {
        remove_by_scope(&mut state.warming, s, |x| x.0);
    }
    state.finished.extend(delta.finished_appended.iter().cloned());
}

fn enc_scopes(e: &mut Enc, scopes: &[OutageScope]) {
    e.len(scopes.len());
    for &s in scopes {
        codec::enc_scope(e, s);
    }
}

fn dec_scopes(d: &mut Dec) -> Result<Vec<OutageScope>, CodecError> {
    let n = d.len("scope list")?;
    (0..n).map(|_| codec::dec_scope(d)).collect()
}

fn encode_delta(delta: &BinDelta) -> Vec<u8> {
    let mut e = Enc::new();
    e.u8(REC_BIN_COMMIT);
    e.u64(delta.seq);
    e.u64(delta.bin_end);
    e.len(delta.ongoing_upserts.len());
    for o in &delta.ongoing_upserts {
        codec::enc_ongoing(&mut e, o);
    }
    enc_scopes(&mut e, &delta.ongoing_removes);
    e.len(delta.cooling_upserts.len());
    for (s, r, a) in &delta.cooling_upserts {
        codec::enc_scope(&mut e, *s);
        codec::enc_report(&mut e, r);
        e.u64(*a);
    }
    enc_scopes(&mut e, &delta.cooling_removes);
    e.len(delta.warming_upserts.len());
    for &(s, n, l, f) in &delta.warming_upserts {
        codec::enc_scope(&mut e, s);
        e.usize(n);
        e.u64(l);
        e.u64(f);
    }
    enc_scopes(&mut e, &delta.warming_removes);
    e.len(delta.finished_appended.len());
    for r in &delta.finished_appended {
        codec::enc_report(&mut e, r);
    }
    e.into_bytes()
}

fn decode_delta(d: &mut Dec) -> Result<BinDelta, CodecError> {
    let seq = d.u64("delta seq")?;
    let bin_end = d.u64("delta bin end")?;
    let n = d.len("delta ongoing upserts")?;
    let ongoing_upserts = (0..n).map(|_| codec::dec_ongoing(d)).collect::<Result<_, _>>()?;
    let ongoing_removes = dec_scopes(d)?;
    let n = d.len("delta cooling upserts")?;
    let cooling_upserts = (0..n)
        .map(|_| {
            let s = codec::dec_scope(d)?;
            let r = codec::dec_report(d)?;
            let a = d.u64("cooling acc")?;
            Ok((s, r, a))
        })
        .collect::<Result<_, CodecError>>()?;
    let cooling_removes = dec_scopes(d)?;
    let n = d.len("delta warming upserts")?;
    let warming_upserts = (0..n)
        .map(|_| {
            let s = codec::dec_scope(d)?;
            let streak = d.usize("warming streak")?;
            let l = d.u64("warming last")?;
            let f = d.u64("warming first")?;
            Ok((s, streak, l, f))
        })
        .collect::<Result<_, CodecError>>()?;
    let warming_removes = dec_scopes(d)?;
    let n = d.len("delta finished")?;
    let finished_appended = (0..n).map(|_| codec::dec_report(d)).collect::<Result<_, _>>()?;
    Ok(BinDelta {
        seq,
        bin_end,
        ongoing_upserts,
        ongoing_removes,
        cooling_upserts,
        cooling_removes,
        warming_upserts,
        warming_removes,
        finished_appended,
    })
}

/// The live-set view of a state: scope → (lifecycle state, Recovering
/// hint source). Mirrors `Tracker::live_states`.
fn live_view(state: &TrackerState) -> BTreeMap<OutageScope, IncidentState> {
    let mut map = BTreeMap::new();
    for o in &state.ongoing {
        let s = if o.probe_restored_at.is_some() || o.restored_streak > 0 {
            IncidentState::Recovering
        } else {
            IncidentState::Open
        };
        map.insert(o.scope, s);
    }
    for (s, ..) in &state.cooling {
        map.entry(*s).or_insert(IncidentState::Recovering);
    }
    map
}

fn transition_context(state: &TrackerState, scope: OutageScope, at: Timestamp) -> Transition {
    // Prefer the live entry; fall back to cooling, then the most recent
    // finished report of that scope (the Closed case).
    if let Ok(i) = state.ongoing.binary_search_by_key(&scope, |o| o.scope) {
        let o = &state.ongoing[i];
        return Transition {
            kind: TransitionKind::Opened,
            scope,
            at,
            started: o.started,
            end: None,
            validation: o.validation,
            completeness: o.completeness,
            evidence: o.evidence.clone(),
            affected_near: o.affected_near.len(),
            affected_far: o.affected_far.len(),
            oscillations: o.oscillations,
        };
    }
    let report = state
        .cooling
        .iter()
        .find(|(s, ..)| *s == scope)
        .map(|(_, r, _)| r)
        .or_else(|| state.finished.iter().rev().find(|r| r.scope == scope));
    match report {
        Some(r) => Transition {
            kind: TransitionKind::Closed,
            scope,
            at,
            started: r.start,
            end: r.end,
            validation: r.validation,
            completeness: r.probe_completeness,
            evidence: r.probe_evidence.clone(),
            affected_near: r.affected_near.len(),
            affected_far: r.affected_far.len(),
            oscillations: r.oscillations,
        },
        None => Transition {
            kind: TransitionKind::Closed,
            scope,
            at,
            started: at,
            end: Some(at),
            validation: ValidationStatus::Unvalidated,
            completeness: 1.0,
            evidence: Vec::new(),
            affected_near: 0,
            affected_far: 0,
            oscillations: 0,
        },
    }
}

/// Lifecycle transitions between two states, in scope order.
fn transitions(old: &TrackerState, new: &TrackerState, at: Timestamp) -> Vec<Transition> {
    let before = live_view(old);
    let after = live_view(new);
    let mut out = Vec::new();
    for (&scope, &state) in &after {
        let kind = match before.get(&scope) {
            None => TransitionKind::Opened,
            Some(&prev) if prev == state => continue,
            Some(IncidentState::Open) => TransitionKind::Recovering,
            Some(_) => TransitionKind::Reopened,
        };
        let mut t = transition_context(new, scope, at);
        t.kind = kind;
        out.push(t);
    }
    for &scope in before.keys() {
        if !after.contains_key(&scope) {
            let mut t = transition_context(new, scope, at);
            t.kind = TransitionKind::Closed;
            out.push(t);
        }
    }
    out
}

/// The durable incident store behind a serve daemon.
#[derive(Debug)]
pub struct IncidentStore {
    dir: PathBuf,
    wal: WalWriter,
    state: TrackerState,
    seq: u64,
    last_bin: Timestamp,
    snapshot_every: u64,
    bins_since_snapshot: u64,
}

impl IncidentStore {
    /// Opens (or creates) the store under `dir`, recovering state from
    /// snapshot + WAL. `snapshot_every` is the compaction cadence in
    /// committed bins (0 = compact only on [`close_run`](Self::close_run)).
    pub fn open(dir: &Path, snapshot_every: u64) -> io::Result<(IncidentStore, RecoveryReport)> {
        std::fs::create_dir_all(dir)?;
        let (state, seq, last_bin, recovery) = Self::load(dir)?;
        let wal = WalWriter::open(&dir.join("wal.log"))?;
        let store = IncidentStore {
            dir: dir.to_path_buf(),
            wal,
            state,
            seq,
            last_bin,
            snapshot_every,
            bins_since_snapshot: 0,
        };
        Ok((store, recovery))
    }

    /// Recovers the store's state read-only — the query/stats CLI path
    /// (no WAL handle, no writes).
    pub fn recover_state(dir: &Path) -> io::Result<(TrackerState, Timestamp, RecoveryReport)> {
        let (state, _, last_bin, recovery) = Self::load(dir)?;
        Ok((state, last_bin, recovery))
    }

    fn load(dir: &Path) -> io::Result<(TrackerState, u64, Timestamp, RecoveryReport)> {
        let mut recovery = RecoveryReport::default();
        let mut state = TrackerState::default();
        let mut seq = 0u64;
        let mut last_bin = 0;
        match std::fs::read(dir.join("snapshot.bin")) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
            Ok(bytes) => {
                let (s, sq, lb) = decode_snapshot(&bytes)?;
                state = s;
                seq = sq;
                last_bin = lb;
                recovery.had_snapshot = true;
                recovery.snapshot_seq = sq;
            }
        }
        let scan = read_frames(&dir.join("wal.log"))?;
        recovery.dropped_bytes = scan.dropped_bytes;
        for frame in &scan.frames {
            let mut d = Dec::new(frame);
            let tag = d.u8("record tag").map_err(|e| bad_data(e.to_string()))?;
            match tag {
                REC_BIN_COMMIT => {
                    let delta = decode_delta(&mut d).map_err(|e| bad_data(e.to_string()))?;
                    if delta.seq <= seq && (recovery.had_snapshot || seq > 0) {
                        recovery.frames_skipped += 1;
                        continue;
                    }
                    apply(&mut state, &delta);
                    seq = delta.seq;
                    last_bin = delta.bin_end;
                    recovery.frames_applied += 1;
                }
                REC_RUN_CLOSED => {
                    let sq = d.u64("closed seq").map_err(|e| bad_data(e.to_string()))?;
                    let bin = d.u64("closed bin").map_err(|e| bad_data(e.to_string()))?;
                    let n = d.len("closed finished").map_err(|e| bad_data(e.to_string()))?;
                    let finished = (0..n)
                        .map(|_| codec::dec_report(&mut d))
                        .collect::<Result<Vec<_>, _>>()
                        .map_err(|e| bad_data(e.to_string()))?;
                    if sq <= seq && (recovery.had_snapshot || seq > 0) {
                        recovery.frames_skipped += 1;
                        continue;
                    }
                    state = TrackerState { finished, ..TrackerState::default() };
                    seq = sq;
                    last_bin = bin;
                    recovery.frames_applied += 1;
                }
                _ => return Err(bad_data(format!("unknown WAL record tag {tag}"))),
            }
        }
        Ok((state, seq, last_bin, recovery))
    }

    /// The recovered/committed state.
    pub fn state(&self) -> &TrackerState {
        &self.state
    }

    /// Last committed bin sequence.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// End of the last committed bin.
    pub fn last_bin(&self) -> Timestamp {
        self.last_bin
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Commits one closed-bin batch: appends the delta between the
    /// committed state and `new_state` to the WAL, fsyncs, compacts on
    /// cadence, and returns the lifecycle transitions for alert fan-out.
    ///
    /// `seq` must be strictly monotone (the daemon passes
    /// `Kepler::bins_closed`); a bin batch with no state change writes
    /// no frame at all.
    pub fn commit_bin(
        &mut self,
        seq: u64,
        bin_end: Timestamp,
        new_state: &TrackerState,
    ) -> io::Result<Vec<Transition>> {
        assert!(seq > self.seq, "bin sequence must be monotone ({} <= {})", seq, self.seq);
        let delta = diff(&self.state, new_state, seq, bin_end);
        let out = transitions(&self.state, new_state, bin_end);
        let changed = !(delta.ongoing_upserts.is_empty()
            && delta.ongoing_removes.is_empty()
            && delta.cooling_upserts.is_empty()
            && delta.cooling_removes.is_empty()
            && delta.warming_upserts.is_empty()
            && delta.warming_removes.is_empty()
            && delta.finished_appended.is_empty());
        if changed {
            self.wal.append(&encode_delta(&delta))?;
            // fsync on bin close: the frame is durable before the bin is
            // acknowledged upstream.
            self.wal.sync()?;
            apply(&mut self.state, &delta);
            debug_assert_eq!(&self.state, new_state, "delta application must reconstruct");
        }
        self.seq = seq;
        self.last_bin = bin_end;
        self.bins_since_snapshot += 1;
        if self.snapshot_every > 0 && self.bins_since_snapshot >= self.snapshot_every {
            self.compact()?;
        }
        Ok(out)
    }

    /// Closes the run: records the final report set (everything the
    /// tracker finalized, including force-closed ongoing incidents) and
    /// compacts. Returns the closing transitions.
    pub fn close_run(
        &mut self,
        seq: u64,
        bin_end: Timestamp,
        finished: &[OutageReport],
    ) -> io::Result<Vec<Transition>> {
        let final_state = TrackerState { finished: finished.to_vec(), ..TrackerState::default() };
        let out = transitions(&self.state, &final_state, bin_end);
        let mut e = Enc::new();
        e.u8(REC_RUN_CLOSED);
        e.u64(seq.max(self.seq + 1));
        e.u64(bin_end);
        e.len(finished.len());
        for r in finished {
            codec::enc_report(&mut e, r);
        }
        self.wal.append(&e.into_bytes())?;
        self.wal.sync()?;
        self.seq = seq.max(self.seq + 1);
        self.last_bin = bin_end;
        self.state = final_state;
        self.compact()?;
        Ok(out)
    }

    /// Writes the current state as an atomic snapshot and restarts the
    /// WAL. Crash-safe in every window: the tmp file is fsynced before
    /// the rename, and a WAL that outlives its compaction is deduplicated
    /// by sequence on replay.
    pub fn compact(&mut self) -> io::Result<()> {
        let tmp = self.dir.join("snapshot.tmp");
        let bytes = encode_snapshot(&self.state, self.seq, self.last_bin);
        {
            let mut f = std::fs::File::create(&tmp)?;
            use std::io::Write;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("snapshot.bin"))?;
        // Restart the WAL: everything up to `seq` now lives in the
        // snapshot.
        let wal_path = self.dir.join("wal.log");
        std::fs::remove_file(&wal_path)?;
        self.wal = WalWriter::open(&wal_path)?;
        self.bins_since_snapshot = 0;
        Ok(())
    }

    /// Serializes the current state as a standalone snapshot (the
    /// "snapshot dump" surface: same bytes as `snapshot.bin`).
    pub fn dump_snapshot(&self) -> Vec<u8> {
        encode_snapshot(&self.state, self.seq, self.last_bin)
    }
}

/// Encodes a snapshot file: header, sequence point, CRC-protected body.
pub fn encode_snapshot(state: &TrackerState, seq: u64, last_bin: Timestamp) -> Vec<u8> {
    let mut body = Enc::new();
    codec::enc_state(&mut body, state);
    let body = body.into_bytes();
    let mut out = Vec::with_capacity(body.len() + 28);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&last_bin.to_le_bytes());
    out.extend_from_slice(&codec::crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decodes a snapshot file.
pub fn decode_snapshot(bytes: &[u8]) -> io::Result<(TrackerState, u64, Timestamp)> {
    if bytes.len() < 28 || &bytes[..4] != SNAPSHOT_MAGIC {
        return Err(bad_data("not a kepler snapshot"));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Err(bad_data(format!("unsupported snapshot version {version}")));
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let last_bin = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
    let body = &bytes[28..];
    if codec::crc32(body) != crc {
        return Err(bad_data("snapshot checksum mismatch"));
    }
    let mut d = Dec::new(body);
    let state = codec::dec_state(&mut d).map_err(|e| bad_data(e.to_string()))?;
    if !d.is_empty() {
        return Err(bad_data("snapshot trailing bytes"));
    }
    Ok((state, seq, last_bin))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Asn;
    use kepler_topology::FacilityId;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kepler-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn ongoing(fac: u32, started: u64) -> OngoingExport {
        OngoingExport {
            scope: OutageScope::Facility(FacilityId(fac)),
            started,
            prior_duration: 0,
            segment_start: started,
            oscillations: 1,
            affected_near: vec![Asn(5)],
            affected_far: vec![Asn(6)],
            affected_keys: Vec::new(),
            watch: Vec::new(),
            dataplane_confirmed: None,
            validation: ValidationStatus::Unvalidated,
            evidence: Vec::new(),
            completeness: 1.0,
            confidence: 0.0,
            confidence_at: started,
            next_probe: started + 60,
            probe_backoff: 60,
            probe_restored_at: None,
            restored_streak: 0,
            restored_first: None,
            sources: Vec::new(),
        }
    }

    fn closed_report(fac: u32, start: u64, end: u64) -> OutageReport {
        OutageReport {
            scope: OutageScope::Facility(FacilityId(fac)),
            start,
            end: Some(end),
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6)].into(),
            affected_paths: 2,
            oscillations: 1,
            dataplane_confirmed: None,
            validation: ValidationStatus::Unvalidated,
            probe_evidence: Vec::new(),
            probe_completeness: 1.0,
            state: IncidentState::Closed,
            sources: Vec::new(),
        }
    }

    #[test]
    fn commit_recover_round_trip_without_snapshot() {
        let dir = tmpdir("plain");
        let (mut store, rec) = IncidentStore::open(&dir, 0).unwrap();
        assert_eq!(rec, RecoveryReport::default());
        let mut s1 = TrackerState::default();
        s1.ongoing.push(ongoing(1, 100));
        let tr = store.commit_bin(1, 300, &s1).unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].kind, TransitionKind::Opened);
        let mut s2 = s1.clone();
        s2.ongoing.push(ongoing(0, 200));
        s2.ongoing.sort_by_key(|o| o.scope);
        store.commit_bin(2, 600, &s2).unwrap();
        drop(store);
        let (state, last_bin, rec) = IncidentStore::recover_state(&dir).unwrap();
        assert_eq!(state, s2);
        assert_eq!(last_bin, 600);
        assert_eq!(rec.frames_applied, 2);
        assert!(!rec.had_snapshot);
    }

    #[test]
    fn snapshot_plus_wal_recovers_and_skips_covered_frames() {
        let dir = tmpdir("snap");
        let (mut store, _) = IncidentStore::open(&dir, 2).unwrap();
        let mut s = TrackerState::default();
        for i in 0..5u64 {
            s.ongoing = vec![ongoing(1, 100 + i)];
            store.commit_bin(i + 1, 300 * (i + 1), &s).unwrap();
        }
        // Cadence 2: at least two compactions happened; WAL holds only
        // the post-snapshot tail.
        drop(store);
        let (state, last_bin, rec) = IncidentStore::recover_state(&dir).unwrap();
        assert_eq!(state, s);
        assert_eq!(last_bin, 1500);
        assert!(rec.had_snapshot);
        assert!(rec.snapshot_seq >= 4, "{rec:?}");
    }

    #[test]
    fn unchanged_bins_write_no_frames() {
        let dir = tmpdir("quiet");
        let (mut store, _) = IncidentStore::open(&dir, 0).unwrap();
        let s = TrackerState::default();
        for i in 0..50u64 {
            let tr = store.commit_bin(i + 1, 300 * (i + 1), &s).unwrap();
            assert!(tr.is_empty());
        }
        let wal_len = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert_eq!(wal_len, 8, "header only: quiet bins cost no WAL bytes");
    }

    #[test]
    fn lifecycle_transitions_are_detected() {
        let dir = tmpdir("transitions");
        let (mut store, _) = IncidentStore::open(&dir, 0).unwrap();
        // Open.
        let mut s = TrackerState::default();
        s.ongoing.push(ongoing(1, 100));
        let tr = store.commit_bin(1, 300, &s).unwrap();
        assert_eq!(tr[0].kind, TransitionKind::Opened);
        assert_eq!(tr[0].scope, OutageScope::Facility(FacilityId(1)));
        // Recovering (probe streak).
        s.ongoing[0].probe_restored_at = Some(500);
        let tr = store.commit_bin(2, 600, &s).unwrap();
        assert_eq!(tr[0].kind, TransitionKind::Recovering);
        // Relapse.
        s.ongoing[0].probe_restored_at = None;
        let tr = store.commit_bin(3, 900, &s).unwrap();
        assert_eq!(tr[0].kind, TransitionKind::Reopened);
        // Close: move to finished.
        let closed =
            TrackerState { finished: vec![closed_report(1, 100, 1000)], ..TrackerState::default() };
        let tr = store.commit_bin(4, 1200, &closed).unwrap();
        assert_eq!(tr[0].kind, TransitionKind::Closed);
        assert_eq!(tr[0].end, Some(1000), "closing alert carries the report's end");
    }

    #[test]
    fn close_run_finalizes_and_compacts() {
        let dir = tmpdir("close");
        let (mut store, _) = IncidentStore::open(&dir, 0).unwrap();
        let mut s = TrackerState::default();
        s.ongoing.push(ongoing(1, 100));
        store.commit_bin(1, 300, &s).unwrap();
        let finished = vec![closed_report(1, 100, 900)];
        let tr = store.close_run(2, 900, &finished).unwrap();
        assert_eq!(tr.len(), 1);
        assert_eq!(tr[0].kind, TransitionKind::Closed);
        drop(store);
        let (state, _, rec) = IncidentStore::recover_state(&dir).unwrap();
        assert_eq!(state.finished, finished);
        assert!(state.ongoing.is_empty());
        assert!(rec.had_snapshot);
        assert_eq!(rec.frames_applied, 0, "everything lives in the snapshot");
    }

    #[test]
    fn snapshot_corruption_is_detected() {
        let dir = tmpdir("corrupt-snap");
        let (mut store, _) = IncidentStore::open(&dir, 0).unwrap();
        let mut s = TrackerState::default();
        s.ongoing.push(ongoing(1, 100));
        store.commit_bin(1, 300, &s).unwrap();
        store.compact().unwrap();
        drop(store);
        let path = dir.join("snapshot.bin");
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(IncidentStore::recover_state(&dir).is_err());
    }
}

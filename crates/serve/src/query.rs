//! The O(1) query surface: an immutable status view swapped atomically
//! behind readers.
//!
//! The daemon rebuilds a [`StatusView`] once per committed bin and
//! publishes it through a [`ViewCell`] — an ArcSwap-shaped cell (a
//! `RwLock` held only long enough to clone an `Arc`). Readers call
//! [`ViewCell::load`] and get an immutable snapshot: no lock is held
//! while they read, a million concurrent status queries never contend
//! with ingest, and a query observes one consistent bin, never a
//! half-committed transition.

use kepler_bgpstream::Timestamp;
use kepler_core::events::{IncidentState, OutageScope, ValidationStatus};
use kepler_core::tracker::TrackerState;
use kepler_topology::{CityId, FacilityId, IxpId};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// The queryable status of one scope.
#[derive(Debug, Clone, PartialEq)]
pub struct ScopeStatus {
    /// The scope.
    pub scope: OutageScope,
    /// Lifecycle state (`Closed` = most recent incident there is over).
    pub state: IncidentState,
    /// When the incident opened.
    pub started: Timestamp,
    /// When it ended (`None` while live).
    pub end: Option<Timestamp>,
    /// Probe verdict.
    pub validation: ValidationStatus,
    /// Oscillation segments.
    pub oscillations: usize,
    /// Near-end ASes affected.
    pub affected_near: usize,
    /// Far-end ASes affected.
    pub affected_far: usize,
}

/// An immutable point-in-time map of every known scope's status.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct StatusView {
    /// End of the bin this view reflects.
    pub as_of: Timestamp,
    /// Commit sequence this view reflects.
    pub seq: u64,
    scopes: HashMap<OutageScope, ScopeStatus>,
}

impl StatusView {
    /// Builds a view from a recovered/committed tracker state. Layering
    /// order is finished → cooling → ongoing, so a scope that closed once
    /// and reopened reads as its **live** incident.
    pub fn from_state(state: &TrackerState, as_of: Timestamp, seq: u64) -> StatusView {
        let mut scopes = HashMap::new();
        for r in &state.finished {
            scopes.insert(
                r.scope,
                ScopeStatus {
                    scope: r.scope,
                    state: IncidentState::Closed,
                    started: r.start,
                    end: r.end,
                    validation: r.validation,
                    oscillations: r.oscillations,
                    affected_near: r.affected_near.len(),
                    affected_far: r.affected_far.len(),
                },
            );
        }
        for (scope, r, _) in &state.cooling {
            scopes.insert(
                *scope,
                ScopeStatus {
                    scope: *scope,
                    state: IncidentState::Recovering,
                    started: r.start,
                    end: r.end,
                    validation: r.validation,
                    oscillations: r.oscillations,
                    affected_near: r.affected_near.len(),
                    affected_far: r.affected_far.len(),
                },
            );
        }
        for o in &state.ongoing {
            let live = if o.probe_restored_at.is_some() || o.restored_streak > 0 {
                IncidentState::Recovering
            } else {
                IncidentState::Open
            };
            scopes.insert(
                o.scope,
                ScopeStatus {
                    scope: o.scope,
                    state: live,
                    started: o.started,
                    end: None,
                    validation: o.validation,
                    oscillations: o.oscillations,
                    affected_near: o.affected_near.len(),
                    affected_far: o.affected_far.len(),
                },
            );
        }
        StatusView { as_of, seq, scopes }
    }

    /// The status of `scope` — a single hash lookup.
    pub fn status(&self, scope: OutageScope) -> Option<&ScopeStatus> {
        self.scopes.get(&scope)
    }

    /// Facility shorthand for [`status`](Self::status).
    pub fn facility(&self, id: u32) -> Option<&ScopeStatus> {
        self.status(OutageScope::Facility(FacilityId(id)))
    }

    /// IXP shorthand for [`status`](Self::status).
    pub fn ixp(&self, id: u32) -> Option<&ScopeStatus> {
        self.status(OutageScope::Ixp(IxpId(id)))
    }

    /// City shorthand for [`status`](Self::status).
    pub fn city(&self, id: u32) -> Option<&ScopeStatus> {
        self.status(OutageScope::City(CityId(id)))
    }

    /// Whether `scope` has a live (non-closed) incident.
    pub fn is_down(&self, scope: OutageScope) -> bool {
        self.status(scope).map(|s| s.state != IncidentState::Closed).unwrap_or(false)
    }

    /// Every known scope's status, sorted by scope (stable output for
    /// the CLI and tests).
    pub fn all(&self) -> Vec<&ScopeStatus> {
        let mut v: Vec<&ScopeStatus> = self.scopes.values().collect();
        v.sort_by_key(|s| s.scope);
        v
    }

    /// Live (Open/Recovering) scopes only, sorted.
    pub fn live(&self) -> Vec<&ScopeStatus> {
        let mut v: Vec<&ScopeStatus> =
            self.scopes.values().filter(|s| s.state != IncidentState::Closed).collect();
        v.sort_by_key(|s| s.scope);
        v
    }

    /// Number of scopes tracked.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }
}

/// An atomically swappable shared view (ArcSwap shape on std: the write
/// lock is held only to swap the `Arc`, the read lock only to clone it;
/// readers never block each other and never hold a lock while reading
/// the view itself).
#[derive(Debug, Default)]
pub struct ViewCell {
    inner: RwLock<Arc<StatusView>>,
}

impl ViewCell {
    /// A cell holding `view`.
    pub fn new(view: StatusView) -> ViewCell {
        ViewCell { inner: RwLock::new(Arc::new(view)) }
    }

    /// Loads the current view — O(1): one read-lock acquisition and one
    /// `Arc` clone, independent of view size.
    pub fn load(&self) -> Arc<StatusView> {
        self.inner.read().expect("view lock poisoned").clone()
    }

    /// Publishes a new view, atomically replacing the old one. In-flight
    /// readers keep their snapshot.
    pub fn store(&self, view: StatusView) {
        *self.inner.write().expect("view lock poisoned") = Arc::new(view);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Asn;
    use kepler_core::events::OutageReport;
    use kepler_core::tracker::OngoingExport;

    fn report(fac: u32, start: u64, end: Option<u64>) -> OutageReport {
        OutageReport {
            scope: OutageScope::Facility(FacilityId(fac)),
            start,
            end,
            affected_near: [Asn(5)].into(),
            affected_far: [Asn(6), Asn(7)].into(),
            affected_paths: 3,
            oscillations: 1,
            dataplane_confirmed: None,
            validation: ValidationStatus::Confirmed,
            probe_evidence: Vec::new(),
            probe_completeness: 1.0,
            state: IncidentState::Closed,
            sources: Vec::new(),
        }
    }

    fn ongoing(fac: u32, started: u64) -> OngoingExport {
        OngoingExport {
            scope: OutageScope::Facility(FacilityId(fac)),
            started,
            prior_duration: 0,
            segment_start: started,
            oscillations: 2,
            affected_near: vec![Asn(5)],
            affected_far: vec![Asn(6)],
            affected_keys: Vec::new(),
            watch: Vec::new(),
            dataplane_confirmed: None,
            validation: ValidationStatus::Unvalidated,
            evidence: Vec::new(),
            completeness: 1.0,
            confidence: 0.0,
            confidence_at: started,
            next_probe: started + 60,
            probe_backoff: 60,
            probe_restored_at: None,
            restored_streak: 0,
            restored_first: None,
            sources: Vec::new(),
        }
    }

    #[test]
    fn layering_prefers_the_live_incident() {
        let state = TrackerState {
            ongoing: vec![ongoing(1, 900)],
            cooling: vec![(OutageScope::Facility(FacilityId(2)), report(2, 100, Some(500)), 600)],
            warming: Vec::new(),
            // Facility 1 closed once at 100..200, then reopened at 900.
            finished: vec![report(1, 100, Some(200)), report(3, 50, Some(80))],
        };
        let view = StatusView::from_state(&state, 1_200, 4);
        assert_eq!(view.len(), 3);
        let f1 = view.facility(1).unwrap();
        assert_eq!(f1.state, IncidentState::Open, "live incident shadows the closed one");
        assert_eq!(f1.started, 900);
        assert_eq!(view.facility(2).unwrap().state, IncidentState::Recovering);
        assert_eq!(view.facility(3).unwrap().state, IncidentState::Closed);
        assert!(view.is_down(OutageScope::Facility(FacilityId(1))));
        assert!(view.is_down(OutageScope::Facility(FacilityId(2))));
        assert!(!view.is_down(OutageScope::Facility(FacilityId(3))));
        assert!(!view.is_down(OutageScope::Facility(FacilityId(99))));
        assert_eq!(view.live().len(), 2);
        assert_eq!(view.all().len(), 3);
    }

    #[test]
    fn readers_keep_their_snapshot_across_a_swap() {
        let cell = ViewCell::new(StatusView::from_state(
            &TrackerState { ongoing: vec![ongoing(1, 100)], ..TrackerState::default() },
            300,
            1,
        ));
        let before = cell.load();
        cell.store(StatusView::from_state(&TrackerState::default(), 600, 2));
        assert_eq!(before.seq, 1, "in-flight reader unaffected by the swap");
        assert!(before.facility(1).is_some());
        let after = cell.load();
        assert_eq!(after.seq, 2);
        assert!(after.is_empty());
    }

    #[test]
    fn concurrent_readers_see_consistent_views() {
        let cell = Arc::new(ViewCell::new(StatusView::default()));
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let cell = Arc::clone(&cell);
                    s.spawn(move || {
                        for _ in 0..10_000 {
                            let v = cell.load();
                            // seq and as_of always travel together: a view
                            // is immutable once published.
                            assert_eq!(v.as_of, v.seq * 300);
                        }
                    })
                })
                .collect();
            for seq in 1..=50u64 {
                cell.store(StatusView { as_of: seq * 300, seq, ..StatusView::default() });
            }
            for r in readers {
                r.join().unwrap();
            }
        });
    }
}

//! Alert fan-out: lifecycle transitions dispatched to pluggable
//! channels, each with its own token-bucket rate limit.
//!
//! The daemon turns every committed bin's [`Transition`]s into alerts
//! and offers them to every registered channel. A channel that is out
//! of tokens does not drop the alert — it **coalesces**: the newest
//! transition is parked, a suppression counter ticks, and the next
//! available token delivers the parked alert with the count attached.
//! Operators see the latest state plus "N earlier alerts were folded
//! into this one", never a silent gap.
//!
//! Channels are isolated: one saturated channel never delays or drops
//! delivery on another, and the clock is the daemon's deterministic bin
//! clock, not wall time — replaying the same stream produces the same
//! alert sequence.

use crate::store::Transition;
use kepler_bgpstream::Timestamp;
use std::io::Write;
use std::path::PathBuf;

/// One delivered alert: a lifecycle transition plus the number of
/// earlier transitions this channel folded into it while rate-limited.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// The transition (full incident context).
    pub transition: Transition,
    /// Transitions coalesced into this delivery (0 = delivered fresh).
    pub suppressed: u64,
}

impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = &self.transition;
        write!(
            f,
            "[{}] {} {} started={} near={} far={} osc={} validation={}",
            t.at,
            t.kind,
            t.scope,
            t.started,
            t.affected_near,
            t.affected_far,
            t.oscillations,
            t.validation,
        )?;
        if let Some(end) = t.end {
            write!(f, " end={end}")?;
        }
        if self.suppressed > 0 {
            write!(f, " (+{} coalesced)", self.suppressed)?;
        }
        Ok(())
    }
}

/// A delivery target for alerts.
pub trait AlertSink: Send {
    /// Delivers one alert. Infallible by contract: a sink that can fail
    /// (e.g. a file) swallows and counts errors rather than stalling the
    /// daemon.
    fn deliver(&mut self, alert: &Alert);
}

/// Writes alerts as lines to standard error.
#[derive(Debug, Default)]
pub struct LogSink;

impl AlertSink for LogSink {
    fn deliver(&mut self, alert: &Alert) {
        eprintln!("kepler-alert {alert}");
    }
}

/// Appends alerts as lines to a file. I/O errors are counted, not
/// propagated — losing an alert line must not stop detection.
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    errors: u64,
}

impl FileSink {
    /// A sink appending to `path`.
    pub fn new(path: PathBuf) -> FileSink {
        FileSink { path, errors: 0 }
    }

    /// Write errors swallowed so far.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

impl AlertSink for FileSink {
    fn deliver(&mut self, alert: &Alert) {
        let result = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)
            .and_then(|mut f| writeln!(f, "{alert}"));
        if result.is_err() {
            self.errors += 1;
        }
    }
}

/// Invokes a closure per alert — the embedding/test surface.
pub struct CallbackSink<F: FnMut(&Alert) + Send>(pub F);

impl<F: FnMut(&Alert) + Send> AlertSink for CallbackSink<F> {
    fn deliver(&mut self, alert: &Alert) {
        (self.0)(alert);
    }
}

/// A token bucket on the daemon's bin clock. Saturating arithmetic
/// throughout: a clock at `u64::MAX` (or one that jumps backwards after
/// an import) refills conservatively instead of overflowing — the same
/// guard the probe scheduler's credit ledger uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    capacity: u64,
    tokens: u64,
    refill_secs: u64,
    last_refill: Timestamp,
}

impl TokenBucket {
    /// A bucket holding at most `capacity` tokens (starts full), earning
    /// one token per `refill_secs` elapsed. `refill_secs` is clamped to
    /// at least 1.
    pub fn new(capacity: u64, refill_secs: u64) -> TokenBucket {
        TokenBucket {
            capacity: capacity.max(1),
            tokens: capacity.max(1),
            refill_secs: refill_secs.max(1),
            last_refill: 0,
        }
    }

    /// Takes one token at time `now`, refilling first. Returns whether a
    /// token was available.
    pub fn try_take(&mut self, now: Timestamp) -> bool {
        let elapsed = now.saturating_sub(self.last_refill);
        let earned = elapsed / self.refill_secs;
        if earned > 0 {
            self.tokens = self.tokens.saturating_add(earned).min(self.capacity);
            // Advance by whole refill periods so the remainder keeps
            // accruing; saturating_mul keeps `now = u64::MAX` safe.
            self.last_refill =
                self.last_refill.saturating_add(earned.saturating_mul(self.refill_secs));
        }
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after a refill at `now`).
    pub fn available(&mut self, now: Timestamp) -> u64 {
        let elapsed = now.saturating_sub(self.last_refill);
        let earned = elapsed / self.refill_secs;
        if earned > 0 {
            self.tokens = self.tokens.saturating_add(earned).min(self.capacity);
            self.last_refill =
                self.last_refill.saturating_add(earned.saturating_mul(self.refill_secs));
        }
        self.tokens
    }
}

/// Delivery counters for one channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Alerts handed to the sink.
    pub delivered: u64,
    /// Transitions folded into later deliveries.
    pub suppressed: u64,
}

/// One named alert channel: a sink behind a rate limit.
pub struct Channel {
    name: String,
    sink: Box<dyn AlertSink>,
    bucket: TokenBucket,
    pending: Option<Transition>,
    pending_suppressed: u64,
    stats: ChannelStats,
}

impl Channel {
    /// A channel delivering to `sink` under `bucket`'s rate limit.
    pub fn new(name: impl Into<String>, sink: Box<dyn AlertSink>, bucket: TokenBucket) -> Channel {
        Channel {
            name: name.into(),
            sink,
            bucket,
            pending: None,
            pending_suppressed: 0,
            stats: ChannelStats::default(),
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Delivery counters.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Offers one transition at time `now`. Delivers immediately when a
    /// token is free and nothing is parked; otherwise coalesces.
    pub fn offer(&mut self, transition: &Transition, now: Timestamp) {
        self.flush(now);
        // Order matters: only reach for a token when nothing is parked,
        // so a saturated channel does not burn the token the parked
        // alert is waiting for.
        if self.pending.is_none() && self.bucket.try_take(now) {
            self.sink.deliver(&Alert { transition: transition.clone(), suppressed: 0 });
            self.stats.delivered += 1;
        } else {
            if self.pending.is_some() {
                self.pending_suppressed += 1;
                self.stats.suppressed += 1;
            }
            self.pending = Some(transition.clone());
        }
    }

    /// Delivers the parked alert if a token is now available.
    pub fn flush(&mut self, now: Timestamp) {
        if self.pending.is_some() && self.bucket.try_take(now) {
            let transition = self.pending.take().expect("checked above");
            let suppressed = std::mem::take(&mut self.pending_suppressed);
            self.sink.deliver(&Alert { transition, suppressed });
            self.stats.delivered += 1;
        }
    }

    /// Delivers the parked alert unconditionally (daemon shutdown: the
    /// rate limit must not eat the final state).
    pub fn drain(&mut self) {
        if let Some(transition) = self.pending.take() {
            let suppressed = std::mem::take(&mut self.pending_suppressed);
            self.sink.deliver(&Alert { transition, suppressed });
            self.stats.delivered += 1;
        }
    }
}

impl std::fmt::Debug for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("name", &self.name)
            .field("bucket", &self.bucket)
            .field("pending", &self.pending.is_some())
            .field("stats", &self.stats)
            .finish()
    }
}

/// Fans transitions out to every registered channel.
#[derive(Debug, Default)]
pub struct AlertRouter {
    channels: Vec<Channel>,
}

impl AlertRouter {
    /// An empty router.
    pub fn new() -> AlertRouter {
        AlertRouter::default()
    }

    /// Registers a channel.
    pub fn add_channel(&mut self, channel: Channel) {
        self.channels.push(channel);
    }

    /// Offers a batch of transitions to every channel at time `now`.
    pub fn dispatch(&mut self, transitions: &[Transition], now: Timestamp) {
        for channel in &mut self.channels {
            for t in transitions {
                channel.offer(t, now);
            }
        }
    }

    /// Gives every channel a chance to deliver its parked alert.
    pub fn flush(&mut self, now: Timestamp) {
        for channel in &mut self.channels {
            channel.flush(now);
        }
    }

    /// Force-delivers every parked alert (shutdown path).
    pub fn drain(&mut self) {
        for channel in &mut self.channels {
            channel.drain();
        }
    }

    /// Per-channel delivery counters.
    pub fn stats(&self) -> Vec<(String, ChannelStats)> {
        self.channels.iter().map(|c| (c.name.clone(), c.stats)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TransitionKind;
    use kepler_core::events::{OutageScope, ValidationStatus};
    use kepler_topology::FacilityId;
    use std::sync::{Arc, Mutex};

    fn transition(kind: TransitionKind, at: Timestamp) -> Transition {
        Transition {
            kind,
            scope: OutageScope::Facility(FacilityId(1)),
            at,
            started: 100,
            end: None,
            validation: ValidationStatus::Unvalidated,
            completeness: 1.0,
            evidence: Vec::new(),
            affected_near: 2,
            affected_far: 3,
            oscillations: 1,
        }
    }

    fn capture() -> (Arc<Mutex<Vec<Alert>>>, Box<dyn AlertSink>) {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let writer = Arc::clone(&seen);
        let sink = CallbackSink(move |a: &Alert| writer.lock().unwrap().push(a.clone()));
        (seen, Box::new(sink))
    }

    #[test]
    fn burst_coalesces_into_one_delivery_with_count() {
        let (seen, sink) = capture();
        let mut ch = Channel::new("test", sink, TokenBucket::new(1, 60));
        // Five transitions in the same instant: one delivered, four
        // parked-and-folded.
        for i in 0..5 {
            ch.offer(&transition(TransitionKind::Opened, i), 0);
        }
        assert_eq!(seen.lock().unwrap().len(), 1);
        assert_eq!(ch.stats().delivered, 1);
        // A token later, the parked alert arrives once, carrying the
        // newest transition and the fold count.
        ch.flush(60);
        let alerts = seen.lock().unwrap();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[1].transition.at, 4, "coalescing keeps the newest transition");
        assert_eq!(alerts[1].suppressed, 3, "three older parked alerts folded in");
    }

    #[test]
    fn channels_are_isolated() {
        let (slow_seen, slow_sink) = capture();
        let (fast_seen, fast_sink) = capture();
        let mut router = AlertRouter::new();
        router.add_channel(Channel::new("slow", slow_sink, TokenBucket::new(1, 1_000_000)));
        router.add_channel(Channel::new("fast", fast_sink, TokenBucket::new(100, 1)));
        let batch: Vec<Transition> =
            (0..10).map(|i| transition(TransitionKind::Opened, i)).collect();
        router.dispatch(&batch, 0);
        assert_eq!(slow_seen.lock().unwrap().len(), 1, "slow channel rate-limited");
        assert_eq!(fast_seen.lock().unwrap().len(), 10, "fast channel untouched by it");
        let stats = router.stats();
        assert_eq!(stats[0].1.suppressed, 8, "9 parked on slow, 8 folded behind the newest");
        assert_eq!(stats[1].1.suppressed, 0);
    }

    #[test]
    fn saturated_clock_does_not_overflow() {
        let mut bucket = TokenBucket::new(2, 60);
        assert!(bucket.try_take(u64::MAX));
        assert!(bucket.try_take(u64::MAX));
        // The first take saturated `last_refill` at `u64::MAX`; no time
        // can elapse past it, so the drained bucket stays drained —
        // conservative, never panicking, never minting past capacity.
        assert!(!bucket.try_take(u64::MAX));
        assert_eq!(bucket.available(u64::MAX), 0);
        // A clock running backwards (possible across a restore) is a
        // no-op refill, not an underflow.
        let mut bucket = TokenBucket::new(1, 60);
        assert!(bucket.try_take(1_000));
        assert!(!bucket.try_take(500));
    }

    #[test]
    fn parked_alert_does_not_burn_the_refill_token() {
        let (seen, sink) = capture();
        let mut ch = Channel::new("test", sink, TokenBucket::new(1, 60));
        ch.offer(&transition(TransitionKind::Opened, 0), 0);
        ch.offer(&transition(TransitionKind::Recovering, 1), 0); // parked
                                                                 // At t=60 exactly one token exists. Offering a third transition
                                                                 // must hand that token to the parked alert, then park the new one
                                                                 // — not deliver the new one past the queue.
        ch.offer(&transition(TransitionKind::Closed, 60), 60);
        let alerts = seen.lock().unwrap();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[1].transition.kind, TransitionKind::Recovering);
        drop(alerts);
        ch.drain();
        let alerts = seen.lock().unwrap();
        assert_eq!(alerts.len(), 3);
        assert_eq!(alerts[2].transition.kind, TransitionKind::Closed);
    }

    #[test]
    fn drain_delivers_pending_regardless_of_tokens() {
        let (seen, sink) = capture();
        let mut router = AlertRouter::new();
        router.add_channel(Channel::new("only", sink, TokenBucket::new(1, u64::MAX)));
        let batch: Vec<Transition> =
            (0..3).map(|i| transition(TransitionKind::Opened, i)).collect();
        router.dispatch(&batch, 0);
        assert_eq!(seen.lock().unwrap().len(), 1);
        router.drain();
        let alerts = seen.lock().unwrap();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[1].suppressed, 1);
    }
}

//! Property-based tests for the stream substrate.

use kepler_bgp::{Asn, BgpUpdate, Prefix};
use kepler_bgpstream::{
    BgpRecord, Broker, CollectorId, MemorySource, MergedStream, PeerId, RecordPayload, RecordSource,
};
use proptest::prelude::*;

fn rec(time: u64, collector: u16) -> BgpRecord {
    BgpRecord {
        time,
        collector: CollectorId(collector),
        peer: PeerId { asn: Asn(1), addr: "10.0.0.1".parse().unwrap() },
        payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(20, 0, 0, 0, 16)])),
    }
}

proptest! {
    /// The k-way merge always yields a time-sorted stream containing every
    /// input record exactly once, for arbitrary per-source timestamps.
    #[test]
    fn merge_is_sorted_and_complete(
        feeds in prop::collection::vec(prop::collection::vec(0u64..10_000, 0..50), 0..8)
    ) {
        let total: usize = feeds.iter().map(Vec::len).sum();
        let sources: Vec<Box<dyn RecordSource>> = feeds
            .iter()
            .enumerate()
            .map(|(i, times)| {
                let records: Vec<BgpRecord> =
                    times.iter().map(|&t| rec(t, i as u16)).collect();
                Box::new(MemorySource::new(records)) as Box<dyn RecordSource>
            })
            .collect();
        let merged: Vec<BgpRecord> = MergedStream::new(sources).collect();
        prop_assert_eq!(merged.len(), total);
        for w in merged.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
    }

    /// Broker window queries return exactly the records inside the window,
    /// sorted, regardless of ingestion order.
    #[test]
    fn broker_window_semantics(
        times in prop::collection::vec(0u64..1000, 0..100),
        start in 0u64..1000,
        len in 0u64..1000,
    ) {
        let mut b = Broker::new();
        let c = b.register_collector("rrc00");
        b.ingest(c, times.iter().map(|&t| rec(t, 0)).collect());
        let end = start + len;
        let got: Vec<u64> =
            b.query(kepler_bgpstream::broker::TimeWindow::new(start, end)).map(|r| r.time).collect();
        let mut expect: Vec<u64> = times.iter().copied().filter(|&t| t >= start && t < end).collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Exploding a record yields one element per prefix, preserving time
    /// and peer identity.
    #[test]
    fn explode_counts(n_w in 0usize..6, n_a in 0usize..6) {
        let withdrawn: Vec<Prefix> = (0..n_w).map(|i| Prefix::v4(20, i as u8, 0, 0, 16)).collect();
        let announced: Vec<Prefix> = (0..n_a).map(|i| Prefix::v4(30, i as u8, 0, 0, 16)).collect();
        let update = if n_a > 0 {
            BgpUpdate {
                withdrawn,
                attrs: Some(kepler_bgp::PathAttributes::default()),
                announced,
            }
        } else {
            BgpUpdate { withdrawn, attrs: None, announced: vec![] }
        };
        let r = BgpRecord {
            time: 42,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(5), addr: "10.0.0.5".parse().unwrap() },
            payload: RecordPayload::Update(update),
        };
        let elems = r.explode();
        prop_assert_eq!(elems.len(), n_w + if n_a > 0 { n_a } else { 0 });
        for e in &elems {
            prop_assert_eq!(e.time, 42);
            prop_assert_eq!(e.peer.asn, Asn(5));
        }
    }
}

//! Deterministic k-way merge of per-collector record streams.

use crate::record::BgpRecord;
use crate::source::RecordSource;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merges many time-sorted sources into one globally time-sorted stream.
///
/// Ties are broken by source registration index, making the merged order
/// fully deterministic — important for reproducible experiments.
pub struct MergedStream {
    sources: Vec<Box<dyn RecordSource>>,
    heap: BinaryHeap<Reverse<(u64, usize)>>,
}

impl MergedStream {
    /// Builds a merged stream over `sources`.
    pub fn new(sources: Vec<Box<dyn RecordSource>>) -> Self {
        let mut s = MergedStream { sources, heap: BinaryHeap::new() };
        for idx in 0..s.sources.len() {
            if let Some(t) = s.sources[idx].peek_time() {
                s.heap.push(Reverse((t, idx)));
            }
        }
        s
    }

    /// Number of underlying sources.
    pub fn width(&self) -> usize {
        self.sources.len()
    }
}

impl Iterator for MergedStream {
    type Item = BgpRecord;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, idx)) = self.heap.pop()?;
        let rec = self.sources[idx].next_record()?;
        if let Some(t) = self.sources[idx].peek_time() {
            self.heap.push(Reverse((t, idx)));
        }
        Some(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::{CollectorId, PeerId};
    use crate::record::RecordPayload;
    use crate::source::MemorySource;
    use kepler_bgp::{Asn, BgpUpdate, Prefix};

    fn rec(time: u64, collector: u16) -> BgpRecord {
        BgpRecord {
            time,
            collector: CollectorId(collector),
            peer: PeerId { asn: Asn(1), addr: "192.0.2.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(
                184, 84, 0, 0, 16,
            )])),
        }
    }

    #[test]
    fn merges_in_time_order() {
        let a = MemorySource::new(vec![rec(1, 0), rec(4, 0), rec(9, 0)]);
        let b = MemorySource::new(vec![rec(2, 1), rec(3, 1), rec(10, 1)]);
        let c = MemorySource::new(vec![rec(5, 2)]);
        let merged = MergedStream::new(vec![Box::new(a), Box::new(b), Box::new(c)]);
        assert_eq!(merged.width(), 3);
        let times: Vec<u64> = merged.map(|r| r.time).collect();
        assert_eq!(times, vec![1, 2, 3, 4, 5, 9, 10]);
    }

    #[test]
    fn equal_times_break_by_source_index() {
        let a = MemorySource::new(vec![rec(7, 0)]);
        let b = MemorySource::new(vec![rec(7, 1)]);
        let collectors: Vec<u16> =
            MergedStream::new(vec![Box::new(a), Box::new(b)]).map(|r| r.collector.0).collect();
        assert_eq!(collectors, vec![0, 1]);
    }

    #[test]
    fn empty_sources_are_fine() {
        let a = MemorySource::new(vec![]);
        let b = MemorySource::new(vec![rec(1, 1)]);
        let merged = MergedStream::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(merged.count(), 1);
        assert_eq!(MergedStream::new(vec![]).count(), 0);
    }
}

//! BGPStream-like substrate: a unified, time-sorted feed of BGP records
//! from many route collectors.
//!
//! The paper (§4.1) uses the BGPStream framework to "decouple Kepler from
//! the sources of BGP feeds, and thus obtain a unified feed of sorted BGP
//! records" across all RouteViews and RIPE RIS collectors. This crate
//! reproduces that layer:
//!
//! * [`record`] — the record/element model: one [`record::BgpRecord`] per
//!   archived message, exploded into per-prefix [`record::BgpElem`]s for
//!   analysis (BGPStream's `BGPElem`).
//! * [`collector`] — collector and peer identities.
//! * [`source`] — the [`source::RecordSource`] abstraction plus in-memory
//!   and MRT-file-backed sources.
//! * [`merge`] — deterministic k-way merge of many sources by timestamp.
//! * [`gap`] — session-state tracking used to disregard measurement bins
//!   affected by collector feed disruptions rather than real outages.
//! * [`broker`] — time-windowed queries over a set of registered archives
//!   (the "broker" interface of BGPStream).
//! * [`batch`] — per-collector-session record batching, the routing layer
//!   of the parallel ingest pipeline in `kepler-core`.
//!
//! # Invariants
//!
//! * **One unified clock**: [`merge`] emits records in non-decreasing
//!   timestamp order with a deterministic tie-break, regardless of how
//!   many sources feed it.
//! * **Session state is part of the data**: collector session drops
//!   surface as records (not silence), so [`gap`] can quarantine
//!   feed-loss windows instead of mistaking them for outages.
//! * [`batch`] keys strictly on (collector, peer) — a session's records
//!   never interleave across ingest workers, which is what makes
//!   parallel decode order-exact.

pub mod batch;
pub mod broker;
pub mod collector;
pub mod gap;
pub mod merge;
pub mod record;
pub mod source;

pub use batch::{session_key, RecordBatcher};
pub use broker::Broker;
pub use collector::{CollectorId, CollectorRegistry, PeerId};
pub use gap::GapTracker;
pub use merge::MergedStream;
pub use record::{BgpElem, BgpRecord, ElemKind, RecordPayload, Timestamp};
pub use source::{MemorySource, MrtSource, RecordSource};

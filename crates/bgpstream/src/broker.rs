//! Time-windowed queries over registered archives — the BGPStream "broker".

use crate::collector::{CollectorId, CollectorRegistry};
use crate::merge::MergedStream;
use crate::record::{BgpRecord, Timestamp};
use crate::source::MemorySource;

/// An inclusive-exclusive time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeWindow {
    /// Window start (inclusive).
    pub start: Timestamp,
    /// Window end (exclusive).
    pub end: Timestamp,
}

impl TimeWindow {
    /// Builds a window; `end` must not precede `start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Self {
        assert!(end >= start, "window end before start");
        TimeWindow { start, end }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in seconds.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

/// Holds per-collector archives and answers time-windowed queries with a
/// merged, globally sorted stream — the same role BGPStream's broker plays
/// for RouteViews/RIS archives.
#[derive(Debug, Default)]
pub struct Broker {
    registry: CollectorRegistry,
    archives: Vec<Vec<BgpRecord>>,
}

impl Broker {
    /// Creates an empty broker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a collector and returns its id.
    pub fn register_collector(&mut self, name: &str) -> CollectorId {
        let id = self.registry.register(name);
        while self.archives.len() <= id.0 as usize {
            self.archives.push(Vec::new());
        }
        id
    }

    /// The collector name registry.
    pub fn registry(&self) -> &CollectorRegistry {
        &self.registry
    }

    /// Appends records to a collector's archive (re-sorted lazily at query
    /// time; records are usually appended in order).
    pub fn ingest(&mut self, collector: CollectorId, mut records: Vec<BgpRecord>) {
        let archive = &mut self.archives[collector.0 as usize];
        for r in &mut records {
            r.collector = collector;
        }
        archive.append(&mut records);
    }

    /// Total archived record count.
    pub fn record_count(&self) -> usize {
        self.archives.iter().map(Vec::len).sum()
    }

    /// Returns a merged stream over all collectors restricted to `window`.
    pub fn query(&self, window: TimeWindow) -> MergedStream {
        let sources: Vec<Box<dyn crate::source::RecordSource>> = self
            .archives
            .iter()
            .map(|archive| {
                let slice: Vec<BgpRecord> =
                    archive.iter().filter(|r| window.contains(r.time)).cloned().collect();
                Box::new(MemorySource::new(slice)) as Box<dyn crate::source::RecordSource>
            })
            .collect();
        MergedStream::new(sources)
    }

    /// Returns a merged stream over everything archived.
    pub fn query_all(&self) -> MergedStream {
        self.query(TimeWindow::new(0, Timestamp::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::PeerId;
    use crate::record::RecordPayload;
    use kepler_bgp::{Asn, BgpUpdate, Prefix};

    fn rec(time: u64) -> BgpRecord {
        BgpRecord {
            time,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(1), addr: "192.0.2.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(
                184, 84, 0, 0, 16,
            )])),
        }
    }

    #[test]
    fn windowed_query_filters_and_merges() {
        let mut b = Broker::new();
        let rrc = b.register_collector("rrc00");
        let rv = b.register_collector("route-views2");
        b.ingest(rrc, vec![rec(10), rec(20), rec(30)]);
        b.ingest(rv, vec![rec(15), rec(25), rec(35)]);
        assert_eq!(b.record_count(), 6);
        let times: Vec<u64> = b.query(TimeWindow::new(15, 31)).map(|r| r.time).collect();
        assert_eq!(times, vec![15, 20, 25, 30]);
        assert_eq!(b.query_all().count(), 6);
    }

    #[test]
    fn ingest_stamps_collector_id() {
        let mut b = Broker::new();
        let rv = b.register_collector("route-views2");
        b.ingest(rv, vec![rec(10)]);
        let got: Vec<BgpRecord> = b.query_all().collect();
        assert_eq!(got[0].collector, rv);
        assert_eq!(b.registry().name(rv), Some("route-views2"));
    }

    #[test]
    #[should_panic(expected = "window end before start")]
    fn bad_window_panics() {
        TimeWindow::new(10, 5);
    }
}

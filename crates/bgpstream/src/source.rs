//! Record sources: where BGP records come from.

use crate::collector::CollectorId;
use crate::record::BgpRecord;
use kepler_bgp::mrt::{MrtError, MrtReader};
use std::collections::VecDeque;
use std::io::Read;

/// A pull-based source of time-ordered [`BgpRecord`]s.
///
/// Implementations must yield records in non-decreasing `time` order; the
/// [`crate::merge::MergedStream`] relies on this to produce a globally
/// sorted feed.
pub trait RecordSource {
    /// Returns the next record, or `None` when the source is exhausted.
    fn next_record(&mut self) -> Option<BgpRecord>;

    /// Peek at the timestamp of the next record without consuming it.
    fn peek_time(&mut self) -> Option<u64>;
}

/// An in-memory source over a pre-sorted vector of records.
#[derive(Debug, Clone)]
pub struct MemorySource {
    records: VecDeque<BgpRecord>,
}

impl MemorySource {
    /// Builds a source, sorting the records by time (stable, so equal-time
    /// records keep their relative order).
    pub fn new(mut records: Vec<BgpRecord>) -> Self {
        records.sort_by_key(|r| r.time);
        MemorySource { records: records.into() }
    }

    /// Remaining record count.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the source is exhausted.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl RecordSource for MemorySource {
    fn next_record(&mut self) -> Option<BgpRecord> {
        self.records.pop_front()
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.records.front().map(|r| r.time)
    }
}

/// A source decoding records from an MRT byte stream on the fly.
///
/// Unsupported MRT record types and RIB snapshot records are skipped (the
/// broker handles RIB dumps separately); hard decode errors terminate the
/// stream and are reported through [`MrtSource::take_error`].
pub struct MrtSource<R: Read> {
    reader: MrtReader<R>,
    collector: CollectorId,
    buffered: Option<BgpRecord>,
    error: Option<MrtError>,
}

impl<R: Read> MrtSource<R> {
    /// Wraps an MRT byte stream, attributing records to `collector`.
    pub fn new(reader: R, collector: CollectorId) -> Self {
        MrtSource { reader: MrtReader::new(reader), collector, buffered: None, error: None }
    }

    /// Returns (and clears) the terminal decode error, if any.
    pub fn take_error(&mut self) -> Option<MrtError> {
        self.error.take()
    }

    fn fill(&mut self) {
        while self.buffered.is_none() {
            match self.reader.next() {
                None => return,
                Some(Ok(rec)) => {
                    if let Some(r) = BgpRecord::from_mrt(&rec, self.collector) {
                        self.buffered = Some(r);
                    }
                }
                Some(Err(MrtError::UnsupportedRecord { .. })) => continue,
                Some(Err(e)) => {
                    self.error = Some(e);
                    return;
                }
            }
        }
    }
}

impl<R: Read> RecordSource for MrtSource<R> {
    fn next_record(&mut self) -> Option<BgpRecord> {
        self.fill();
        self.buffered.take()
    }

    fn peek_time(&mut self) -> Option<u64> {
        self.fill();
        self.buffered.as_ref().map(|r| r.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::PeerId;
    use crate::record::RecordPayload;
    use kepler_bgp::mrt::MrtWriter;
    use kepler_bgp::{AsPath, Asn, BgpUpdate, PathAttributes, Prefix};

    fn rec(time: u64) -> BgpRecord {
        BgpRecord {
            time,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(13030), addr: "192.0.2.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(184, 84, 242, 0, 24)],
                PathAttributes::with_path_and_communities(AsPath::from_sequence([13030]), vec![]),
            )),
        }
    }

    #[test]
    fn memory_source_sorts() {
        let mut s = MemorySource::new(vec![rec(5), rec(1), rec(3)]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.peek_time(), Some(1));
        let times: Vec<u64> = std::iter::from_fn(|| s.next_record()).map(|r| r.time).collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert!(s.is_empty());
    }

    #[test]
    fn mrt_source_decodes_stream() {
        let mut buf = Vec::new();
        {
            let mut w = MrtWriter::new(&mut buf);
            for t in [10u64, 20, 30] {
                w.write_record(&rec(t).to_mrt(Asn(6447), "192.0.2.254".parse().unwrap())).unwrap();
            }
        }
        let mut s = MrtSource::new(&buf[..], CollectorId(7));
        assert_eq!(s.peek_time(), Some(10));
        let recs: Vec<BgpRecord> = std::iter::from_fn(|| s.next_record()).collect();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].time, 30);
        assert_eq!(recs[0].collector, CollectorId(7));
        assert!(s.take_error().is_none());
    }
}

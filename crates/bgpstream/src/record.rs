//! The record/element data model.
//!
//! A [`BgpRecord`] corresponds to one archived MRT record; a [`BgpElem`] is
//! the per-prefix exploded view that analysis code consumes (BGPStream's
//! `BGPElem`). Kepler's monitoring module works exclusively on elements.

use crate::collector::{CollectorId, PeerId};
use kepler_bgp::mrt::{Bgp4mpMessage, MrtBody, MrtRecord};
use kepler_bgp::{BgpUpdate, PathAttributes, Prefix, StateChange};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Seconds since the Unix epoch (virtual time in simulations).
pub type Timestamp = u64;

/// Payload of a [`BgpRecord`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordPayload {
    /// A BGP UPDATE received from the peer.
    Update(BgpUpdate),
    /// A collector-peer session state change.
    State(StateChange),
}

/// One archived record from one collector peer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpRecord {
    /// Arrival time at the collector.
    pub time: Timestamp,
    /// The collector that archived the record.
    pub collector: CollectorId,
    /// The peer that sent it.
    pub peer: PeerId,
    /// The message itself.
    pub payload: RecordPayload,
}

/// What a [`BgpElem`] says about its prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElemKind {
    /// The prefix is announced with the given attributes (shared among all
    /// prefixes of the original update).
    Announce(Arc<PathAttributes>),
    /// The prefix is withdrawn.
    Withdraw,
}

/// Per-prefix exploded element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpElem {
    /// Arrival time at the collector.
    pub time: Timestamp,
    /// Source collector.
    pub collector: CollectorId,
    /// Source peer.
    pub peer: PeerId,
    /// The prefix this element describes.
    pub prefix: Prefix,
    /// Announcement or withdrawal.
    pub kind: ElemKind,
}

impl BgpElem {
    /// The attributes if this is an announcement.
    pub fn attrs(&self) -> Option<&PathAttributes> {
        match &self.kind {
            ElemKind::Announce(a) => Some(a),
            ElemKind::Withdraw => None,
        }
    }

    /// Whether this is a withdrawal.
    pub fn is_withdraw(&self) -> bool {
        matches!(self.kind, ElemKind::Withdraw)
    }
}

impl BgpRecord {
    /// Explodes the record into per-prefix elements. State changes yield no
    /// elements (they are consumed by the [`crate::gap::GapTracker`]).
    pub fn explode(&self) -> Vec<BgpElem> {
        match &self.payload {
            RecordPayload::State(_) => Vec::new(),
            RecordPayload::Update(u) => {
                let mut out = Vec::with_capacity(u.withdrawn.len() + u.announced.len());
                for p in &u.withdrawn {
                    out.push(BgpElem {
                        time: self.time,
                        collector: self.collector,
                        peer: self.peer,
                        prefix: *p,
                        kind: ElemKind::Withdraw,
                    });
                }
                if let Some(attrs) = &u.attrs {
                    let attrs = Arc::new(attrs.clone());
                    for p in &u.announced {
                        out.push(BgpElem {
                            time: self.time,
                            collector: self.collector,
                            peer: self.peer,
                            prefix: *p,
                            kind: ElemKind::Announce(Arc::clone(&attrs)),
                        });
                    }
                }
                out
            }
        }
    }

    /// Converts a decoded MRT record into a [`BgpRecord`], if it is a
    /// message or state change (RIB records are handled separately).
    pub fn from_mrt(rec: &MrtRecord, collector: CollectorId) -> Option<BgpRecord> {
        match &rec.body {
            MrtBody::Message(m) => Some(BgpRecord {
                time: rec.timestamp as Timestamp,
                collector,
                peer: PeerId { asn: m.peer_as, addr: m.peer_ip },
                payload: RecordPayload::Update(m.update.clone()),
            }),
            MrtBody::StateChange(s) => Some(BgpRecord {
                time: rec.timestamp as Timestamp,
                collector,
                peer: PeerId { asn: s.peer_as, addr: s.peer_ip },
                payload: RecordPayload::State(s.change),
            }),
            _ => None,
        }
    }

    /// Converts back to an MRT record for archiving (state or message).
    pub fn to_mrt(&self, local_as: kepler_bgp::Asn, local_ip: std::net::IpAddr) -> MrtRecord {
        let body = match &self.payload {
            RecordPayload::Update(u) => MrtBody::Message(Bgp4mpMessage {
                peer_as: self.peer.asn,
                local_as,
                interface_index: 0,
                peer_ip: self.peer.addr,
                local_ip,
                update: u.clone(),
            }),
            RecordPayload::State(s) => MrtBody::StateChange(kepler_bgp::mrt::Bgp4mpStateChange {
                peer_as: self.peer.asn,
                local_as,
                interface_index: 0,
                peer_ip: self.peer.addr,
                local_ip,
                change: *s,
            }),
        };
        MrtRecord { timestamp: self.time as u32, body }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::{AsPath, Asn, Community};

    fn rec(update: BgpUpdate) -> BgpRecord {
        BgpRecord {
            time: 100,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(13030), addr: "192.0.2.1".parse().unwrap() },
            payload: RecordPayload::Update(update),
        }
    }

    #[test]
    fn explode_mixed_update() {
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([13030, 20940]),
            vec![Community::new(13030, 51904)],
        );
        let u = BgpUpdate {
            withdrawn: vec![Prefix::v4(100, 1, 0, 0, 16)],
            attrs: Some(attrs),
            announced: vec![Prefix::v4(184, 84, 242, 0, 24), Prefix::v4(2, 21, 67, 0, 24)],
        };
        let elems = rec(u).explode();
        assert_eq!(elems.len(), 3);
        assert!(elems[0].is_withdraw());
        assert!(elems[1].attrs().is_some());
        // Attribute sharing: the two announce elems point at the same bundle.
        let (a1, a2) = match (&elems[1].kind, &elems[2].kind) {
            (ElemKind::Announce(a), ElemKind::Announce(b)) => (a, b),
            _ => panic!("expected announces"),
        };
        assert!(Arc::ptr_eq(a1, a2));
    }

    #[test]
    fn state_records_yield_no_elems() {
        let r = BgpRecord {
            time: 5,
            collector: CollectorId(1),
            peer: PeerId { asn: Asn(1), addr: "192.0.2.9".parse().unwrap() },
            payload: RecordPayload::State(StateChange {
                old: kepler_bgp::PeerState::Established,
                new: kepler_bgp::PeerState::Idle,
            }),
        };
        assert!(r.explode().is_empty());
    }

    #[test]
    fn mrt_conversion_roundtrip() {
        let attrs =
            PathAttributes::with_path_and_communities(AsPath::from_sequence([13030]), vec![]);
        let r = rec(BgpUpdate::announce(vec![Prefix::v4(184, 84, 242, 0, 24)], attrs));
        let mrt = r.to_mrt(Asn(6447), "192.0.2.254".parse().unwrap());
        let back = BgpRecord::from_mrt(&mrt, CollectorId(0)).unwrap();
        assert_eq!(back, r);
    }
}

//! Per-collector-session record batching for parallel ingest.
//!
//! The parallel ingest pipeline (`kepler-core::ingest`) shards the decode
//! stage by collector session: every record of one `(collector, peer)`
//! feed goes to the same worker, so each route's event order (a route is a
//! `(collector, peer, prefix)` triple) is preserved inside one worker and
//! per-session state (the gap tracker) stays worker-local. This module
//! owns the routing rule and the per-shard accumulation buffers; the
//! coordinator layers its own order bookkeeping on top.

use crate::collector::{CollectorId, PeerId};
use crate::record::BgpRecord;
use std::net::IpAddr;

/// Deterministic dispatch key of a collector session. All records of one
/// `(collector, peer)` pair map to the same key on every run — the
/// parallel ingest remap protocol depends on it.
pub fn session_key(collector: CollectorId, peer: &PeerId) -> u64 {
    let mut x = (collector.0 as u64) << 32 | peer.asn.0 as u64;
    x = mix(x);
    match peer.addr {
        IpAddr::V4(v4) => x = mix(x ^ u32::from(v4) as u64),
        IpAddr::V6(v6) => {
            let b = u128::from(v6);
            x = mix(x ^ b as u64);
            x = mix(x ^ (b >> 64) as u64);
        }
    }
    x
}

/// splitmix64 finalizer — cheap, well-mixed, dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Accumulates records into per-shard batches, routing by
/// [`session_key`].
#[derive(Debug)]
pub struct RecordBatcher {
    shards: usize,
    batch_size: usize,
    buffers: Vec<Vec<BgpRecord>>,
}

impl RecordBatcher {
    /// A batcher for `shards` workers emitting batches of `batch_size`.
    pub fn new(shards: usize, batch_size: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(batch_size >= 1, "need a positive batch size");
        RecordBatcher { shards, batch_size, buffers: vec![Vec::new(); shards] }
    }

    /// Number of shards records are routed across.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard the record's collector session is pinned to.
    pub fn shard_of(&self, rec: &BgpRecord) -> usize {
        (session_key(rec.collector, &rec.peer) % self.shards as u64) as usize
    }

    /// Buffers one record; returns a full batch when the record's shard
    /// buffer reaches the batch size.
    pub fn push(&mut self, shard: usize, rec: BgpRecord) -> Option<Vec<BgpRecord>> {
        let buf = &mut self.buffers[shard];
        buf.push(rec);
        if buf.len() >= self.batch_size {
            Some(std::mem::replace(buf, Vec::with_capacity(self.batch_size)))
        } else {
            None
        }
    }

    /// Records currently buffered (unsent) for a shard.
    pub fn buffered(&self, shard: usize) -> usize {
        self.buffers[shard].len()
    }

    /// Takes the partial batch of one shard (possibly empty).
    pub fn take(&mut self, shard: usize) -> Vec<BgpRecord> {
        std::mem::take(&mut self.buffers[shard])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordPayload;
    use kepler_bgp::{Asn, BgpUpdate, PathAttributes, Prefix};

    fn rec(collector: u16, peer_asn: u32) -> BgpRecord {
        BgpRecord {
            time: 1,
            collector: CollectorId(collector),
            peer: PeerId { asn: Asn(peer_asn), addr: "10.0.0.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(10, 0, 0, 0, 24)],
                PathAttributes::with_path_and_communities(
                    kepler_bgp::AsPath::from_sequence([1, 2]),
                    vec![],
                ),
            )),
        }
    }

    #[test]
    fn same_session_same_shard() {
        let b = RecordBatcher::new(8, 4);
        for c in 0..20u16 {
            let r = rec(c, 100);
            assert_eq!(b.shard_of(&r), b.shard_of(&r.clone()));
        }
    }

    #[test]
    fn sessions_spread_across_shards() {
        let b = RecordBatcher::new(8, 4);
        let shards: std::collections::HashSet<usize> =
            (0..64u16).map(|c| b.shard_of(&rec(c, 100 + c as u32))).collect();
        assert!(shards.len() >= 6, "64 sessions hit only {} of 8 shards", shards.len());
    }

    #[test]
    fn batches_emit_at_capacity_and_drain() {
        let mut b = RecordBatcher::new(2, 3);
        let mut emitted = Vec::new();
        for i in 0..7 {
            let r = rec(0, 100);
            let s = b.shard_of(&r);
            if let Some(batch) = b.push(s, r) {
                emitted.push((i, batch.len()));
            }
        }
        assert_eq!(emitted, vec![(2, 3), (5, 3)]);
        let s = b.shard_of(&rec(0, 100));
        assert_eq!(b.buffered(s), 1);
        assert_eq!(b.take(s).len(), 1);
        assert_eq!(b.buffered(s), 0);
    }

    #[test]
    fn v6_peers_key_deterministically() {
        let peer = PeerId { asn: Asn(7), addr: "2001:db8::9".parse().unwrap() };
        assert_eq!(session_key(CollectorId(3), &peer), session_key(CollectorId(3), &peer));
        let other = PeerId { asn: Asn(7), addr: "2001:db8::a".parse().unwrap() };
        assert_ne!(session_key(CollectorId(3), &peer), session_key(CollectorId(3), &other));
    }
}

//! Collector feed-gap tracking.
//!
//! Paper §4.2: "we check for BGP State messages to detect potential
//! disruptions in the BGP feed that can cause gaps in our BGP stream and
//! disregard updates due to it." A collector losing a peer session looks
//! exactly like every route of that peer being withdrawn — without this
//! tracker, Kepler would raise a storm of phantom outage signals.

use crate::collector::{CollectorId, PeerId};
use crate::record::{BgpRecord, RecordPayload, Timestamp};
use std::collections::HashMap;

/// Per-(collector, peer) session health derived from state messages.
#[derive(Debug, Clone, Default)]
pub struct GapTracker {
    /// `true` while the session is down; absent means assumed-healthy.
    down: HashMap<(CollectorId, PeerId), bool>,
    /// Time until which a freshly-recovered feed is still quarantined.
    quarantine_until: HashMap<(CollectorId, PeerId), Timestamp>,
    /// How long after session re-establishment a feed stays quarantined
    /// (routes are re-announced in bulk and look like churn).
    pub quarantine_secs: u64,
}

impl GapTracker {
    /// Creates a tracker with the given post-recovery quarantine.
    pub fn new(quarantine_secs: u64) -> Self {
        GapTracker { quarantine_secs, ..Default::default() }
    }

    /// Feeds one record through the tracker (state records update session
    /// health; updates are ignored).
    pub fn observe(&mut self, rec: &BgpRecord) {
        if let RecordPayload::State(change) = &rec.payload {
            let key = (rec.collector, rec.peer);
            if change.is_session_loss() {
                self.down.insert(key, true);
            } else if change.is_session_up() {
                self.down.insert(key, false);
                self.quarantine_until.insert(key, rec.time + self.quarantine_secs);
            }
        }
    }

    /// Whether elements from this (collector, peer) at time `t` should be
    /// trusted for outage analysis.
    pub fn is_usable(&self, collector: CollectorId, peer: PeerId, t: Timestamp) -> bool {
        let key = (collector, peer);
        if self.down.get(&key).copied().unwrap_or(false) {
            return false;
        }
        match self.quarantine_until.get(&key) {
            Some(&until) => t >= until,
            None => true,
        }
    }

    /// Number of sessions currently known to be down.
    pub fn down_count(&self) -> usize {
        self.down.values().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::{Asn, PeerState, StateChange};

    fn state(time: u64, old: PeerState, new: PeerState) -> BgpRecord {
        BgpRecord {
            time,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(5), addr: "192.0.2.5".parse().unwrap() },
            payload: RecordPayload::State(StateChange { old, new }),
        }
    }

    #[test]
    fn session_loss_marks_unusable() {
        let mut g = GapTracker::new(120);
        let peer = PeerId { asn: Asn(5), addr: "192.0.2.5".parse().unwrap() };
        assert!(g.is_usable(CollectorId(0), peer, 10));
        g.observe(&state(100, PeerState::Established, PeerState::Idle));
        assert!(!g.is_usable(CollectorId(0), peer, 150));
        assert_eq!(g.down_count(), 1);
    }

    #[test]
    fn recovery_quarantines_then_heals() {
        let mut g = GapTracker::new(120);
        let peer = PeerId { asn: Asn(5), addr: "192.0.2.5".parse().unwrap() };
        g.observe(&state(100, PeerState::Established, PeerState::Idle));
        g.observe(&state(200, PeerState::OpenConfirm, PeerState::Established));
        assert!(!g.is_usable(CollectorId(0), peer, 250), "still quarantined");
        assert!(g.is_usable(CollectorId(0), peer, 320));
        assert_eq!(g.down_count(), 0);
    }

    #[test]
    fn other_peers_unaffected() {
        let mut g = GapTracker::new(120);
        g.observe(&state(100, PeerState::Established, PeerState::Idle));
        let other = PeerId { asn: Asn(6), addr: "192.0.2.6".parse().unwrap() };
        assert!(g.is_usable(CollectorId(0), other, 150));
        assert!(g.is_usable(
            CollectorId(1),
            PeerId { asn: Asn(5), addr: "192.0.2.5".parse().unwrap() },
            150
        ));
    }
}

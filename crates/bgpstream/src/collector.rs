//! Collector and peer identities.

use kepler_bgp::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::IpAddr;

/// A route collector (e.g. `rrc00`, `route-views2`), identified by a dense
/// numeric id assigned at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CollectorId(pub u16);

impl fmt::Display for CollectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "collector#{}", self.0)
    }
}

/// A collector peer: the (ASN, address) pair feeding a collector. The same
/// AS may feed several collectors from different routers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PeerId {
    /// The peer's ASN.
    pub asn: Asn,
    /// The peer's BGP session address.
    pub addr: IpAddr,
}

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.asn, self.addr)
    }
}

/// A registry assigning dense [`CollectorId`]s to collector names.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CollectorRegistry {
    names: Vec<String>,
}

impl CollectorRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a collector by name.
    pub fn register(&mut self, name: &str) -> CollectorId {
        if let Some(pos) = self.names.iter().position(|n| n == name) {
            return CollectorId(pos as u16);
        }
        self.names.push(name.to_string());
        CollectorId((self.names.len() - 1) as u16)
    }

    /// Resolves an id back to its name.
    pub fn name(&self, id: CollectorId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of registered collectors.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no collector is registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_idempotent() {
        let mut r = CollectorRegistry::new();
        let a = r.register("rrc00");
        let b = r.register("route-views2");
        assert_ne!(a, b);
        assert_eq!(r.register("rrc00"), a);
        assert_eq!(r.name(a), Some("rrc00"));
        assert_eq!(r.name(CollectorId(99)), None);
        assert_eq!(r.len(), 2);
    }
}

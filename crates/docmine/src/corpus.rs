//! Corpus rendering: turns ground-truth schemes into the messy natural-
//! language documentation the miner has to cope with.
//!
//! This is the substitution for the paper's web scraper: instead of
//! fetching IRR `remarks:` blocks and support pages, we *render* them from
//! ground truth through noisy templates. The generated text exhibits the
//! phenomena that make real mining hard: mixed identifier styles, action
//! (outbound) lines sharing the page with location lines, boilerplate
//! chatter, and undocumented operators that simply have no page.

use crate::scheme::{CommunityScheme, DocStyle, SchemeTarget};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scraped document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The operator it documents.
    pub asn: kepler_bgp::Asn,
    /// Where it came from.
    pub style: DocStyle,
    /// Raw text, one statement per line.
    pub text: String,
}

const PASSIVE_TEMPLATES: &[&str] = &[
    "{c} - routes received at {w}",
    "{c} routes learned at {w}",
    "{c} - received from public peer at {w}",
    "{c} tagged on ingress at {w}",
    "{c} - prefixes exchanged at {w}",
    "{c} accepted at {w}",
];

const ACTION_TEMPLATES: &[&str] = &[
    "{c} - announce to customers only",
    "{c} do not advertise to peers",
    "{c} - prepend 2x to all peers",
    "{c} blackhole",
    "{c} - set MED to 100",
    "{c} suppress in region",
];

const CHATTER: &[&str] = &[
    "----------------------------------------",
    "For peering requests contact noc@example.net",
    "Scheme subject to change without notice",
    "See our looking glass for details",
];

fn target_phrase(t: &SchemeTarget) -> &str {
    match t {
        SchemeTarget::City { ident, .. } => ident,
        SchemeTarget::Facility { name, .. } => name,
        SchemeTarget::Ixp { name, .. } => name,
    }
}

/// Renders one scheme into a document. Returns `None` for undocumented
/// operators.
pub fn render_scheme(scheme: &CommunityScheme, rng: &mut StdRng) -> Option<Document> {
    if !scheme.documented {
        return None;
    }
    let prefix = match scheme.style {
        DocStyle::IrrRemarks => "remarks: ",
        DocStyle::WebPage => "",
    };
    let mut lines: Vec<String> = Vec::new();
    lines.push(format!("{prefix}AS{} BGP community scheme", scheme.asn.0));
    lines.push(format!("{prefix}{}", CHATTER[0]));
    for entry in &scheme.entries {
        let template = PASSIVE_TEMPLATES.choose(rng).expect("non-empty templates");
        let c = format!("{}:{}", scheme.asn.0, entry.value);
        let line = template.replace("{c}", &c).replace("{w}", target_phrase(&entry.target));
        lines.push(format!("{prefix}{line}"));
        if rng.gen_bool(0.15) {
            lines.push(format!("{prefix}{}", CHATTER.choose(rng).expect("chatter")));
        }
    }
    for value in &scheme.action_values {
        let template = ACTION_TEMPLATES.choose(rng).expect("non-empty templates");
        let c = format!("{}:{}", scheme.asn.0, value);
        lines.push(format!("{prefix}{}", template.replace("{c}", &c)));
    }
    lines.push(format!("{prefix}{}", CHATTER[1]));
    Some(Document { asn: scheme.asn, style: scheme.style, text: lines.join("\n") })
}

/// Renders a full corpus deterministically from `seed`.
pub fn render_corpus(schemes: &[CommunityScheme], seed: u64) -> Vec<Document> {
    let mut rng = StdRng::seed_from_u64(seed);
    schemes.iter().filter_map(|s| render_scheme(s, &mut rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SchemeEntry;
    use kepler_bgp::Asn;
    use kepler_topology::{CityId, FacilityId};

    fn scheme(documented: bool) -> CommunityScheme {
        CommunityScheme {
            asn: Asn(13030),
            entries: vec![
                SchemeEntry {
                    value: 51904,
                    target: SchemeTarget::Facility {
                        name: "Coresite LAX1".into(),
                        id: FacilityId(3),
                    },
                },
                SchemeEntry {
                    value: 100,
                    target: SchemeTarget::City { ident: "NYC".into(), city: CityId(0) },
                },
            ],
            action_values: vec![9003],
            documented,
            style: DocStyle::IrrRemarks,
        }
    }

    #[test]
    fn renders_documented_scheme_with_all_values() {
        let docs = render_corpus(&[scheme(true)], 1);
        assert_eq!(docs.len(), 1);
        let text = &docs[0].text;
        assert!(text.contains("13030:51904"), "{text}");
        assert!(text.contains("Coresite LAX1"));
        assert!(text.contains("13030:100"));
        assert!(text.contains("13030:9003"));
        assert!(text.lines().all(|l| l.starts_with("remarks: ")));
    }

    #[test]
    fn undocumented_schemes_produce_nothing() {
        assert!(render_corpus(&[scheme(false)], 1).is_empty());
    }

    #[test]
    fn rendering_is_deterministic() {
        let a = render_corpus(&[scheme(true)], 42);
        let b = render_corpus(&[scheme(true)], 42);
        assert_eq!(a, b);
        let c = render_corpus(&[scheme(true)], 43);
        // Different seeds usually pick different templates; text may differ.
        // (Not asserting inequality — both must at least parse identically.)
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn webpage_style_has_no_remarks_prefix() {
        let mut s = scheme(true);
        s.style = DocStyle::WebPage;
        let docs = render_corpus(&[s], 7);
        assert!(docs[0].text.lines().all(|l| !l.starts_with("remarks:")));
    }
}

//! The mined community dictionary and the mining pipeline itself.

use crate::corpus::Document;
use crate::extract::{extract_communities, strip_communities};
use crate::ner::{Entity, EntityRecognizer};
use crate::pos::{classify, Voice};
use crate::scheme::{CommunityScheme, SchemeTarget};
use kepler_bgp::{Asn, Community};
use kepler_topology::{CityGazetteer, CityId, ColocationMap, FacilityId, IxpId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// What a dictionary entry geolocates (paper §3.2: "we only keep
/// communities that tag three types of Named Entities: (i) city-level
/// locations, (ii) IXPs, and (iii) colocation facilities").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LocationTag {
    /// City-granularity ingress.
    City(CityId),
    /// Facility-granularity ingress.
    Facility(FacilityId),
    /// IXP-granularity ingress.
    Ixp(IxpId),
}

/// One dictionary entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DictEntry {
    /// The community value.
    pub community: Community,
    /// Its location meaning.
    pub tag: LocationTag,
}

/// Headline statistics, mirroring the paper's §3.2 numbers (5,284
/// communities by 468 ASes and 48 route servers; 288 cities, 172 IXPs,
/// 103 facilities).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DictionaryStats {
    /// Location communities in the dictionary.
    pub communities: usize,
    /// Distinct tagging ASes.
    pub ases: usize,
    /// Route servers whose redistribution communities are known.
    pub route_servers: usize,
    /// Distinct cities covered.
    pub cities: usize,
    /// Distinct countries covered.
    pub countries: usize,
    /// Distinct IXPs covered (via IXP tags or route servers).
    pub ixps: usize,
    /// Distinct facilities covered.
    pub facilities: usize,
}

/// The community dictionary: community value → location meaning, plus IXP
/// route-server redistribution communities.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CommunityDictionary {
    entries: HashMap<Community, LocationTag>,
    route_servers: HashMap<u16, IxpId>,
}

impl CommunityDictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one entry (last write wins, as in a re-mined dictionary).
    pub fn insert(&mut self, community: Community, tag: LocationTag) {
        self.entries.insert(community, tag);
    }

    /// Registers an IXP route server: any community whose top 16 bits are
    /// the route server's ASN marks the route as having traversed the IXP.
    pub fn add_route_server(&mut self, rs_asn16: u16, ixp: IxpId) {
        self.route_servers.insert(rs_asn16, ixp);
    }

    /// Imports all route servers known to the colocation map.
    pub fn add_route_servers_from(&mut self, map: &ColocationMap) {
        for ixp in map.ixps() {
            if let Some(rs) = ixp.route_server_asn {
                if rs.is_16bit() {
                    self.add_route_server(rs.0 as u16, ixp.id);
                }
            }
        }
    }

    /// Looks up the explicit location entry for a community.
    pub fn lookup(&self, community: Community) -> Option<LocationTag> {
        self.entries.get(&community).copied()
    }

    /// Looks up a community considering route-server semantics too: an
    /// unknown value from a registered route-server ASN still reveals the
    /// IXP that redistributed the route.
    pub fn locate(&self, community: Community) -> Option<LocationTag> {
        self.lookup(community).or_else(|| {
            self.route_servers.get(&community.asn16()).map(|&ixp| LocationTag::Ixp(ixp))
        })
    }

    /// Whether the dictionary covers any community of `asn16`.
    pub fn covers_asn(&self, asn16: u16) -> bool {
        self.entries.keys().any(|c| c.asn16() == asn16) || self.route_servers.contains_key(&asn16)
    }

    /// Iterates all explicit entries.
    pub fn entries(&self) -> impl Iterator<Item = DictEntry> + '_ {
        self.entries.iter().map(|(&community, &tag)| DictEntry { community, tag })
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Registered route servers.
    pub fn route_servers(&self) -> impl Iterator<Item = (u16, IxpId)> + '_ {
        self.route_servers.iter().map(|(&a, &x)| (a, x))
    }

    /// Headline statistics (countries derived through the gazetteer).
    pub fn stats(&self, gazetteer: &CityGazetteer, map: &ColocationMap) -> DictionaryStats {
        let mut ases: BTreeSet<u16> = BTreeSet::new();
        let mut cities: BTreeSet<CityId> = BTreeSet::new();
        let mut countries: BTreeSet<String> = BTreeSet::new();
        let mut ixps: BTreeSet<IxpId> = BTreeSet::new();
        let mut facilities: BTreeSet<FacilityId> = BTreeSet::new();
        for (c, tag) in &self.entries {
            ases.insert(c.asn16());
            match tag {
                LocationTag::City(city) => {
                    cities.insert(*city);
                    if let Some(gc) = gazetteer.by_index(city.0 as usize) {
                        countries.insert(gc.country.to_string());
                    }
                }
                LocationTag::Facility(f) => {
                    facilities.insert(*f);
                    if let Some(fac) = map.facility(*f) {
                        cities.insert(fac.city);
                        countries.insert(fac.country.clone());
                    }
                }
                LocationTag::Ixp(x) => {
                    ixps.insert(*x);
                    if let Some(ixp) = map.ixp(*x) {
                        cities.insert(ixp.city);
                        if let Some(gc) = gazetteer.by_index(ixp.city.0 as usize) {
                            countries.insert(gc.country.to_string());
                        }
                    }
                }
            }
        }
        for (_, ixp) in self.route_servers.iter() {
            ixps.insert(*ixp);
        }
        DictionaryStats {
            communities: self.entries.len(),
            ases: ases.len(),
            route_servers: self.route_servers.len(),
            cities: cities.len(),
            countries: countries.len(),
            ixps: ixps.len(),
            facilities: facilities.len(),
        }
    }
}

/// The mining pipeline: documents → dictionary.
pub struct DictionaryMiner {
    recognizer: EntityRecognizer,
}

/// Counters describing one mining run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MiningStats {
    /// Lines scanned.
    pub lines: usize,
    /// Lines dropped as outbound/action documentation.
    pub outbound_dropped: usize,
    /// Lines with a community but no recognizable entity.
    pub unrecognized: usize,
    /// Entries admitted to the dictionary.
    pub admitted: usize,
    /// Communities whose top 16 bits did not match the documenting AS.
    pub foreign_asn_dropped: usize,
}

impl DictionaryMiner {
    /// Builds a miner whose entity tables come from the colocation map.
    pub fn new(map: &ColocationMap, gazetteer: &CityGazetteer) -> Self {
        DictionaryMiner { recognizer: EntityRecognizer::from_colomap(map, gazetteer) }
    }

    /// Mines a corpus into a dictionary.
    pub fn mine(&self, docs: &[Document]) -> (CommunityDictionary, MiningStats) {
        let mut dict = CommunityDictionary::new();
        let mut stats = MiningStats::default();
        for doc in docs {
            if !doc.asn.is_16bit() {
                continue;
            }
            let doc_asn16 = doc.asn.0 as u16;
            for raw_line in doc.text.lines() {
                let line = raw_line.strip_prefix("remarks:").unwrap_or(raw_line).trim();
                stats.lines += 1;
                let found = extract_communities(line);
                if found.is_empty() {
                    continue;
                }
                match classify(line) {
                    Voice::Outbound => {
                        stats.outbound_dropped += 1;
                        continue;
                    }
                    Voice::Inbound | Voice::Unknown => {}
                }
                let Some(entity) = self.recognizer.recognize(&strip_communities(line)) else {
                    stats.unrecognized += 1;
                    continue;
                };
                let tag = match entity {
                    Entity::Facility(f) => LocationTag::Facility(f),
                    Entity::Ixp(x) => LocationTag::Ixp(x),
                    Entity::City(idx) => LocationTag::City(CityId(idx as u32)),
                };
                for e in found {
                    if e.community.asn16() != doc_asn16 {
                        stats.foreign_asn_dropped += 1;
                        continue;
                    }
                    dict.insert(e.community, tag);
                    stats.admitted += 1;
                }
            }
        }
        (dict, stats)
    }
}

/// Outcome of validating a mined dictionary against ground truth
/// (paper §3.2: the manual-vs-automatic dictionary comparison found
/// neither false positives nor false negatives on the top-25 ASes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// Mined entries matching ground truth exactly.
    pub true_positives: usize,
    /// Mined entries whose tag disagrees with ground truth.
    pub wrong_tag: usize,
    /// Mined entries with no ground-truth counterpart.
    pub false_positives: usize,
    /// Documented ground-truth entries the miner missed.
    pub false_negatives: usize,
}

impl ValidationReport {
    /// Precision over mined entries.
    pub fn precision(&self) -> f64 {
        let mined = self.true_positives + self.wrong_tag + self.false_positives;
        if mined == 0 {
            return 1.0;
        }
        self.true_positives as f64 / mined as f64
    }

    /// Recall over documented ground truth.
    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives + self.wrong_tag;
        if truth == 0 {
            return 1.0;
        }
        self.true_positives as f64 / truth as f64
    }
}

/// Validates `dict` against ground-truth schemes.
pub fn validate(dict: &CommunityDictionary, schemes: &[CommunityScheme]) -> ValidationReport {
    let mut report = ValidationReport::default();
    let mut truth: HashMap<Community, LocationTag> = HashMap::new();
    for s in schemes {
        if !s.documented || !s.asn.is_16bit() {
            continue;
        }
        for (c, t) in s.communities() {
            let tag = match t {
                SchemeTarget::City { city, .. } => LocationTag::City(*city),
                SchemeTarget::Facility { id, .. } => LocationTag::Facility(*id),
                SchemeTarget::Ixp { id, .. } => LocationTag::Ixp(*id),
            };
            truth.insert(c, tag);
        }
    }
    for entry in dict.entries() {
        match truth.get(&entry.community) {
            Some(t) if *t == entry.tag => report.true_positives += 1,
            Some(_) => report.wrong_tag += 1,
            None => report.false_positives += 1,
        }
    }
    for c in truth.keys() {
        if dict.lookup(*c).is_none() {
            report.false_negatives += 1;
        }
    }
    report
}

/// Scheme-driven ground-truth dictionary: what a perfect miner would
/// produce. Used by ablations and by the simulator's own tagging layer.
pub fn dictionary_from_schemes(
    schemes: &[CommunityScheme],
    include_undocumented: bool,
) -> CommunityDictionary {
    let mut dict = CommunityDictionary::new();
    for s in schemes {
        if !s.asn.is_16bit() || (!s.documented && !include_undocumented) {
            continue;
        }
        for (c, t) in s.communities() {
            let tag = match t {
                SchemeTarget::City { city, .. } => LocationTag::City(*city),
                SchemeTarget::Facility { id, .. } => LocationTag::Facility(*id),
                SchemeTarget::Ixp { id, .. } => LocationTag::Ixp(*id),
            };
            dict.insert(c, tag);
        }
    }
    dict
}

/// Convenience: the ASN type used across the crate.
pub type OperatorAsn = Asn;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::render_corpus;
    use crate::scheme::{DocStyle, SchemeEntry};
    use kepler_topology::entities::{Facility, Ixp};
    use kepler_topology::{Continent, GeoPoint};

    fn world() -> (ColocationMap, CityGazetteer) {
        let g = CityGazetteer::new();
        let london = g.geocode("London").unwrap() as u32;
        let la = g.geocode("Los Angeles").unwrap() as u32;
        let mut m = ColocationMap::new();
        m.add_facility(Facility {
            id: FacilityId(0),
            name: "Coresite LAX1".into(),
            address: "624 S Grand Ave".into(),
            postcode: "90017".into(),
            country: "US".into(),
            city: CityId(la),
            continent: Continent::NorthAmerica,
            point: GeoPoint::new(34.04, -118.25),
            operator: "Coresite".into(),
        });
        m.add_ixp(Ixp {
            id: IxpId(0),
            name: "LINX".into(),
            url: "linx.net".into(),
            city: CityId(london),
            continent: Continent::Europe,
            route_server_asn: Some(Asn(8714)),
        });
        (m, g)
    }

    fn scheme(g: &CityGazetteer) -> CommunityScheme {
        let london = g.geocode("London").unwrap() as u32;
        CommunityScheme {
            asn: Asn(13030),
            entries: vec![
                SchemeEntry {
                    value: 51904,
                    target: SchemeTarget::Facility {
                        name: "Coresite LAX1".into(),
                        id: FacilityId(0),
                    },
                },
                SchemeEntry {
                    value: 4006,
                    target: SchemeTarget::Ixp { name: "LINX".into(), id: IxpId(0) },
                },
                SchemeEntry {
                    value: 51702,
                    target: SchemeTarget::City { ident: "London".into(), city: CityId(london) },
                },
            ],
            action_values: vec![9003, 666],
            documented: true,
            style: DocStyle::IrrRemarks,
        }
    }

    #[test]
    fn end_to_end_mining_recovers_scheme() {
        let (map, g) = world();
        let schemes = vec![scheme(&g)];
        let docs = render_corpus(&schemes, 11);
        let miner = DictionaryMiner::new(&map, &g);
        let (dict, stats) = miner.mine(&docs);
        assert_eq!(dict.len(), 3, "all three location values mined: {stats:?}");
        assert_eq!(
            dict.lookup(Community::new(13030, 51904)),
            Some(LocationTag::Facility(FacilityId(0)))
        );
        assert_eq!(dict.lookup(Community::new(13030, 4006)), Some(LocationTag::Ixp(IxpId(0))));
        assert!(matches!(dict.lookup(Community::new(13030, 51702)), Some(LocationTag::City(_))));
        // Action values must not leak in.
        assert_eq!(dict.lookup(Community::new(13030, 9003)), None);
        assert!(stats.outbound_dropped >= 1);
        let report = validate(&dict, &schemes);
        assert_eq!(report.false_positives, 0);
        assert_eq!(report.false_negatives, 0);
        assert_eq!(report.wrong_tag, 0);
        assert!((report.precision() - 1.0).abs() < 1e-9);
        assert!((report.recall() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn route_server_semantics() {
        let (map, g) = world();
        let mut dict = CommunityDictionary::new();
        dict.add_route_servers_from(&map);
        assert_eq!(dict.locate(Community::new(8714, 12345)), Some(LocationTag::Ixp(IxpId(0))));
        assert_eq!(dict.lookup(Community::new(8714, 12345)), None, "not an explicit entry");
        assert!(dict.covers_asn(8714));
        let _ = g;
    }

    #[test]
    fn stats_count_distinct_entities() {
        let (map, g) = world();
        let schemes = vec![scheme(&g)];
        let dict = dictionary_from_schemes(&schemes, false);
        let stats = dict.stats(&g, &map);
        assert_eq!(stats.communities, 3);
        assert_eq!(stats.ases, 1);
        assert_eq!(stats.facilities, 1);
        assert_eq!(stats.ixps, 1);
        assert!(stats.cities >= 2, "London + LA");
        assert!(stats.countries >= 2);
    }

    #[test]
    fn undocumented_schemes_are_invisible_to_mining_but_available_as_truth() {
        let (_, g) = world();
        let mut s = scheme(&g);
        s.documented = false;
        let docs = render_corpus(&[s.clone()], 3);
        assert!(docs.is_empty());
        let truth = dictionary_from_schemes(&[s], true);
        assert_eq!(truth.len(), 3);
    }
}

//! Community-value extraction from raw documentation text.
//!
//! The paper identifies "sub-strings that include community values using
//! regular expression matching". This module implements the equivalent
//! scanner by hand: it finds `<asn>:<value>` tokens with both halves in
//! 16-bit range, tolerating surrounding punctuation.

use kepler_bgp::Community;

/// A community found in a line of text, with the span consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extracted {
    /// The parsed community.
    pub community: Community,
    /// Byte offset where the token starts.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Scans one line for `X:Y` community tokens.
pub fn extract_communities(line: &str) -> Vec<Extracted> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        // Token must not be glued to a preceding digit/':' (e.g. IPv6-ish).
        if i > 0 && (bytes[i - 1].is_ascii_digit() || bytes[i - 1] == b':' || bytes[i - 1] == b'.')
        {
            i += 1;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            continue;
        }
        let colon = i;
        i += 1;
        let vstart = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == vstart {
            continue;
        }
        // Reject if more digits/colons follow immediately (large communities
        // or timestamps like 12:30:05).
        if i < bytes.len() && (bytes[i] == b':' || bytes[i] == b'.') {
            continue;
        }
        let asn_txt = &line[start..colon];
        let val_txt = &line[vstart..i];
        if asn_txt.len() > 5 || val_txt.len() > 5 {
            continue;
        }
        if let (Ok(a), Ok(v)) = (asn_txt.parse::<u32>(), val_txt.parse::<u32>()) {
            if a <= u16::MAX as u32 && v <= u16::MAX as u32 {
                out.push(Extracted {
                    community: Community::new(a as u16, v as u16),
                    start,
                    end: i,
                });
            }
        }
    }
    out
}

/// The free text of a line with all community tokens removed — the part
/// handed to the entity recognizer.
pub fn strip_communities(line: &str) -> String {
    let spans = extract_communities(line);
    let mut out = String::with_capacity(line.len());
    let mut pos = 0;
    for s in &spans {
        out.push_str(&line[pos..s.start]);
        pos = s.end;
    }
    out.push_str(&line[pos..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_communities() {
        let found = extract_communities("13030:51904 - routes received at Coresite LAX1");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].community, Community::new(13030, 51904));
        assert_eq!("13030:51904", "13030:51904");
    }

    #[test]
    fn finds_multiple_per_line() {
        let found = extract_communities("use 2914:410 or 2914:420 for Europe");
        assert_eq!(found.len(), 2);
        assert_eq!(found[1].community, Community::new(2914, 420));
    }

    #[test]
    fn rejects_out_of_range_and_triplets() {
        assert!(extract_communities("70000:1 is not a community").is_empty());
        assert!(extract_communities("1:70000 is not one either").is_empty());
        assert!(extract_communities("large 196615:100:200 ignored").is_empty());
        assert!(extract_communities("time 12:30:05 ignored").is_empty());
    }

    #[test]
    fn tolerates_punctuation() {
        let found = extract_communities("(13030:4006), received via LINX.");
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].community, Community::new(13030, 4006));
    }

    #[test]
    fn strip_removes_only_community_tokens() {
        let s = strip_communities("13030:51702 - learned at Telehouse East London");
        assert_eq!(s, " - learned at Telehouse East London");
        assert_eq!(strip_communities("no communities here"), "no communities here");
    }

    #[test]
    fn ignores_ip_like_sequences() {
        assert!(extract_communities("peer at 192.0.2.1:179").is_empty());
    }
}

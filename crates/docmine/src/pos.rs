//! Verb-voice classification of documentation lines.
//!
//! Paper §3.2: "we perform Part-of-Speech tagging to distinguish verbs in
//! passive voice used for documenting inbound communities (e.g. 'received',
//! 'learned', 'exchanged'), and ones in active voice that define actions
//! (e.g. 'announce', 'block')". This reproduction uses curated marker word
//! lists instead of a statistical POS tagger; the decision structure
//! (actions veto, passives admit) is the same.

/// The inferred role of a documentation line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Voice {
    /// Passive voice: the community *describes* where a route was received —
    /// an inbound location community.
    Inbound,
    /// Active voice: the community *requests* an action (traffic
    /// engineering) — excluded from the dictionary.
    Outbound,
    /// No marker found.
    Unknown,
}

const PASSIVE_MARKERS: &[&str] = &[
    "received",
    "learned",
    "learnt",
    "exchanged",
    "tagged",
    "ingress",
    "accepted",
    "heard",
    "originated",
];

const ACTIVE_MARKERS: &[&str] = &[
    "announce",
    "advertise",
    "export",
    "prepend",
    "block",
    "blackhole",
    "suppress",
    "do not",
    "don't",
    "set med",
    "set local",
    "lower pref",
];

/// Classifies one line. Action markers take precedence: a line like
/// "do not announce routes received at X" defines an action.
pub fn classify(line: &str) -> Voice {
    let lower = line.to_ascii_lowercase();
    if ACTIVE_MARKERS.iter().any(|m| lower.contains(m)) {
        return Voice::Outbound;
    }
    if PASSIVE_MARKERS.iter().any(|m| lower.contains(m)) {
        return Voice::Inbound;
    }
    Voice::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_lines_are_inbound() {
        for l in [
            "13030:51904 - routes received at Coresite LAX1",
            "2914:410 learned from peer in Amsterdam",
            "Tagged on ingress at FRA",
            "routes EXCHANGED at DE-CIX",
        ] {
            assert_eq!(classify(l), Voice::Inbound, "{l}");
        }
    }

    #[test]
    fn action_lines_are_outbound() {
        for l in [
            "13030:9003 - announce to customers only",
            "2914:666 blackhole this prefix",
            "do not advertise to peers in London",
            "prepend 3x towards AMS-IX",
            "set MED to 50 in Frankfurt",
        ] {
            assert_eq!(classify(l), Voice::Outbound, "{l}");
        }
    }

    #[test]
    fn actions_veto_passives() {
        assert_eq!(classify("do not announce routes received at LINX"), Voice::Outbound);
    }

    #[test]
    fn unmarked_lines_are_unknown() {
        assert_eq!(classify("community scheme of AS13030"), Voice::Unknown);
        assert_eq!(classify(""), Voice::Unknown);
    }
}

//! Cross-epoch dictionary comparison.
//!
//! Paper §3.2 ("Attrition of BGP Communities"): of the 2,980 communities in
//! Donnet & Bonaventure's 2008 dictionary only 552 were still visible in
//! 2016, only 471 appear in Kepler's dictionary, and just 7 (1.5%) of the
//! shared values changed meaning in a decade — community semantics are
//! stable, but the population churns, which is why the dictionary is
//! re-mined every two weeks.

use crate::dictionary::CommunityDictionary;
use kepler_bgp::Community;
use serde::{Deserialize, Serialize};

/// Comparison of two dictionaries mined at different times.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttritionReport {
    /// Entries in the old dictionary.
    pub old_size: usize,
    /// Entries in the new dictionary.
    pub new_size: usize,
    /// Communities present in both.
    pub shared: usize,
    /// Shared communities whose location meaning changed.
    pub changed_meaning: usize,
    /// Communities only in the old dictionary (retired values).
    pub retired: usize,
    /// Communities only in the new dictionary (newly adopted values).
    pub adopted: usize,
}

impl AttritionReport {
    /// Fraction of shared values that changed meaning (paper: 1.5%).
    pub fn meaning_change_rate(&self) -> f64 {
        if self.shared == 0 {
            return 0.0;
        }
        self.changed_meaning as f64 / self.shared as f64
    }

    /// Fraction of the old dictionary that survived into the new one.
    pub fn survival_rate(&self) -> f64 {
        if self.old_size == 0 {
            return 0.0;
        }
        self.shared as f64 / self.old_size as f64
    }
}

/// Compares `old` and `new` dictionaries.
pub fn compare(old: &CommunityDictionary, new: &CommunityDictionary) -> AttritionReport {
    let mut report =
        AttritionReport { old_size: old.len(), new_size: new.len(), ..Default::default() };
    let old_set: std::collections::HashMap<Community, _> =
        old.entries().map(|e| (e.community, e.tag)).collect();
    for entry in new.entries() {
        match old_set.get(&entry.community) {
            Some(old_tag) => {
                report.shared += 1;
                if *old_tag != entry.tag {
                    report.changed_meaning += 1;
                }
            }
            None => report.adopted += 1,
        }
    }
    report.retired = report.old_size - report.shared;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::LocationTag;
    use kepler_topology::{CityId, FacilityId};

    fn dict(entries: &[(u16, u16, LocationTag)]) -> CommunityDictionary {
        let mut d = CommunityDictionary::new();
        for (a, v, t) in entries {
            d.insert(Community::new(*a, *v), *t);
        }
        d
    }

    #[test]
    fn full_comparison() {
        let old = dict(&[
            (1, 10, LocationTag::City(CityId(0))),
            (1, 20, LocationTag::City(CityId(1))),
            (2, 30, LocationTag::Facility(FacilityId(0))),
        ]);
        let new = dict(&[
            (1, 10, LocationTag::City(CityId(0))),         // survivor
            (1, 20, LocationTag::Facility(FacilityId(9))), // meaning change
            (3, 40, LocationTag::City(CityId(2))),         // adopted
        ]);
        let r = compare(&old, &new);
        assert_eq!(r.old_size, 3);
        assert_eq!(r.new_size, 3);
        assert_eq!(r.shared, 2);
        assert_eq!(r.changed_meaning, 1);
        assert_eq!(r.retired, 1);
        assert_eq!(r.adopted, 1);
        assert!((r.meaning_change_rate() - 0.5).abs() < 1e-9);
        assert!((r.survival_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dictionaries() {
        let r = compare(&CommunityDictionary::new(), &CommunityDictionary::new());
        assert_eq!(r, AttritionReport::default());
        assert_eq!(r.meaning_change_rate(), 0.0);
        assert_eq!(r.survival_rate(), 0.0);
    }
}

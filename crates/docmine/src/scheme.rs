//! Ground-truth community schemes.
//!
//! A scheme is what an operator *means* by each community value. The
//! simulator uses schemes to tag routes at ingress points; the corpus
//! generator renders them into documentation; the miner tries to recover
//! them. Keeping all three views consistent is what makes the dictionary's
//! accuracy measurable.

use kepler_bgp::{Asn, Community};
use kepler_topology::{CityId, FacilityId, IxpId};
use serde::{Deserialize, Serialize};

/// What one community value geolocates, in ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchemeTarget {
    /// Ingress at city granularity; `ident` is the identifier style the
    /// operator documents ("New York City", "NYC", or "JFK").
    City {
        /// Documented identifier.
        ident: String,
        /// Ground-truth city.
        city: CityId,
    },
    /// Ingress at a specific colocation facility.
    Facility {
        /// Documented facility name.
        name: String,
        /// Ground-truth facility.
        id: FacilityId,
    },
    /// Ingress via a specific IXP.
    Ixp {
        /// Documented IXP name.
        name: String,
        /// Ground-truth IXP.
        id: IxpId,
    },
}

/// One (value, meaning) pair of a scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeEntry {
    /// The low 16 bits of the community.
    pub value: u16,
    /// What it tags.
    pub target: SchemeTarget,
}

impl SchemeEntry {
    /// The full community for the scheme's `asn`.
    pub fn community(&self, asn: Asn) -> Community {
        Community::new(asn.0 as u16, self.value)
    }
}

/// The documentation style an operator uses — drives corpus rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocStyle {
    /// `remarks:` lines in an IRR object.
    IrrRemarks,
    /// Prose-ish support web page.
    WebPage,
}

/// A complete operator scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommunityScheme {
    /// The operator's ASN (16-bit in the classic community convention).
    pub asn: Asn,
    /// Location-tagging entries (the signal).
    pub entries: Vec<SchemeEntry>,
    /// Outbound action values the operator also documents (the noise the
    /// miner must filter out via verb voice).
    pub action_values: Vec<u16>,
    /// Whether the operator publishes documentation at all. Undocumented
    /// schemes exist in BGP data but can never enter the dictionary —
    /// exactly the paper's XO/Verizon case.
    pub documented: bool,
    /// Rendering style.
    pub style: DocStyle,
}

impl CommunityScheme {
    /// All ground-truth location communities of this scheme.
    pub fn communities(&self) -> impl Iterator<Item = (Community, &SchemeTarget)> + '_ {
        self.entries.iter().map(move |e| (e.community(self.asn), &e.target))
    }

    /// Looks up the ground-truth target for a community value.
    pub fn target_of(&self, value: u16) -> Option<&SchemeTarget> {
        self.entries.iter().find(|e| e.value == value).map(|e| &e.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn community_construction() {
        let s = CommunityScheme {
            asn: Asn(13030),
            entries: vec![SchemeEntry {
                value: 51904,
                target: SchemeTarget::Facility { name: "Coresite LAX1".into(), id: FacilityId(7) },
            }],
            action_values: vec![9003],
            documented: true,
            style: DocStyle::IrrRemarks,
        };
        let (c, t) = s.communities().next().unwrap();
        assert_eq!(c, Community::new(13030, 51904));
        assert!(matches!(t, SchemeTarget::Facility { id: FacilityId(7), .. }));
        assert!(s.target_of(51904).is_some());
        assert!(s.target_of(1).is_none());
    }
}

//! Community-dictionary miner for Kepler.
//!
//! Paper §3.2: operators document their BGP community schemes in free-form
//! text (IRR remarks, support web pages). Kepler compiles a machine-readable
//! **community dictionary** from that text through a web-mining pipeline:
//! regex extraction of community values, named-entity recognition of
//! locations/IXPs/facilities, part-of-speech heuristics to keep *inbound*
//! (passive-voice, "received/learned at …") communities and drop *outbound*
//! (active-voice, "announce/block …") traffic-engineering ones, and
//! geocoding with 10 km clustering to unify identifier styles ("New York
//! City" vs "NYC" vs "JFK").
//!
//! In this reproduction the NLTK/Stanford-NER stack is substituted with a
//! gazetteer-based recognizer over names from the colocation map (the same
//! trick the paper borrows from Banerjee et al.: match capitalized words
//! against PeeringDB/Euro-IX organization names). The corpus itself is
//! rendered from ground-truth schemes by [`corpus`], with realistic noise,
//! so the miner's precision/recall is measurable.
//!
//! * [`scheme`] — ground-truth community schemes (what operators mean).
//! * [`corpus`] — renders schemes into noisy IRR/web documentation.
//! * [`extract`] — community-value extraction from raw text.
//! * [`ner`] — gazetteer named-entity recognition.
//! * [`pos`] — passive/active verb-voice classification.
//! * [`dictionary`] — the mined [`dictionary::CommunityDictionary`].
//! * [`attrition`] — cross-epoch dictionary comparison (paper's 2008-vs-2016
//!   attrition study).
//!
//! # Invariants
//!
//! * **Inbound-only**: the dictionary maps communities that encode where
//!   a route was *received* ([`LocationTag`]); outbound
//!   traffic-engineering values are dropped by the verb-voice classifier
//!   ([`pos`]) — a wrong direction would turn every operator action into
//!   a phantom outage signal.
//! * **Measurable against truth**: the corpus is rendered from
//!   ground-truth schemes with realistic noise, so miner precision and
//!   recall are computable ([`dictionary::validate`]), not asserted.
//! * The miner never invents tags: every dictionary entry traces back to
//!   a gazetteer/colocation-map entity that actually exists.

pub mod attrition;
pub mod corpus;
pub mod dictionary;
pub mod extract;
pub mod ner;
pub mod pos;
pub mod scheme;

pub use dictionary::{CommunityDictionary, DictEntry, DictionaryStats, LocationTag};
pub use scheme::{CommunityScheme, DocStyle, SchemeEntry, SchemeTarget};

//! Gazetteer-based named-entity recognition.
//!
//! Substitute for the paper's Stanford NER + Banerjee-style organization
//! matching: entity names come from the colocation map (PeeringDB/Euro-IX
//! equivalents) and the city gazetteer, and recognition is normalized
//! substring/token matching with a facility > IXP > city precedence —
//! facility names usually embed their city ("Telehouse East London"), so
//! the most specific entity type must win.

use kepler_topology::{CityGazetteer, ColocationMap, FacilityId, IxpId};

/// A recognized infrastructure entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Entity {
    /// A colocation facility.
    Facility(FacilityId),
    /// An IXP.
    Ixp(IxpId),
    /// A city, as a gazetteer index.
    City(usize),
}

/// Recognizer holding normalized name tables.
#[derive(Debug, Clone)]
pub struct EntityRecognizer {
    facility_names: Vec<(String, FacilityId)>,
    ixp_names: Vec<(String, IxpId)>,
    gazetteer: CityGazetteer,
}

fn normalize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_uppercase() } else { ' ' })
        .collect::<String>()
        .split_whitespace()
        .collect::<Vec<_>>()
        .join(" ")
}

impl EntityRecognizer {
    /// Builds a recognizer from the colocation map's entity names.
    pub fn from_colomap(map: &ColocationMap, gazetteer: &CityGazetteer) -> Self {
        let mut facility_names: Vec<(String, FacilityId)> =
            map.facilities().iter().map(|f| (normalize(&f.name), f.id)).collect();
        // Longest names first so "Telehouse East London" beats "Telehouse".
        facility_names.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));
        let mut ixp_names: Vec<(String, IxpId)> =
            map.ixps().iter().map(|x| (normalize(&x.name), x.id)).collect();
        ixp_names.sort_by_key(|(n, _)| std::cmp::Reverse(n.len()));
        EntityRecognizer { facility_names, ixp_names, gazetteer: gazetteer.clone() }
    }

    /// Recognizes the most specific entity mentioned in `text`.
    pub fn recognize(&self, text: &str) -> Option<Entity> {
        let norm = normalize(text);
        if norm.is_empty() {
            return None;
        }
        let padded = format!(" {norm} ");
        for (name, id) in &self.facility_names {
            if !name.is_empty() && padded.contains(&format!(" {name} ")) {
                return Some(Entity::Facility(*id));
            }
        }
        for (name, id) in &self.ixp_names {
            if !name.is_empty() && padded.contains(&format!(" {name} ")) {
                return Some(Entity::Ixp(*id));
            }
        }
        self.recognize_city(&norm).map(Entity::City)
    }

    /// City recognition over normalized text: bigrams first (multi-word
    /// city names), then single tokens against names, IATA codes and
    /// aliases. Tokens shorter than two characters never match.
    pub fn recognize_city(&self, norm: &str) -> Option<usize> {
        let tokens: Vec<&str> = norm.split(' ').filter(|t| t.len() >= 2).collect();
        for w in tokens.windows(2) {
            let bigram = format!("{} {}", w[0], w[1]);
            if let Some(idx) =
                self.gazetteer.cities().iter().position(|c| normalize(c.name) == bigram)
            {
                return Some(idx);
            }
        }
        for t in &tokens {
            if let Some(idx) = self.gazetteer.cities().iter().position(|c| {
                normalize(c.name) == *t || (t.len() >= 3 && (c.iata == *t || c.alias == *t))
            }) {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Asn;
    use kepler_topology::entities::{CityId, Facility, Ixp};
    use kepler_topology::{Continent, GeoPoint};

    fn test_map() -> (ColocationMap, CityGazetteer) {
        let g = CityGazetteer::new();
        let london = g.geocode("London").unwrap() as u32;
        let mut m = ColocationMap::new();
        m.add_facility(Facility {
            id: FacilityId(0),
            name: "Telehouse East London".into(),
            address: "Coriander Ave".into(),
            postcode: "E142AA".into(),
            country: "GB".into(),
            city: CityId(london),
            continent: Continent::Europe,
            point: GeoPoint::new(51.51, -0.0),
            operator: "Telehouse".into(),
        });
        m.add_ixp(Ixp {
            id: IxpId(0),
            name: "LINX".into(),
            url: "linx.net".into(),
            city: CityId(london),
            continent: Continent::Europe,
            route_server_asn: Some(Asn(8714)),
        });
        (m, g)
    }

    #[test]
    fn facility_beats_city() {
        let (m, g) = test_map();
        let r = EntityRecognizer::from_colomap(&m, &g);
        assert_eq!(
            r.recognize("routes received at Telehouse East London"),
            Some(Entity::Facility(FacilityId(0)))
        );
    }

    #[test]
    fn ixp_beats_city() {
        let (m, g) = test_map();
        let r = EntityRecognizer::from_colomap(&m, &g);
        assert_eq!(
            r.recognize("received from public peer at LINX in London"),
            Some(Entity::Ixp(IxpId(0)))
        );
    }

    #[test]
    fn city_fallback_all_styles() {
        let (m, g) = test_map();
        let r = EntityRecognizer::from_colomap(&m, &g);
        let london = g.geocode("London").unwrap();
        assert_eq!(r.recognize("learned in London"), Some(Entity::City(london)));
        assert_eq!(r.recognize("ingress at LHR"), Some(Entity::City(london)));
        let ny = g.geocode("NYC").unwrap();
        assert_eq!(r.recognize("received at NYC edge"), Some(Entity::City(ny)));
        assert_eq!(r.recognize("received in New York metro"), Some(Entity::City(ny)));
    }

    #[test]
    fn no_entity_means_none() {
        let (m, g) = test_map();
        let r = EntityRecognizer::from_colomap(&m, &g);
        assert_eq!(r.recognize("routes of our customers"), None);
        assert_eq!(r.recognize(""), None);
    }

    #[test]
    fn punctuation_and_case_are_immaterial() {
        let (m, g) = test_map();
        let r = EntityRecognizer::from_colomap(&m, &g);
        assert_eq!(
            r.recognize("-- Received @ TELEHOUSE east,LONDON --"),
            Some(Entity::Facility(FacilityId(0)))
        );
    }
}

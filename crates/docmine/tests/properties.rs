//! Property-based tests for the mining pipeline's text handling.

use kepler_bgp::Community;
use kepler_docmine::attrition::compare;
use kepler_docmine::dictionary::{CommunityDictionary, LocationTag};
use kepler_docmine::extract::{extract_communities, strip_communities};
use kepler_topology::CityId;
use proptest::prelude::*;

proptest! {
    /// Every extracted span parses back to the same community, and spans
    /// are disjoint and ordered.
    #[test]
    fn extraction_spans_are_sound(words in prop::collection::vec("[a-zA-Z0-9:. ]{0,12}", 0..12)) {
        let line = words.join(" ");
        let found = extract_communities(&line);
        let mut last_end = 0usize;
        for e in &found {
            prop_assert!(e.start >= last_end);
            last_end = e.end;
            let text = &line[e.start..e.end];
            let parsed: Community = text.parse().unwrap();
            prop_assert_eq!(parsed, e.community);
        }
    }

    /// Stripping removes exactly the extracted spans: the remainder has no
    /// extractable communities whose text overlapped the original spans,
    /// and length shrinks by the sum of span lengths.
    #[test]
    fn strip_removes_spans(asn in 1u16..60_000, value in 0u16..60_000, pre in "[a-z ]{0,10}", post in "[a-z ]{0,10}") {
        let line = format!("{pre} {asn}:{value} {post}");
        let found = extract_communities(&line);
        prop_assert_eq!(found.len(), 1);
        let stripped = strip_communities(&line);
        prop_assert!(extract_communities(&stripped).is_empty());
        prop_assert_eq!(stripped.len(), line.len() - (found[0].end - found[0].start));
    }

    /// Attrition accounting: shared + adopted = new size, shared + retired
    /// = old size, changed ⊆ shared.
    #[test]
    fn attrition_accounting(
        old_vals in prop::collection::btree_set((1u16..50, 0u16..50), 0..40),
        new_vals in prop::collection::btree_set((1u16..50, 0u16..50), 0..40),
    ) {
        let build = |vals: &std::collections::BTreeSet<(u16, u16)>, city: u32| {
            let mut d = CommunityDictionary::new();
            for (a, v) in vals {
                d.insert(Community::new(*a, *v), LocationTag::City(CityId(city + (*v as u32 % 2))));
            }
            d
        };
        let old = build(&old_vals, 0);
        let new = build(&new_vals, 1);
        let r = compare(&old, &new);
        prop_assert_eq!(r.shared + r.adopted, r.new_size);
        prop_assert_eq!(r.shared + r.retired, r.old_size);
        prop_assert!(r.changed_meaning <= r.shared);
    }
}

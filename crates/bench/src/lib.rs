//! Shared plumbing for the figure-reproduction harness (`repro` binary)
//! and the Criterion micro-benchmarks.

use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload};

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The q-quantile (0..=1) of a sorted f64 slice.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// An ASCII sparkline for quick visual inspection of a series.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| TICKS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Builds a synthetic announcement record for micro-benchmarks.
pub fn sample_record(i: u64) -> BgpRecord {
    let attrs = PathAttributes::with_path_and_communities(
        AsPath::from_sequence([3356, 13030, 20940 + (i % 7) as u32]),
        vec![
            Community::new(13030, 51_000 + (i % 100) as u16),
            Community::new(3356, 2000 + (i % 50) as u16),
        ],
    );
    BgpRecord {
        time: 1_400_000_000 + i,
        collector: CollectorId((i % 4) as u16),
        peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
        payload: RecordPayload::Update(BgpUpdate::announce(
            vec![Prefix::v4(20, (i % 200) as u8, 0, 0, 16)],
            attrs,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 0.5), 50.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn sample_records_vary() {
        assert_ne!(sample_record(1), sample_record(2));
    }
}

//! Shared plumbing for the figure-reproduction harness (`repro` binary),
//! the Criterion micro-benchmarks and the CI perf gate ([`gate`]).
//!
//! Three binaries live here:
//!
//! * `repro` — one subcommand per artifact of the paper's evaluation,
//!   plus `--bench`, which runs the 1M-record pipeline and the probe
//!   workload and writes `BENCH_monitor.json` (the perf-trajectory
//!   artifact tracked across PRs);
//! * `profile_stages` — cumulative stage-cost breakdown (construct →
//!   explode → decode+intern → monitor, plus per-trace vs batched probe
//!   validation) guiding optimization work;
//! * `bench_gate` — compares a fresh `BENCH_monitor.json` against the
//!   committed baseline and fails CI on regression ([`gate`]).
//!
//! # Invariants
//!
//! * `benches/pipeline_1m.rs` and `repro --bench` build their workload
//!   from the same helpers ([`pipeline_record`] /
//!   [`pipeline_dictionary`] / [`probe_fixture`]), so they always
//!   measure the same stream.
//! * The gate never fails on a metric present in only one document —
//!   benchmarks may be added or retired across PRs
//!   ([`gate::THROUGHPUT_KEYS`]).

pub mod gate;

use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload};

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// The q-quantile (0..=1) of a sorted f64 slice, with linear
/// interpolation between order statistics (the R-7 / NumPy default).
/// Nearest-rank rounding misreports tail quantiles on small samples —
/// e.g. p99 of 10 samples rounds straight to the maximum.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = (sorted.len() - 1) as f64 * q;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// An ASCII sparkline for quick visual inspection of a series. Empty
/// input yields an empty string; NaN values render as spaces instead of
/// panicking on an out-of-range tick index.
pub fn sparkline(values: &[f64]) -> String {
    const TICKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite = values.iter().copied().filter(|v| v.is_finite());
    let max = finite.clone().fold(f64::NEG_INFINITY, f64::max);
    let min = finite.fold(f64::INFINITY, f64::min);
    if !min.is_finite() || !max.is_finite() {
        // Empty or all-NaN input: no scale to draw against.
        return values.iter().map(|_| ' ').collect();
    }
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            if v.is_finite() {
                TICKS[((((v - min) / span) * 7.0).round() as usize).min(7)]
            } else {
                ' '
            }
        })
        .collect()
}

/// Time compression applied to [`sample_record`]'s one-record-per-second
/// clock by [`pipeline_record`]: 50:1 ≈ 3000 events per 60 s bin, the
/// realistic collector-feed cadence the pipeline benchmarks model.
///
/// Both `benches/pipeline_1m.rs` and `repro --bench` (the
/// `BENCH_monitor.json` perf-trajectory artifact) build their workload
/// from these helpers so the two always measure the same stream.
pub const PIPELINE_TIME_COMPRESSION: u64 = 50;

/// One record of the synthetic pipeline workload.
pub fn pipeline_record(i: u64) -> BgpRecord {
    let mut rec = sample_record(i);
    rec.time = 1_400_000_000 + i / PIPELINE_TIME_COMPRESSION;
    rec
}

/// Dictionary covering the community space [`sample_record`] emits
/// (13030:51000..51100), spread over ten facilities.
pub fn pipeline_dictionary() -> kepler_docmine::CommunityDictionary {
    use kepler_docmine::LocationTag;
    use kepler_topology::FacilityId;
    let mut d = kepler_docmine::CommunityDictionary::new();
    for k in 0..100u16 {
        d.insert(
            Community::new(13030, 51_000 + k),
            LocationTag::Facility(FacilityId(k as u32 % 10)),
        );
    }
    d
}

/// The probe-stage benchmark fixture: a tiny world with one facility
/// outage, the glue-layer simulated trace backend, and a two-candidate
/// validation request against the outage window. Shared by
/// `profile_stages` (ns/request rows) and `repro --bench`
/// (`probe_verdicts_per_sec` / `probe_batched_verdicts_per_sec` in
/// `BENCH_monitor.json`) so all measure the same workload:
/// schedule → simulate → analyze.
///
/// `batched` toggles the backend's shared routing-tree cache: `false`
/// reproduces the historical per-trace `compute_tree` cost (the `probe`
/// row), `true` measures the batched path (`probe_batched`) where one
/// tree per (origin, failure-state) is shared across the campaign.
pub fn probe_fixture(
    seed: u64,
    batched: bool,
) -> (
    kepler::probe::ProbeEngine<kepler::probe::SyncAdapter<kepler::glue::SimTraceBackend>>,
    kepler::probe::ProbeRequest,
) {
    use kepler::probe::{ProbeEngine, ProbeEngineConfig};

    let (world, backend, request) = probe_fixture_parts(seed, batched);
    let engine = ProbeEngine::new(
        backend,
        kepler::glue::vantage_registry_for(&world),
        world.detector_colomap(),
        ProbeEngineConfig::default(),
    );
    (engine, request)
}

/// Like [`probe_fixture`] but with the netsim fault-injection layer at
/// 30% probe loss wrapped around the backend — the
/// `probe_faulty_verdicts_per_sec` row: verdict throughput while the
/// lifecycle absorbs drops, retries and timeouts.
pub fn probe_faulty_fixture(
    seed: u64,
) -> (
    kepler::probe::ProbeEngine<kepler::netsim::FaultyBackend<kepler::glue::SimTraceBackend>>,
    kepler::probe::ProbeRequest,
) {
    use kepler::netsim::{FaultConfig, FaultyBackend};
    use kepler::probe::{ProbeEngine, ProbeEngineConfig};

    let (world, backend, request) = probe_fixture_parts(seed, true);
    let fault = FaultConfig { drop_rate: 0.30, ..FaultConfig::default() };
    let engine = ProbeEngine::with_async(
        FaultyBackend::new(backend, fault),
        kepler::glue::vantage_registry_for(&world),
        world.detector_colomap(),
        ProbeEngineConfig::default(),
    );
    (engine, request)
}

/// The shared world/backend/request triple behind both probe fixtures.
fn probe_fixture_parts(
    seed: u64,
    batched: bool,
) -> (kepler::netsim::World, kepler::glue::SimTraceBackend, kepler::probe::ProbeRequest) {
    use kepler::glue::SimTraceBackend;
    use kepler::netsim::events::{EventKind, ScheduledEvent};
    use kepler::netsim::world::{World, WorldConfig};
    use kepler::probe::ProbeRequest;
    use kepler_docmine::LocationTag;

    let world = World::generate(WorldConfig::tiny(seed));
    let mut facs: Vec<_> = world
        .colo
        .facilities()
        .iter()
        .map(|f| (world.colo.members_of_facility(f.id).len(), f.id, f.city))
        .collect();
    facs.sort_by_key(|(n, f, _)| (std::cmp::Reverse(*n), f.0));
    let (_, down, city) = facs[0];
    let twin = facs[1].1;
    let start = 1_400_000_000u64;
    let timeline = vec![ScheduledEvent {
        start,
        duration: 7_200,
        kind: EventKind::FacilityOutage { facility: down, affected_fraction: 1.0 },
    }];
    let backend =
        SimTraceBackend::new(std::sync::Arc::new(world.clone()), &timeline, seed ^ 0x9B0E)
            .with_tree_cache(batched);
    let affected_far: Vec<_> =
        world.colo.members_of_facility(down).iter().copied().take(10).collect();
    let request = ProbeRequest {
        pop: LocationTag::City(city),
        bin_start: start + 600,
        candidates: vec![down, twin],
        affected_far,
        affected_near: Vec::new(),
    };
    (world, backend, request)
}

/// The first `n` pipeline records as an MRT byte archive
/// (`BGP4MP_MESSAGE_AS4` frames), for the zero-copy decode benchmarks.
/// MRT has no collector-id field; walkers reassign
/// `CollectorId((frame_index % 4) as u16)` in frame order, which matches
/// [`pipeline_record`]'s distribution exactly, so the interning workload
/// is the same as the in-memory paths'.
pub fn pipeline_mrt_bytes(n: u64) -> Vec<u8> {
    use kepler_bgp::mrt::MrtWriter;
    let mut buf = Vec::new();
    let mut w = MrtWriter::new(&mut buf);
    for i in 0..n {
        let mrt = pipeline_record(i).to_mrt(Asn(64_700), "192.0.2.254".parse().unwrap());
        w.write_record(&mrt).expect("encode pipeline record");
    }
    buf
}

/// Builds a synthetic announcement record for micro-benchmarks.
pub fn sample_record(i: u64) -> BgpRecord {
    let attrs = PathAttributes::with_path_and_communities(
        AsPath::from_sequence([3356, 13030, 20940 + (i % 7) as u32]),
        vec![
            Community::new(13030, 51_000 + (i % 100) as u16),
            Community::new(3356, 2000 + (i % 50) as u16),
        ],
    );
    BgpRecord {
        time: 1_400_000_000 + i,
        collector: CollectorId((i % 4) as u16),
        peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
        payload: RecordPayload::Update(BgpUpdate::announce(
            vec![Prefix::v4(20, (i % 200) as u8, 0, 0, 16)],
            attrs,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&v, 0.0), 0.0);
        assert_eq!(quantile(&v, 0.5), 50.0);
        assert_eq!(quantile(&v, 1.0), 100.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn quantiles_interpolate_small_samples() {
        // p99 of 10 samples must not collapse to the max (nearest-rank did).
        let v: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let p99 = quantile(&v, 0.99);
        assert!(p99 < 10.0 && p99 > 9.9, "interpolated p99, got {p99}");
        // Median of an even-length sample interpolates between the middles.
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.5), 2.5);
        // Out-of-range q clamps instead of indexing out of bounds.
        assert_eq!(quantile(&v, 1.5), 10.0);
        assert_eq!(quantile(&v, -0.5), 1.0);
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'));
    }

    #[test]
    fn sparkline_degenerate_inputs() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[f64::NAN, f64::NAN]), "  ");
        let mixed = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(mixed.chars().count(), 3);
        assert_eq!(mixed.chars().nth(1), Some(' '));
        // Constant series stays on the bottom tick rather than panicking.
        assert_eq!(sparkline(&[3.0, 3.0]), "▁▁");
        assert_eq!(sparkline(&[f64::INFINITY, 0.0]).chars().next(), Some(' '));
    }

    #[test]
    fn sample_records_vary() {
        assert_ne!(sample_record(1), sample_record(2));
    }
}

//! Perf-regression gate over `BENCH_monitor.json`.
//!
//! The CI `bench-gate` job re-runs `repro --bench` and compares the fresh
//! throughput figures against the committed baseline, failing the build
//! when any shared metric regresses by more than the allowed fraction.
//! The vendored `serde` is a no-op stub (no crates.io access), so the
//! parser here is a purpose-built scanner for the benchmark artifact's
//! shape: top-level sections of the form
//! `"name": { ..., "events_per_sec": N, ... }` (or any other known
//! throughput key, see [`THROUGHPUT_KEYS`]).

use std::collections::BTreeMap;

/// The per-section throughput fields the gate understands. Sections
/// carrying none of these are ignored; a key present in only one
/// document (a benchmark added or retired across PRs) is informational
/// and never fails the gate.
pub const THROUGHPUT_KEYS: [&str; 9] = [
    "events_per_sec",
    "decode_recs_per_sec",
    "probe_verdicts_per_sec",
    "probe_batched_verdicts_per_sec",
    "probe_faulty_verdicts_per_sec",
    "fuzz_worlds_per_sec",
    "fusion_events_per_sec",
    "serve_events_per_sec",
    "query_reads_per_sec",
];

/// Extracts `section name → throughput` from a `BENCH_monitor.json`
/// document. Sections without any [`THROUGHPUT_KEYS`] field are ignored.
pub fn parse_events_per_sec(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    // The artifact keeps each section on one line; scan per line so a
    // malformed or reordered field cannot cross-contaminate sections.
    for line in json.lines() {
        let Some(name) = quoted_prefix(line) else { continue };
        for key in THROUGHPUT_KEYS {
            let needle = format!("\"{key}\"");
            let Some(pos) = line.find(&needle) else { continue };
            let tail = &line[pos + needle.len()..];
            let Some(colon) = tail.find(':') else { continue };
            let num: String = tail[colon + 1..]
                .trim_start()
                .chars()
                .take_while(|c| {
                    c.is_ascii_digit() || *c == '.' || *c == '-' || *c == '+' || *c == 'e'
                })
                .collect();
            if let Ok(v) = num.parse::<f64>() {
                out.insert(name, v);
                break;
            }
        }
    }
    out
}

/// The first quoted token of a line (the section key), if any.
fn quoted_prefix(line: &str) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// One gate verdict row.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Section name (`single_shard`, `sharded_8`, ...).
    pub metric: String,
    /// Baseline events/s.
    pub baseline: f64,
    /// Freshly measured events/s.
    pub fresh: f64,
    /// `fresh / baseline - 1` (negative = slower).
    pub change: f64,
    /// Whether the row breaches the allowed regression.
    pub regressed: bool,
}

/// Compares fresh measurements against a baseline. A metric regresses
/// when `fresh < baseline * (1 - max_regression)`. Metrics present in
/// only one document are reported with `baseline`/`fresh` of `NaN` and
/// never fail the gate (new benchmarks appear across PRs; retired ones
/// disappear).
pub fn compare(
    baseline: &BTreeMap<String, f64>,
    fresh: &BTreeMap<String, f64>,
    max_regression: f64,
) -> Vec<Verdict> {
    let mut out = Vec::new();
    for (metric, &base) in baseline {
        match fresh.get(metric) {
            Some(&now) => out.push(Verdict {
                metric: metric.clone(),
                baseline: base,
                fresh: now,
                change: now / base - 1.0,
                regressed: now < base * (1.0 - max_regression),
            }),
            None => out.push(Verdict {
                metric: metric.clone(),
                baseline: base,
                fresh: f64::NAN,
                change: f64::NAN,
                regressed: false,
            }),
        }
    }
    for (metric, &now) in fresh {
        if !baseline.contains_key(metric) {
            out.push(Verdict {
                metric: metric.clone(),
                baseline: f64::NAN,
                fresh: now,
                change: f64::NAN,
                regressed: false,
            });
        }
    }
    out
}

/// Whether any verdict fails the gate.
pub fn gate_fails(verdicts: &[Verdict]) -> bool {
    verdicts.iter().any(|v| v.regressed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
  "bench": "pipeline_1m",
  "events": 1000000,
  "bins_closed": 334,
  "single_shard": { "seconds": 0.664, "events_per_sec": 1505476 },
  "sharded_8": { "seconds": 0.713, "events_per_sec": 1402659 },
  "peak_rss_bytes": 37838848
}
"#;

    fn doc(single: f64, sharded: f64) -> String {
        format!(
            "{{\n  \"single_shard\": {{ \"seconds\": 1.0, \"events_per_sec\": {single} }},\n  \"sharded_8\": {{ \"seconds\": 1.0, \"events_per_sec\": {sharded} }}\n}}\n"
        )
    }

    #[test]
    fn parses_all_sections() {
        let m = parse_events_per_sec(BASELINE);
        assert_eq!(m.len(), 2);
        assert_eq!(m["single_shard"], 1_505_476.0);
        assert_eq!(m["sharded_8"], 1_402_659.0);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = parse_events_per_sec(BASELINE);
        // 20% slower on both: inside the 25% budget.
        let fresh = parse_events_per_sec(&doc(1_505_476.0 * 0.8, 1_402_659.0 * 0.8));
        let verdicts = compare(&base, &fresh, 0.25);
        assert!(!gate_fails(&verdicts), "{verdicts:?}");
        // Faster is always fine.
        let fresh = parse_events_per_sec(&doc(3e6, 3e6));
        assert!(!gate_fails(&compare(&base, &fresh, 0.25)));
    }

    #[test]
    fn synthetic_regression_fails() {
        let base = parse_events_per_sec(BASELINE);
        // One metric 30% slower: breaches the 25% budget.
        let fresh = parse_events_per_sec(&doc(1_505_476.0 * 0.7, 1_402_659.0));
        let verdicts = compare(&base, &fresh, 0.25);
        assert!(gate_fails(&verdicts));
        let bad: Vec<_> = verdicts.iter().filter(|v| v.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "single_shard");
        assert!((bad[0].change + 0.3).abs() < 1e-9);
    }

    #[test]
    fn equivalently_a_regressed_baseline_fails_the_fresh_run() {
        // The negative test the CI job encodes: feed a baseline that is
        // far *faster* than reality — the fresh run must fail the gate.
        let inflated = parse_events_per_sec(&doc(1e9, 1e9));
        let fresh = parse_events_per_sec(BASELINE);
        assert!(gate_fails(&compare(&inflated, &fresh, 0.25)));
    }

    #[test]
    fn disjoint_metrics_never_fail() {
        let base = parse_events_per_sec(BASELINE);
        let fresh = parse_events_per_sec(
            "{\n  \"parallel_8x8\": { \"seconds\": 1.0, \"events_per_sec\": 10 }\n}\n",
        );
        let verdicts = compare(&base, &fresh, 0.25);
        assert!(!gate_fails(&verdicts), "new/retired metrics are informational: {verdicts:?}");
        assert_eq!(verdicts.len(), 3);
    }

    #[test]
    fn probe_metric_parses_and_old_baselines_tolerate_it() {
        let fresh_doc = format!(
            "{BASELINE}\n\"probe\": {{ \"seconds\": 1.0, \"verdicts\": 600, \"probe_verdicts_per_sec\": 600 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["probe"], 600.0);
        // Old baseline without the probe section: the new key is
        // informational, the gate cannot fail on it.
        let base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&base, &fresh, 0.25)));
        // Both documents carrying it: a regression is caught.
        let slow =
            fresh_doc.replace("\"probe_verdicts_per_sec\": 600", "\"probe_verdicts_per_sec\": 300");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "probe" && v.regressed));
    }

    #[test]
    fn batched_probe_metric_parses_and_old_baselines_tolerate_it() {
        // The PR-4 artifact carries both probe sections; baselines from
        // before either existed must still gate cleanly.
        let fresh_doc = format!(
            "{BASELINE}\n\"probe\": {{ \"seconds\": 2.0, \"verdicts\": 600, \"probe_verdicts_per_sec\": 300 }}\n\"probe_batched\": {{ \"seconds\": 0.5, \"verdicts\": 600, \"probe_batched_verdicts_per_sec\": 1200 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["probe_batched"], 1200.0);
        assert_eq!(fresh["probe"], 300.0, "keys must not cross-contaminate sections");
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying it: a batched regression is caught.
        let slow = fresh_doc.replace(
            "\"probe_batched_verdicts_per_sec\": 1200",
            "\"probe_batched_verdicts_per_sec\": 600",
        );
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "probe_batched" && v.regressed));
        assert!(
            verdicts.iter().all(|v| v.metric != "probe" || !v.regressed),
            "the unbatched row did not regress: {verdicts:?}"
        );
    }

    #[test]
    fn faulty_probe_metric_parses_and_old_baselines_tolerate_it() {
        // The fault-injection row added in the robustness PR: baselines
        // recorded before it existed must still gate cleanly.
        let fresh_doc = format!(
            "{BASELINE}\n\"probe_faulty\": {{ \"seconds\": 1.0, \"verdicts\": 400, \"probe_faulty_verdicts_per_sec\": 400 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["probe_faulty"], 400.0);
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying it: a regression is caught.
        let slow = fresh_doc.replace(
            "\"probe_faulty_verdicts_per_sec\": 400",
            "\"probe_faulty_verdicts_per_sec\": 100",
        );
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "probe_faulty" && v.regressed));
    }

    #[test]
    fn fuzz_metric_parses_and_old_baselines_tolerate_it() {
        // The scenario-fuzzer row added with the diversity engine:
        // baselines recorded before it existed must still gate cleanly.
        let fresh_doc = format!(
            "{BASELINE}\n\"fuzz\": {{ \"seconds\": 0.4, \"worlds\": 8, \"fuzz_worlds_per_sec\": 20.0 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["fuzz"], 20.0);
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying it: a regression is caught.
        let slow =
            fresh_doc.replace("\"fuzz_worlds_per_sec\": 20.0", "\"fuzz_worlds_per_sec\": 5.0");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "fuzz" && v.regressed));
    }

    #[test]
    fn fusion_metric_parses_and_old_baselines_tolerate_it() {
        // The multi-signal row added with the fusion stack: baselines
        // recorded before it existed must still gate cleanly, and the
        // `fusion_events_per_sec` key must not be mistaken for the
        // plain `events_per_sec` of the monitor sections.
        let fresh_doc = format!(
            "{BASELINE}\n\"fusion\": {{ \"seconds\": 1.5, \"events\": 6000, \"fusion_events_per_sec\": 4000 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["fusion"], 4000.0);
        assert_eq!(fresh["single_shard"], 1_505_476.0, "no cross-section contamination");
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying it: a regression is caught.
        let slow =
            fresh_doc.replace("\"fusion_events_per_sec\": 4000", "\"fusion_events_per_sec\": 1000");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "fusion" && v.regressed));
    }

    #[test]
    fn serve_metrics_parse_and_old_baselines_tolerate_them() {
        // The serve-daemon rows added with kepler-serve: baselines
        // recorded before they existed must still gate cleanly.
        let fresh_doc = format!(
            "{BASELINE}\n\"serve\": {{ \"seconds\": 2.0, \"events\": 100000, \"serve_events_per_sec\": 50000 }}\n\"query\": {{ \"seconds\": 1.0, \"reads\": 8000000, \"query_reads_per_sec\": 8000000 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["serve"], 50_000.0);
        assert_eq!(fresh["query"], 8_000_000.0, "keys must not cross-contaminate sections");
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying them: a query-path regression is caught.
        let slow = fresh_doc
            .replace("\"query_reads_per_sec\": 8000000", "\"query_reads_per_sec\": 1000000");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "query" && v.regressed));
        assert!(
            verdicts.iter().all(|v| v.metric != "serve" || !v.regressed),
            "the serve row did not regress: {verdicts:?}"
        );
        // And a serve-path regression independently.
        let slow =
            fresh_doc.replace("\"serve_events_per_sec\": 50000", "\"serve_events_per_sec\": 10000");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "serve" && v.regressed));
    }

    #[test]
    fn decode_metric_parses_and_old_baselines_tolerate_it() {
        // The zero-copy decode row: a *rate* (records/sec, higher is
        // better) so the gate's one-sided comparison reads improvements
        // as improvements. Baselines recorded before it existed must
        // still gate cleanly.
        let fresh_doc = format!(
            "{BASELINE}\n\"decode\": {{ \"seconds\": 0.05, \"records\": 200000, \"decode_recs_per_sec\": 4000000 }}\n"
        );
        let fresh = parse_events_per_sec(&fresh_doc);
        assert_eq!(fresh["decode"], 4_000_000.0);
        assert_eq!(fresh["single_shard"], 1_505_476.0, "no cross-section contamination");
        let old_base = parse_events_per_sec(BASELINE);
        assert!(!gate_fails(&compare(&old_base, &fresh, 0.25)));
        // Both documents carrying it: a decode regression is caught.
        let slow = fresh_doc
            .replace("\"decode_recs_per_sec\": 4000000", "\"decode_recs_per_sec\": 1000000");
        let verdicts = compare(&fresh, &parse_events_per_sec(&slow), 0.25);
        assert!(gate_fails(&verdicts));
        assert!(verdicts.iter().any(|v| v.metric == "decode" && v.regressed));
        // And a decode *improvement* passes (higher-is-better sanity).
        let faster = fresh_doc
            .replace("\"decode_recs_per_sec\": 4000000", "\"decode_recs_per_sec\": 9000000");
        assert!(!gate_fails(&compare(&fresh, &parse_events_per_sec(&faster), 0.25)));
    }

    #[test]
    fn parser_ignores_unrelated_lines_and_junk() {
        let m = parse_events_per_sec("not json at all\n\"x\": {}\n42\n");
        assert!(m.is_empty());
        let m = parse_events_per_sec("\"weird\": { \"events_per_sec\": notanumber }\n");
        assert!(m.is_empty());
    }
}

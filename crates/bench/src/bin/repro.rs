//! Figure/table reproduction harness.
//!
//! One subcommand per artifact of the paper's evaluation:
//!
//! ```sh
//! cargo run --release -p kepler-bench --bin repro -- all
//! cargo run --release -p kepler-bench --bin repro -- fig1 fig8b
//! cargo run --release -p kepler-bench --bin repro -- --compact val
//! ```
//!
//! Absolute numbers depend on the synthetic world's scale; the *shapes*
//! (who wins, by what factor, where crossovers fall) are the reproduction
//! target. `EXPERIMENTS.md` records paper-vs-measured for every artifact.

use kepler::core::events::{OutageReport, OutageScope};
use kepler::core::metrics::{evaluate, Evaluation, TruthOutage};
use kepler::core::system::ClassCounts;
use kepler::core::KeplerConfig;
use kepler::docmine::LocationTag;
use kepler::glue::{detector_for, truth_outages_observed};
use kepler::netsim::dataplane::DataplaneSim;
use kepler::netsim::scenario::amsix::{AmsIxScenario, AmsIxStudy, OUTAGE_DURATION, OUTAGE_START};
use kepler::netsim::scenario::five_year::{build as build_five_year, FiveYearConfig, STUDY_START};
use kepler::netsim::scenario::london::{LondonScenario, LondonStudy};
use kepler::netsim::traffic::TrafficSim;
use kepler::netsim::world::{World, WorldConfig};
use kepler::topology::Continent;
use kepler_bench::{pct, quantile, sparkline};
use std::collections::BTreeMap;

struct Ctx {
    seed: u64,
    compact: bool,
}

struct FiveYearRun {
    scenario: kepler::netsim::scenario::Scenario,
    reports: Vec<OutageReport>,
    truth: Vec<TruthOutage>,
    eval: Evaluation,
    counts: ClassCounts,
}

#[derive(Default)]
struct Cache {
    five: Option<FiveYearRun>,
    amsix: Option<AmsIxStudy>,
    london: Option<LondonStudy>,
}

impl Cache {
    fn five(&mut self, ctx: &Ctx) -> &FiveYearRun {
        if self.five.is_none() {
            let cfg = if ctx.compact {
                FiveYearConfig::compact(ctx.seed)
            } else {
                FiveYearConfig::standard(ctx.seed)
            };
            eprintln!("[building five-year scenario...]");
            let scenario = build_five_year(cfg);
            eprintln!("[stream: {} records; running detector...]", scenario.output.records.len());
            let config = KeplerConfig::default();
            let mut detector = detector_for(&scenario, config.clone());
            for r in scenario.records() {
                detector.process_record(&r);
            }
            let truth = truth_outages_observed(&scenario, &config, &mut detector);
            let counts = detector.class_counts();
            let reports = detector.finish();
            let eval = evaluate(&reports, &truth, 1800);
            self.five = Some(FiveYearRun { scenario, reports, truth, eval, counts });
        }
        self.five.as_ref().expect("just built")
    }

    fn amsix(&mut self, ctx: &Ctx) -> &AmsIxStudy {
        if self.amsix.is_none() {
            eprintln!("[building AMS-IX scenario...]");
            let cfg = if ctx.compact {
                WorldConfig::tiny(ctx.seed)
            } else {
                WorldConfig::small(ctx.seed)
            };
            self.amsix = Some(AmsIxScenario::new(ctx.seed).with_config(cfg).build());
        }
        self.amsix.as_ref().expect("just built")
    }

    fn london(&mut self, _ctx: &Ctx) -> &LondonStudy {
        if self.london.is_none() {
            eprintln!("[building London scenario...]");
            self.london = Some(LondonScenario::new(3).with_config(WorldConfig::small(3)).build());
        }
        self.london.as_ref().expect("just built")
    }
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`), or
/// `None` where /proc is unavailable.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The perf-trajectory artifact tracked across PRs: pushes 1M synthetic
/// records through input module → interner → monitor (single-shard,
/// 8-way sharded monitor, and the fully parallel 8×8 ingest+monitor
/// pipeline), measures the zero-copy MRT decode stage (frame → view →
/// dense intern over an encoded archive), and writes events/sec plus
/// peak RSS to `BENCH_monitor.json`.
fn bench_monitor_json() {
    use kepler::core::config::KeplerConfig;
    use kepler::core::ingest::ParallelIngest;
    use kepler::core::input::InputModule;
    use kepler::core::intern::Interner;
    use kepler::core::monitor::Monitor;
    use kepler::core::shard::ShardedMonitor;
    use kepler::topology::ColocationMap;
    use kepler_bench::{pipeline_dictionary, pipeline_record, PIPELINE_TIME_COMPRESSION};
    use std::time::Instant;

    const N: u64 = 1_000_000;

    eprintln!("[bench: 1M-record pipeline, single-shard...]");
    let t = Instant::now();
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut monitor = Monitor::new(KeplerConfig::default());
    let mut single_bins = 0usize;
    for i in 0..N {
        let rec = pipeline_record(i);
        let time = rec.time;
        input.process_record_events(&rec, &mut interner, |ev| {
            single_bins += monitor.observe(time, &ev).len();
        });
    }
    single_bins +=
        monitor.advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400).len();
    let single_secs = t.elapsed().as_secs_f64();
    let single_eps = N as f64 / single_secs;

    eprintln!("[bench: 1M-record pipeline, 8-way sharded...]");
    let t = Instant::now();
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut sharded = ShardedMonitor::new(KeplerConfig::default(), 8);
    let mut sharded_bins = 0usize;
    for i in 0..N {
        let rec = pipeline_record(i);
        let time = rec.time;
        input.process_record_events(&rec, &mut interner, |ev| {
            sharded_bins += sharded.observe(time, &ev).len();
        });
    }
    sharded_bins +=
        sharded.advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400).len();
    let sharded_secs = t.elapsed().as_secs_f64();
    assert_eq!(single_bins, sharded_bins, "single and sharded runs must close the same bins");
    let sharded_eps = N as f64 / sharded_secs;

    eprintln!("[bench: 1M-record pipeline, 8-way parallel ingest + 8-way sharded monitor...]");
    let t = Instant::now();
    let template = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut ingest = ParallelIngest::new(&template, KeplerConfig::default().quarantine_secs, 8);
    let mut interner = Interner::new();
    let mut monitor = ShardedMonitor::new(KeplerConfig::default(), 8);
    let mut events = Vec::new();
    let mut parallel_bins = 0usize;
    for i in 0..N {
        ingest.push_owned(pipeline_record(i));
        ingest.drain_ready(&mut interner, &mut events);
        for (time, ev) in events.drain(..) {
            parallel_bins += monitor.observe(time, &ev).len();
        }
    }
    ingest.finish(&mut interner, &mut events);
    for (time, ev) in events.drain(..) {
        parallel_bins += monitor.observe(time, &ev).len();
    }
    parallel_bins +=
        monitor.advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400).len();
    let parallel_secs = t.elapsed().as_secs_f64();
    assert_eq!(single_bins, parallel_bins, "parallel ingest must close the same bins");
    let parallel_eps = N as f64 / parallel_secs;

    eprintln!("[bench: zero-copy MRT decode, frame -> view -> dense intern...]");
    const DECODE_RECS: u64 = 200_000;
    let archive = kepler_bench::pipeline_mrt_bytes(DECODE_RECS);
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut decode_events = 0u64;
    let t = Instant::now();
    {
        use kepler::bgp::mrt::FrameView;
        use kepler::bgpstream::{CollectorId, PeerId};
        let mut off = 0usize;
        let mut idx = 0u64;
        while let Some((frame, used)) =
            FrameView::parse(&archive[off..]).expect("bench archive is well-formed")
        {
            off += used;
            if let Some(msg) = frame.message().expect("bench frames are AS4 messages") {
                // MRT has no collector field; reassign in frame order to
                // match pipeline_record's distribution (see
                // kepler_bench::pipeline_mrt_bytes).
                let collector = CollectorId((idx % 4) as u16);
                let peer = PeerId { asn: msg.peer_as, addr: msg.peer_ip };
                input.process_update_view_dense(
                    collector,
                    peer,
                    &msg.update,
                    &mut interner,
                    |_elem| decode_events += 1,
                );
            }
            idx += 1;
        }
        assert_eq!(idx, DECODE_RECS, "archive frame count");
    }
    let decode_secs = t.elapsed().as_secs_f64();
    assert_eq!(decode_events, DECODE_RECS, "one announced prefix per pipeline record");
    let decode_rps = DECODE_RECS as f64 / decode_secs;

    const PROBE_REQUESTS: u64 = 300;
    let mut probe_runs = [(false, 0usize, 0f64), (true, 0usize, 0f64)];
    for (batched, verdicts, secs) in &mut probe_runs {
        eprintln!(
            "[bench: probe validation, schedule->simulate->analyze ({})...]",
            if *batched { "batched trees" } else { "per-trace trees" }
        );
        let (mut prober, request) = kepler_bench::probe_fixture(41, *batched);
        let t = Instant::now();
        {
            use kepler::probe::Prober;
            for i in 0..PROBE_REQUESTS {
                // Advance time so per-facility token buckets refill per bin.
                let report = prober.validate(&request, request.bin_start + 60 * i);
                *verdicts += report.verdicts.len();
            }
        }
        *secs = t.elapsed().as_secs_f64();
        assert!(*verdicts > 0, "probe bench must judge candidates");
    }
    let [(_, probe_verdicts, probe_secs), (_, batched_verdicts, batched_secs)] = probe_runs;
    assert_eq!(probe_verdicts, batched_verdicts, "batching must not change verdicts");
    let probe_vps = probe_verdicts as f64 / probe_secs;
    let batched_vps = batched_verdicts as f64 / batched_secs;

    eprintln!("[bench: probe validation under 30% fault injection...]");
    let (mut faulty_prober, faulty_request) = kepler_bench::probe_faulty_fixture(41);
    let mut faulty_verdicts = 0usize;
    let t = Instant::now();
    {
        use kepler::probe::Prober;
        for i in 0..PROBE_REQUESTS {
            let report = faulty_prober.validate(&faulty_request, faulty_request.bin_start + 60 * i);
            faulty_verdicts += report.verdicts.len();
        }
    }
    let faulty_secs = t.elapsed().as_secs_f64();
    assert!(faulty_verdicts > 0, "faulty probe bench must still judge candidates");
    let faulty_vps = faulty_verdicts as f64 / faulty_secs;

    eprintln!("[bench: scenario fuzzer, generate->simulate->detect->check...]");
    const FUZZ_WORLDS: u64 = 8;
    let mut fuzz_violations = 0usize;
    let t = Instant::now();
    for seed in 0..FUZZ_WORLDS {
        fuzz_violations += kepler::fuzz_harness::check_seed(seed).violations.len();
    }
    let fuzz_secs = t.elapsed().as_secs_f64();
    assert_eq!(fuzz_violations, 0, "fuzz bench seeds must hold the invariants");
    let fuzz_wps = FUZZ_WORLDS as f64 / fuzz_secs;

    eprintln!("[bench: fused multi-signal detection, forecast+delay over a drain world...]");
    let (fusion_secs, fusion_events) = {
        let fw = kepler::netsim::fuzz::slow_drain(1);
        let config = kepler::core::KeplerConfig::default()
            .with_hysteresis(fw.script.open_after, fw.script.close_after);
        let mut det = kepler::glue::detector_with_fusion(
            &fw.scenario,
            config,
            kepler::glue::FusionOptions::default(),
        );
        let records = fw.scenario.records();
        let n = records.len() as u64;
        let t = Instant::now();
        for rec in records {
            det.process_record_owned(rec);
        }
        det.advance_clock(fw.scenario.end);
        let reports = det.finalize();
        let secs = t.elapsed().as_secs_f64();
        assert!(!reports.is_empty(), "fusion bench world must detect its staged drain");
        (secs, n)
    };
    let fusion_eps = fusion_events as f64 / fusion_secs;

    eprintln!("[bench: serve daemon, ingest->commit->alert->publish...]");
    let (serve_secs, serve_events, serve_commits) = {
        use kepler::serve::{Daemon, DaemonConfig};
        let study = AmsIxScenario::new(41).with_config(WorldConfig::tiny(41)).build();
        let records = study.scenario.records();
        let n = records.len() as u64;
        let dir = std::env::temp_dir().join(format!("kepler-serve-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let detector = detector_for(&study.scenario, KeplerConfig::default());
        let mut daemon =
            Daemon::new(detector, &DaemonConfig::new(dir.clone())).expect("open bench store");
        let t = Instant::now();
        daemon.run_stream(records).expect("serve bench ingest");
        let (_, summary) = daemon.finish().expect("serve bench finish");
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(summary.events, n, "daemon must ingest every record");
        assert!(summary.commits > 0, "serve bench must commit bins");
        let _ = std::fs::remove_dir_all(&dir);
        (secs, n, summary.commits)
    };
    let serve_eps = serve_events as f64 / serve_secs;

    eprintln!("[bench: query surface, concurrent readers against live ingest...]");
    let (query_secs, query_reads) = {
        use kepler::serve::{Daemon, DaemonConfig};
        use std::sync::atomic::{AtomicBool, Ordering};
        let study = AmsIxScenario::new(41).with_config(WorldConfig::tiny(41)).build();
        // Cycle the stream with a per-cycle time shift so bins keep
        // closing (and the view keeps swapping) for the whole load
        // window — long enough that the readers log millions of status
        // reads against full-rate ingest.
        let base = study.scenario.records();
        let span = {
            let first = base.first().map(|r| r.time).unwrap_or(0);
            let last = base.last().map(|r| r.time).unwrap_or(0);
            (last - first + 600).next_multiple_of(300)
        };
        let records: Vec<_> = (0..16u64)
            .flat_map(|cycle| {
                base.iter().cloned().map(move |mut r| {
                    r.time += cycle * span;
                    r
                })
            })
            .collect();
        let dir = std::env::temp_dir().join(format!("kepler-query-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let detector = detector_for(&study.scenario, KeplerConfig::default());
        let mut daemon =
            Daemon::new(detector, &DaemonConfig::new(dir.clone())).expect("open bench store");
        let view = daemon.view();
        let stop = AtomicBool::new(false);
        let t = Instant::now();
        let mut reads = 0u64;
        std::thread::scope(|s| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let view = std::sync::Arc::clone(&view);
                    let stop = &stop;
                    s.spawn(move || {
                        let mut n = 0u64;
                        let mut live = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            // A full status read: load the shared view,
                            // look a scope up.
                            let v = view.load();
                            live += v.live().is_empty() as u64;
                            n += 1;
                        }
                        (n, live)
                    })
                })
                .collect();
            daemon.run_stream(records).expect("query bench ingest");
            stop.store(true, Ordering::Relaxed);
            for r in readers {
                reads += r.join().expect("reader thread").0;
            }
        });
        let secs = t.elapsed().as_secs_f64();
        daemon.finish().expect("query bench finish");
        let _ = std::fs::remove_dir_all(&dir);
        (secs, reads)
    };
    let query_rps = query_reads as f64 / query_secs;

    let rss = peak_rss_bytes();
    let json = format!(
        "{{\n  \"bench\": \"pipeline_1m\",\n  \"events\": {N},\n  \"bins_closed\": {single_bins},\n  \"single_shard\": {{ \"seconds\": {single_secs:.3}, \"events_per_sec\": {single_eps:.0} }},\n  \"sharded_8\": {{ \"seconds\": {sharded_secs:.3}, \"events_per_sec\": {sharded_eps:.0} }},\n  \"parallel_8x8\": {{ \"seconds\": {parallel_secs:.3}, \"events_per_sec\": {parallel_eps:.0} }},\n  \"decode\": {{ \"seconds\": {decode_secs:.3}, \"records\": {DECODE_RECS}, \"decode_recs_per_sec\": {decode_rps:.0} }},\n  \"probe\": {{ \"seconds\": {probe_secs:.3}, \"verdicts\": {probe_verdicts}, \"probe_verdicts_per_sec\": {probe_vps:.0} }},\n  \"probe_batched\": {{ \"seconds\": {batched_secs:.3}, \"verdicts\": {batched_verdicts}, \"probe_batched_verdicts_per_sec\": {batched_vps:.0} }},\n  \"probe_faulty\": {{ \"seconds\": {faulty_secs:.3}, \"verdicts\": {faulty_verdicts}, \"probe_faulty_verdicts_per_sec\": {faulty_vps:.0} }},\n  \"fuzz\": {{ \"seconds\": {fuzz_secs:.3}, \"worlds\": {FUZZ_WORLDS}, \"fuzz_worlds_per_sec\": {fuzz_wps:.1} }},\n  \"fusion\": {{ \"seconds\": {fusion_secs:.3}, \"events\": {fusion_events}, \"fusion_events_per_sec\": {fusion_eps:.0} }},\n  \"serve\": {{ \"seconds\": {serve_secs:.3}, \"events\": {serve_events}, \"commits\": {serve_commits}, \"serve_events_per_sec\": {serve_eps:.0} }},\n  \"query\": {{ \"seconds\": {query_secs:.3}, \"reads\": {query_reads}, \"query_reads_per_sec\": {query_rps:.0} }},\n  \"peak_rss_bytes\": {}\n}}\n",
        rss.map(|b| b.to_string()).unwrap_or_else(|| "null".into()),
    );
    std::fs::write("BENCH_monitor.json", &json).expect("write BENCH_monitor.json");
    println!("{json}");
    println!("wrote BENCH_monitor.json");
}

/// Replays one fuzzer world — from its seed or from a serialized
/// `target/fuzz-artifacts/seed-<N>.script` — prints the script, the
/// ground truth, every detector report and every invariant violation,
/// and exits non-zero when any invariant failed. This is the
/// one-command local reproduction for a CI scenario-fuzz failure.
fn fuzz_replay(verdict: kepler::fuzz_harness::FuzzVerdict) -> ! {
    println!("================ fuzz world: seed {} ================", verdict.script.seed);
    println!("{}", verdict.script.render());
    println!("ground truth ({} outage(s)):", verdict.truth.len());
    for t in &verdict.truth {
        println!(
            "  {:?} start={} duration={}s aliases={:?}",
            t.scope, t.start, t.duration, t.aliases
        );
    }
    println!("detector reports ({}):", verdict.reports.len());
    for r in &verdict.reports {
        let sources: Vec<String> = r
            .sources
            .iter()
            .map(|s| format!("{}@{}({:.2})", s.kind, s.first_bin, s.confidence))
            .collect();
        println!(
            "  {:?} start={} end={:?} state={:?} oscillations={} validation={:?} dataplane={:?} sources=[{}]",
            r.scope,
            r.start,
            r.end,
            r.state,
            r.oscillations,
            r.validation,
            r.dataplane_confirmed,
            sources.join(", ")
        );
    }
    println!(
        "signal counters: forecast={} delay={} fused_opens={} corroborations={} suppressed={}",
        verdict.counts.forecast_signals,
        verdict.counts.delay_signals,
        verdict.counts.fused_opens,
        verdict.counts.fused_corroborations,
        verdict.counts.aux_suppressed
    );
    println!("detection power:");
    print!("{}", kepler::fuzz_harness::PowerReport::from_verdicts([&verdict]).render());
    if verdict.ok() {
        println!("invariants: OK");
        std::process::exit(0);
    }
    println!("invariant violations ({}):", verdict.violations.len());
    for v in &verdict.violations {
        println!("  {v}");
    }
    std::process::exit(1);
}

// ---------------------------------------------------------------------------
// Service subcommands: serve / query / stats over a kepler-serve store
// ---------------------------------------------------------------------------

fn store_dir_from(args: &[String], default: &str) -> std::path::PathBuf {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--store" {
            if let Some(dir) = it.next() {
                return std::path::PathBuf::from(dir);
            }
        }
    }
    std::path::PathBuf::from(default)
}

/// Runs the detector as a daemon over the AMS-IX case-study stream:
/// durable store under `--store`, alert fan-out to stderr and
/// `<store>/alerts.log`, final report summary. A second invocation over
/// the same store recovers and reports what the first one committed.
fn serve_cmd(args: &[String]) -> ! {
    use kepler::serve::{Channel, Daemon, DaemonConfig, FileSink, LogSink, TokenBucket};
    let store = store_dir_from(args, "target/kepler-serve");
    let mut seed = 7u64;
    let mut compact = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N"),
            "--compact" => compact = true,
            "--store" => {
                it.next();
            }
            other => {
                eprintln!("serve: unknown argument {other}");
                std::process::exit(1);
            }
        }
    }
    eprintln!("[serve: building AMS-IX scenario (seed {seed})...]");
    let cfg = if compact { WorldConfig::tiny(seed) } else { WorldConfig::small(seed) };
    let study = AmsIxScenario::new(seed).with_config(cfg).build();
    let detector = detector_for(&study.scenario, KeplerConfig::default());
    let config = DaemonConfig::new(store.clone());
    let mut daemon = match Daemon::new(detector, &config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("serve: cannot open store {}: {e}", store.display());
            std::process::exit(1);
        }
    };
    let rec = daemon.recovery().clone();
    if rec.had_snapshot || rec.frames_applied > 0 {
        eprintln!(
            "[serve: recovered snapshot_seq={} +{} WAL frame(s), {} damaged tail byte(s)]",
            rec.snapshot_seq, rec.frames_applied, rec.dropped_bytes
        );
    }
    daemon.add_channel(Channel::new("log", Box::new(LogSink), TokenBucket::new(16, 60)));
    daemon.add_channel(Channel::new(
        "file",
        Box::new(FileSink::new(store.join("alerts.log"))),
        TokenBucket::new(64, 1),
    ));
    let records = study.scenario.records();
    eprintln!("[serve: ingesting {} records...]", records.len());
    if let Err(e) = daemon.run_stream(records) {
        eprintln!("serve: ingest failed: {e}");
        std::process::exit(1);
    }
    match daemon.finish() {
        Ok((reports, summary)) => {
            println!(
                "serve: {} events, {} commits, {} transitions; {} finalized incident(s)",
                summary.events,
                summary.commits,
                summary.transitions,
                reports.len()
            );
            for r in &reports {
                println!("  {r}");
            }
            println!("store: {}", store.display());
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve: finish failed: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_scope(spec: &str) -> Option<OutageScope> {
    use kepler::topology::{CityId, FacilityId, IxpId};
    if let Ok(n) = spec.parse::<u32>() {
        return Some(OutageScope::Facility(FacilityId(n)));
    }
    let (kind, id) = spec.split_once(':')?;
    let id: u32 = id.parse().ok()?;
    match kind {
        "facility" | "fac" => Some(OutageScope::Facility(FacilityId(id))),
        "ixp" => Some(OutageScope::Ixp(IxpId(id))),
        "city" => Some(OutageScope::City(CityId(id))),
        _ => None,
    }
}

/// Reads one scope's status from a serve store. Scripting exit codes:
/// 0 = up (no live incident), 2 = down (open), 3 = recovering, 1 = error.
fn query_cmd(args: &[String]) -> ! {
    use kepler::core::events::IncidentState;
    use kepler::serve::{IncidentStore, StatusView};
    let store = store_dir_from(args, "target/kepler-serve");
    let mut spec: Option<&String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                it.next();
            }
            other if !other.starts_with("--") => spec = spec.or(Some(a)),
            _ => {}
        }
    }
    let Some(spec) = spec else {
        eprintln!("query: missing scope (facility:N | ixp:N | city:N | N)");
        std::process::exit(1);
    };
    let Some(scope) = parse_scope(spec) else {
        eprintln!("query: cannot parse scope {spec:?}");
        std::process::exit(1);
    };
    let (state, last_bin, _) = match IncidentStore::recover_state(&store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("query: cannot read store {}: {e}", store.display());
            std::process::exit(1);
        }
    };
    let view = StatusView::from_state(&state, last_bin, 0);
    match view.status(scope) {
        None => {
            println!("{scope}: up (no incident on record, as of bin {last_bin})");
            std::process::exit(0);
        }
        Some(s) => {
            let since = match s.end {
                Some(end) => format!("{} .. {}", s.started, end),
                None => format!("since {}", s.started),
            };
            println!(
                "{scope}: {} ({since}; near={} far={} oscillations={} validation={}; as of bin {last_bin})",
                s.state, s.affected_near, s.affected_far, s.oscillations, s.validation
            );
            match s.state {
                IncidentState::Open => std::process::exit(2),
                IncidentState::Recovering => std::process::exit(3),
                IncidentState::Closed => std::process::exit(0),
            }
        }
    }
}

/// Summarizes a serve store; `--dump PATH` writes the recovered state as
/// a standalone snapshot file (same format as `snapshot.bin`).
fn stats_cmd(args: &[String]) -> ! {
    use kepler::core::events::IncidentState;
    use kepler::serve::{IncidentStore, StatusView};
    let store = store_dir_from(args, "target/kepler-serve");
    let mut dump: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--dump" {
            dump = it.next().cloned();
        }
    }
    let (state, last_bin, rec) = match IncidentStore::recover_state(&store) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("stats: cannot read store {}: {e}", store.display());
            std::process::exit(1);
        }
    };
    let view = StatusView::from_state(&state, last_bin, rec.snapshot_seq);
    let count = |want: IncidentState| view.all().iter().filter(|s| s.state == want).count();
    println!("store: {}", store.display());
    println!(
        "recovery: snapshot={} (seq {}), {} WAL frame(s) applied, {} skipped, {} damaged tail byte(s)",
        rec.had_snapshot, rec.snapshot_seq, rec.frames_applied, rec.frames_skipped, rec.dropped_bytes
    );
    println!("as of bin {last_bin}: {} scope(s) on record", view.len());
    println!(
        "  open {}  recovering {}  closed {}",
        count(IncidentState::Open),
        count(IncidentState::Recovering),
        count(IncidentState::Closed)
    );
    for s in view.live() {
        println!("  live: {} {} since {}", s.scope, s.state, s.started);
    }
    if let Some(path) = dump {
        let bytes = kepler::serve::store::encode_snapshot(&state, rec.snapshot_seq, last_bin);
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("stats: cannot write {path}: {e}");
            std::process::exit(1);
        }
        println!("dumped {} byte snapshot to {path}", bytes.len());
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Service subcommands take their own flags; dispatch before the
    // experiment-flag loop.
    match args.first().map(String::as_str) {
        Some("serve") => serve_cmd(&args[1..]),
        Some("query") => query_cmd(&args[1..]),
        Some("stats") => stats_cmd(&args[1..]),
        _ => {}
    }
    let mut ctx = Ctx { seed: 31, compact: false };
    let mut wanted: Vec<String> = Vec::new();
    let mut fused = false;
    let mut fuzz_seed: Option<u64> = None;
    let mut fuzz_script: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                ctx.seed = it.next().and_then(|s| s.parse().ok()).expect("--seed N");
            }
            "--compact" => ctx.compact = true,
            "--bench" => {
                bench_monitor_json();
                return;
            }
            "--fused" => fused = true,
            "--fuzz-seed" => {
                fuzz_seed = Some(it.next().and_then(|s| s.parse().ok()).expect("--fuzz-seed N"));
            }
            "--fuzz-script" => {
                fuzz_script = Some(it.next().expect("--fuzz-script PATH").clone());
            }
            other => wanted.push(other.to_string()),
        }
    }
    if let Some(seed) = fuzz_seed {
        fuzz_replay(if fused {
            kepler::fuzz_harness::check_seed_fused(seed)
        } else {
            kepler::fuzz_harness::check_seed(seed)
        });
    }
    if let Some(path) = fuzz_script {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let script = kepler::netsim::fuzz::ScenarioScript::parse(&text)
            .unwrap_or_else(|e| panic!("parse {path}: {e}"));
        fuzz_replay(if fused {
            kepler::fuzz_harness::check_world_fused(&script.build())
        } else {
            kepler::fuzz_harness::check_script(&script)
        });
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro [--seed N] [--compact] [--bench] [--fuzz-seed N] [--fuzz-script PATH] <exp>...\n       repro serve [--store DIR] [--seed N] [--compact]\n       repro query <facility:N|ixp:N|city:N|N> [--store DIR]\n       repro stats [--store DIR] [--dump PATH]\n  exps: fig1 fig3 fig5 fig7a fig7b fig7c tab1 fig8a fig8b fig8c fig9a fig9b fig9c fig10a fig10b fig10c fig10d val dict all\n  --bench: run the monitor throughput benchmark and write BENCH_monitor.json\n  --fuzz-seed N: replay generated fuzz world N through the invariant checker (exit 1 on violation)\n  --fuzz-script PATH: replay a serialized fuzz artifact (target/fuzz-artifacts/seed-N.script)\n  --fused: replay fuzz worlds with the multi-signal detector (forecast + delay fusion)\n  serve: run the detector as a daemon over the AMS-IX scenario with a durable store and alert log\n  query: read a scope's status from a serve store (exit 0=up, 2=down, 3=recovering, 1=error)\n  stats: summarize a serve store; --dump writes a serialized snapshot"
        );
        std::process::exit(2);
    }
    if wanted.iter().any(|w| w == "all") {
        wanted = [
            "fig1", "fig3", "fig5", "fig7a", "fig7b", "fig7c", "tab1", "fig8a", "fig8b", "fig8c",
            "fig9a", "fig9b", "fig9c", "fig10a", "fig10b", "fig10c", "fig10d", "val", "dict",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut cache = Cache::default();
    for w in &wanted {
        println!("\n================ {w} ================");
        match w.as_str() {
            "fig1" => fig1(&ctx, &mut cache),
            "fig3" => fig3(&ctx),
            "fig5" => fig5(&ctx),
            "fig7a" => fig7a(&ctx),
            "fig7b" => fig7b(&ctx),
            "fig7c" => fig7c(&ctx, &mut cache),
            "tab1" => tab1(&ctx),
            "fig8a" => fig8a(&ctx),
            "fig8b" => fig8b(&ctx, &mut cache),
            "fig8c" => fig8c(&ctx, &mut cache),
            "fig9a" => fig9a(&ctx, &mut cache),
            "fig9b" => fig9b(&ctx, &mut cache),
            "fig9c" => fig9c(&ctx, &mut cache),
            "fig10a" => fig10a(&ctx, &mut cache),
            "fig10b" => fig10b(&ctx, &mut cache),
            "fig10c" => fig10c(&ctx, &mut cache),
            "fig10d" => fig10d(&ctx, &mut cache),
            "val" => val(&ctx, &mut cache),
            "dict" => dict(&ctx),
            other => eprintln!("unknown experiment: {other}"),
        }
    }
}

fn world_for(ctx: &Ctx) -> World {
    if ctx.compact {
        World::generate(WorldConfig::small(ctx.seed))
    } else {
        World::generate(WorldConfig::paper_scale(ctx.seed))
    }
}

fn mined_dict_for(
    world: &World,
    seed: u64,
) -> (kepler::docmine::CommunityDictionary, kepler::topology::ColocationMap) {
    let corpus = kepler::docmine::corpus::render_corpus(&world.schemes, seed ^ 0xD1C7);
    let colo = world.detector_colomap();
    let miner = kepler::docmine::dictionary::DictionaryMiner::new(&colo, &world.gazetteer);
    let (mut dict, _) = miner.mine(&corpus);
    dict.add_route_servers_from(&colo);
    (dict, colo)
}

// ---------------------------------------------------------------------------
// Figure 1 — detected vs reported outages per semester
// ---------------------------------------------------------------------------
fn fig1(ctx: &Ctx, cache: &mut Cache) {
    let run = cache.five(ctx);
    let reported = run.scenario.reported();
    let semester = |t: u64| (t.saturating_sub(STUDY_START)) / (182 * 86_400 + 43_200);
    let mut bins: BTreeMap<u64, (usize, usize, usize)> = BTreeMap::new();
    for r in &run.reports {
        let e = bins.entry(semester(r.start)).or_default();
        match r.scope {
            OutageScope::Ixp(_) => e.1 += 1,
            _ => e.0 += 1,
        }
    }
    for rep in &reported {
        if let Some(gt) = run.scenario.output.ground_truth.iter().find(|g| g.id == rep.event_id) {
            bins.entry(semester(gt.start)).or_default().2 += 1;
        }
    }
    println!("semester | facilities | IXPs | reported   (paper: peak in 2012H2 = Sandy)");
    for (s, (fac, ixp, rep)) in &bins {
        println!(
            "{:>8} | {:>10} | {:>4} | {:>8}",
            format!("{}H{}", 2012 + s / 2, 1 + s % 2),
            fac,
            ixp,
            rep
        );
    }
    let total = run.reports.len();
    println!(
        "\ntotal detected {} vs reported {} -> {:.1}x under-reporting (paper: 159 vs ~24%, 4x)",
        total,
        reported.len(),
        total as f64 / reported.len().max(1) as f64
    );
}

// ---------------------------------------------------------------------------
// Figure 3 — growth of community adoption 2011–2016
// ---------------------------------------------------------------------------
fn fig3(ctx: &Ctx) {
    let world = world_for(ctx);
    // Adoption-year model: each scheme-running AS starts using communities
    // in some year; the population roughly doubles over 2011–2016 (paper:
    // 2.5K -> 5.5K ASes, 17K -> 50K+ values).
    let cumulative = [0.42f64, 0.50, 0.60, 0.70, 0.84, 1.00];
    let hash01 = |asn: u32| -> f64 {
        let mut x = (asn as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        (x % 10_000) as f64 / 10_000.0
    };
    println!("year | ASes using communities | unique community values");
    for (i, year) in (2011..=2016).enumerate() {
        let mut ases = 0usize;
        let mut values = 0usize;
        for s in &world.schemes {
            if hash01(s.asn.0) <= cumulative[i] {
                ases += 1;
                values += s.entries.len() + s.action_values.len();
            }
        }
        println!("{year} | {ases:>22} | {values:>23}");
    }
    println!("(paper: both roughly double over the window; values triple)");
}

// ---------------------------------------------------------------------------
// Figure 5 — geographic spread of trackable infrastructure
// ---------------------------------------------------------------------------
fn fig5(ctx: &Ctx) {
    let world = world_for(ctx);
    let (dict, colo) = mined_dict_for(&world, ctx.seed);
    let mut per: BTreeMap<Continent, (usize, usize, usize)> = BTreeMap::new();
    let mut total = 0usize;
    for e in dict.entries() {
        let cont = match e.tag {
            LocationTag::City(c) => world.gazetteer.by_index(c.0 as usize).map(|g| g.continent),
            LocationTag::Facility(f) => colo.facility(f).map(|f| f.continent),
            LocationTag::Ixp(x) => colo.ixp(x).map(|x| x.continent),
        };
        let Some(cont) = cont else { continue };
        let slot = per.entry(cont).or_default();
        match e.tag {
            LocationTag::City(_) => slot.0 += 1,
            LocationTag::Ixp(_) => slot.1 += 1,
            LocationTag::Facility(_) => slot.2 += 1,
        }
        total += 1;
    }
    println!("continent     | city tags | IXP tags | facility tags | share");
    for c in Continent::ALL {
        let (ct, ix, fa) = per.get(&c).copied().unwrap_or_default();
        println!(
            "{:<13} | {:>9} | {:>8} | {:>13} | {}",
            c.to_string(),
            ct,
            ix,
            fa,
            pct((ct + ix + fa) as f64 / total.max(1) as f64)
        );
    }
    println!("(paper: Europe 66%, North America 24.5%, Africa+South America ~2%)");
}

// ---------------------------------------------------------------------------
// Figure 7a — outage signals vs detection threshold
// ---------------------------------------------------------------------------
fn fig7a(ctx: &Ctx) {
    // The sweep always runs on the compact scenario: 6 full detector runs.
    let scenario = build_five_year(FiveYearConfig::compact(ctx.seed));
    println!("threshold | facility/IXP-level | AS-level | link-level");
    for t in [0.02, 0.05, 0.10, 0.15, 0.25, 0.50] {
        let config = KeplerConfig::default().with_t_fail(t);
        let mut detector = detector_for(&scenario, config);
        for r in scenario.records() {
            detector.process_record(&r);
        }
        let counts = detector.class_counts();
        let reports = detector.finish();
        println!(
            "{:>9} | {:>18} | {:>8} | {:>10}",
            pct(t),
            reports.len(),
            counts.as_level,
            counts.link_level
        );
    }
    println!("(paper: facility/IXP-level plateau from 2% to 15%, drop beyond; 10% chosen)");
}

// ---------------------------------------------------------------------------
// Figure 7b — trackable vs non-trackable facilities
// ---------------------------------------------------------------------------
fn fig7b(ctx: &Ctx) {
    let world = world_for(ctx);
    let (dict, _) = mined_dict_for(&world, ctx.seed);
    let mut small = 0usize; // <6 members at all
    let mut trackable = 0usize;
    let mut missed = 0usize; // >=6 members but <6 mapped
    let mut big_total = 0usize;
    let mut big_trackable = 0usize;
    let mut scatter: Vec<(usize, usize)> = Vec::new();
    for f in world.colo.facilities() {
        let members = world.colo.members_of_facility(f.id);
        let mapped = members.iter().filter(|a| a.is_16bit() && dict.covers_asn(a.0 as u16)).count();
        scatter.push((members.len(), mapped));
        if members.len() < 6 {
            small += 1;
        } else if mapped >= 6 {
            trackable += 1;
        } else {
            missed += 1;
        }
        if members.len() >= 20 {
            big_total += 1;
            if mapped >= 6 {
                big_trackable += 1;
            }
        }
    }
    println!("facilities total: {}", world.colo.facilities().len());
    println!("  <6 members (untrackable in principle): {small}");
    println!("  >=6 members, >=6 mapped (trackable):    {trackable}");
    println!(
        "  >=6 members, <6 mapped (missed):        {missed} ({})",
        pct(missed as f64 / (trackable + missed).max(1) as f64)
    );
    println!(
        "  >=20 members covered: {big_trackable}/{big_total} ({})",
        pct(big_trackable as f64 / big_total.max(1) as f64)
    );
    scatter.sort_by_key(|(m, _)| std::cmp::Reverse(*m));
    println!("\n  members -> mapped (top facilities):");
    for (m, mapped) in scatter.iter().take(10) {
        println!("  {m:>5} -> {mapped}");
    }
    println!("(paper: 1,209/1,742 facilities <6 members; 533 trackable in principle, 130 missed; 98% of >=20-member facilities covered)");
}

// ---------------------------------------------------------------------------
// Figure 7c — fraction of paths with location communities, per month
// ---------------------------------------------------------------------------
fn fig7c(ctx: &Ctx, cache: &mut Cache) {
    let run = cache.five(ctx);
    let dict = run.scenario.mined_dictionary();
    // Month buckets over the final year of the study.
    let year_start = STUDY_START + 4 * 365 * 86_400;
    let mut buckets: BTreeMap<u64, (usize, usize, usize, usize)> = BTreeMap::new();
    for r in run.scenario.output.records.iter() {
        if r.time < year_start {
            continue;
        }
        let month = (r.time - year_start) / (30 * 86_400);
        if month >= 12 {
            continue;
        }
        if let kepler::bgpstream::RecordPayload::Update(u) = &r.payload {
            let Some(attrs) = &u.attrs else { continue };
            let located = attrs.communities.iter().any(|c| dict.locate(*c).is_some());
            for p in &u.announced {
                let e = buckets.entry(month).or_default();
                if p.is_ipv4() {
                    e.0 += 1;
                    e.1 += usize::from(located);
                } else {
                    e.2 += 1;
                    e.3 += usize::from(located);
                }
            }
        }
    }
    println!("month | IPv4 located | IPv6 located");
    for (m, (v4, v4l, v6, v6l)) in &buckets {
        println!(
            "{:>5} | {:>12} | {:>12}",
            m + 1,
            pct(*v4l as f64 / (*v4).max(1) as f64),
            pct(*v6l as f64 / (*v6).max(1) as f64)
        );
    }
    println!("(paper: ~50% of IPv4 and ~30% of IPv6 updates carry location communities)");
}

// ---------------------------------------------------------------------------
// Table 1 — facility coverage per continent
// ---------------------------------------------------------------------------
fn tab1(ctx: &Ctx) {
    let world = world_for(ctx);
    let (dict, _) = mined_dict_for(&world, ctx.seed);
    println!("continent     |  all | >5 members | trackable");
    for cont in Continent::ALL {
        let mut all = 0usize;
        let mut big = 0usize;
        let mut trackable = 0usize;
        for f in world.colo.facilities().iter().filter(|f| f.continent == cont) {
            all += 1;
            let members = world.colo.members_of_facility(f.id);
            if members.len() > 5 {
                big += 1;
                let mapped =
                    members.iter().filter(|a| a.is_16bit() && dict.covers_asn(a.0 as u16)).count();
                if mapped >= 6 {
                    trackable += 1;
                }
            }
        }
        println!("{:<13} | {all:>4} | {big:>10} | {trackable:>9}", cont.to_string());
    }
    println!("(paper: Europe 878/305/243, N.America 529/132/105, Asia/Pac 233/70/46, S.America 76/19/11, Africa 26/6/4)");
}

// ---------------------------------------------------------------------------
// Figure 8a — ground truth vs communities-mapped interconnection facilities
// ---------------------------------------------------------------------------
fn fig8a(ctx: &Ctx) {
    let world = world_for(ctx);
    // The four best-connected scheme-running ASes play the ground-truth
    // providers (the paper got private data from 3 ISPs + 1 CDN).
    let mut candidates: Vec<usize> =
        (0..world.ases.len()).filter(|&i| world.ases[i].scheme.is_some()).collect();
    candidates.sort_by_key(|&i| std::cmp::Reverse(world.ases[i].neighbors.len()));
    let chosen = &candidates[..candidates.len().min(4)];
    let mut gt_hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut mapped_hist: BTreeMap<usize, usize> = BTreeMap::new();
    let mut links = 0usize;
    let mut fully_missed = 0usize;
    for &i in chosen {
        let node = &world.ases[i];
        let scheme = node.scheme.as_ref().expect("chosen have schemes");
        let tagged: std::collections::BTreeSet<_> = scheme
            .entries
            .iter()
            .filter_map(|e| match &e.target {
                kepler::docmine::SchemeTarget::Facility { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        // City/IXP-granularity entries still locate the link coarsely; a
        // link counts as mapped if any of its facilities is tagged or the
        // scheme has any entry at all covering the near side.
        for (_, adj_idx) in &node.neighbors {
            let adj = &world.adjacencies[adj_idx.0 as usize];
            let gt: std::collections::BTreeSet<_> = adj
                .instances
                .iter()
                .flat_map(|inst| [inst.a_side.facility, inst.b_side.facility])
                .flatten()
                .collect();
            if gt.is_empty() {
                continue;
            }
            links += 1;
            let mapped = gt.iter().filter(|f| tagged.contains(f)).count();
            *gt_hist.entry(gt.len()).or_default() += 1;
            *mapped_hist.entry(mapped).or_default() += 1;
            if mapped == 0 {
                fully_missed += 1;
            }
        }
    }
    println!("facilities per AS link | ground truth | communities-mapped");
    let max = gt_hist.keys().max().copied().unwrap_or(0);
    for k in 0..=max {
        println!(
            "{:>22} | {:>12} | {:>18}",
            k,
            gt_hist.get(&k).copied().unwrap_or(0),
            mapped_hist.get(&k).copied().unwrap_or(0)
        );
    }
    println!(
        "\nlinks: {links}; links with no facility-granular tag: {fully_missed} ({}) — these fall back to city/IXP tags",
        pct(fully_missed as f64 / links.max(1) as f64)
    );
    println!("(paper: <5% of interconnections missed; most AS pairs use a single location)");
}

// ---------------------------------------------------------------------------
// Figure 8b — outage duration CDF, facilities vs IXPs
// ---------------------------------------------------------------------------
fn fig8b(ctx: &Ctx, cache: &mut Cache) {
    let run = cache.five(ctx);
    let mut fac: Vec<f64> = Vec::new();
    let mut ixp: Vec<f64> = Vec::new();
    for r in &run.reports {
        let Some(d) = r.duration() else { continue };
        match r.scope {
            OutageScope::Ixp(_) => ixp.push(d as f64 / 60.0),
            _ => fac.push(d as f64 / 60.0),
        }
    }
    fac.sort_by(|a, b| a.partial_cmp(b).unwrap());
    ixp.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("quantile | facility (min) | IXP (min)");
    for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
        println!("{:>8} | {:>14.0} | {:>9.0}", q, quantile(&fac, q), quantile(&ixp, q));
    }
    let mut all: Vec<f64> = fac.iter().chain(ixp.iter()).copied().collect();
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let over_hour = all.iter().filter(|&&d| d > 60.0).count();
    println!(
        "\nmedian {:.0} min; {}/{} over an hour ({})",
        quantile(&all, 0.5),
        over_hour,
        all.len(),
        pct(over_hour as f64 / all.len().max(1) as f64)
    );
    // Uptime lines: 99.9/99.99/99.999% of a year in minutes.
    for (nines, mins) in [("99.9%", 525.6), ("99.99%", 52.56), ("99.999%", 5.256)] {
        let beyond = all.iter().filter(|&&d| d > mins).count();
        println!("  outages breaking {nines} yearly uptime ({mins:.1} min downtime): {beyond}");
    }
    println!("(paper: median 17 min, 40% > 1h, IXP outages longer than facility outages)");
}

// ---------------------------------------------------------------------------
// Figure 8c — AMS-IX outage through three community granularities
// ---------------------------------------------------------------------------
fn fig8c(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.amsix(ctx);
    let scenario = &study.scenario;
    let mut detector = detector_for(scenario, KeplerConfig::default());
    let tags = [
        LocationTag::Facility(study.sara_facility),
        LocationTag::Ixp(study.amsix),
        LocationTag::City(scenario.world.colo.ixp(study.amsix).unwrap().city),
    ];
    for t in tags {
        detector.watch(t);
    }
    for r in scenario.records() {
        detector.process_record(&r);
    }
    println!("t-rel(s) | facility | ixp    | city   (fraction of stable paths changed)");
    let series: Vec<Vec<(u64, f64)>> =
        tags.iter().map(|t| detector.watch_series(*t).unwrap_or(&[]).to_vec()).collect();
    let mut rows: BTreeMap<u64, [f64; 3]> = BTreeMap::new();
    for (i, s) in series.iter().enumerate() {
        for (t, f) in s {
            if *t + 900 >= OUTAGE_START && *t <= OUTAGE_START + OUTAGE_DURATION + 1200 {
                rows.entry(*t).or_insert([0.0; 3])[i] = *f;
            }
        }
    }
    for (t, v) in &rows {
        println!(
            "{:>8} | {:>8.3} | {:>6.3} | {:>6.3}",
            *t as i64 - OUTAGE_START as i64,
            v[0],
            v[1],
            v[2]
        );
    }
    let maxima: Vec<f64> =
        (0..3).map(|i| rows.values().map(|v| v[i]).fold(0.0f64, f64::max)).collect();
    println!(
        "\npeak change fraction: facility {:.2}, ixp {:.2}, city {:.2}",
        maxima[0], maxima[1], maxima[2]
    );
    println!("(paper: visible at all granularities; IXP-tagged paths show the deepest drop)");
}

// ---------------------------------------------------------------------------
// Figure 9a/9b/9c — the London dual-outage case
// ---------------------------------------------------------------------------
fn fig9a(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.london(ctx);
    let scenario = &study.scenario;
    let mut detector = detector_for(scenario, KeplerConfig::default());
    let tags = [
        LocationTag::Facility(study.th_east),
        LocationTag::Ixp(study.linx),
        LocationTag::City(study.city),
    ];
    for t in tags {
        detector.watch(t);
    }
    for r in scenario.records() {
        detector.process_record(&r);
    }
    println!("time(rel to A, h) | TH-East | IXP    | city   | marker");
    let series: Vec<Vec<(u64, f64)>> =
        tags.iter().map(|t| detector.watch_series(*t).unwrap_or(&[]).to_vec()).collect();
    let mut rows: BTreeMap<u64, [f64; 3]> = BTreeMap::new();
    for (i, s) in series.iter().enumerate() {
        for (t, f) in s {
            if *f > 0.0 {
                rows.entry(*t).or_insert([0.0; 3])[i] = *f;
            }
        }
    }
    for (t, v) in &rows {
        let marker = if t.abs_diff(study.time_a) < 900 {
            "A"
        } else if t.abs_diff(study.time_b) < 900 {
            "B (AS-level)"
        } else if t.abs_diff(study.time_c) < 900 {
            "C"
        } else {
            ""
        };
        println!(
            "{:>17.2} | {:>7.3} | {:>6.3} | {:>6.3} | {marker}",
            (*t as i64 - study.time_a as i64) as f64 / 3600.0,
            v[0],
            v[1],
            v[2]
        );
    }
    let reports = detector.finish();
    println!("\nlocalized outages:");
    for r in &reports {
        println!("  {r}");
    }
    println!("(paper: A and C are PoP-level at two different buildings; B is AS-level only)");
}

fn fig9b(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.london(ctx);
    let scenario = &study.scenario;
    let reports = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    let world = &scenario.world;
    let mut facs = world.colo.facilities_in_city(study.city);
    facs.sort_by_key(|f| std::cmp::Reverse(world.colo.members_of_facility(*f).len()));
    facs.truncate(6);
    println!("facility (in the outage city)  | members affected at A | at C");
    for f in &facs {
        let members = world.colo.members_of_facility(*f);
        let frac = |t: u64| -> f64 {
            let report = reports.iter().find(|r| r.start.abs_diff(t) < 900);
            match report {
                None => 0.0,
                Some(r) => {
                    let aff = r.affected_ases();
                    members.iter().filter(|m| aff.contains(m)).count() as f64
                        / members.len().max(1) as f64
                }
            }
        };
        let name = world.colo.facility(*f).unwrap().name.clone();
        let mark = if *f == study.tc_hex {
            " <- epicenter A"
        } else if *f == study.th_north {
            " <- epicenter C"
        } else {
            ""
        };
        println!(
            "{:<30} | {:>21} | {:>5}{mark}",
            name,
            pct(frac(study.time_a)),
            pct(frac(study.time_c))
        );
    }
    println!("(paper: the affected member subsets identify TC HEX8/9 at A and TH North at C)");
}

fn fig9c(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.london(ctx);
    let scenario = &study.scenario;
    let reports = detector_for(scenario, KeplerConfig::default()).run(scenario.records());
    let world = &scenario.world;
    let epicenter = world.gazetteer.by_index(study.city.0 as usize).unwrap().point;
    let mut dists: Vec<f64> = Vec::new();
    for r in &reports {
        for asn in r.affected_near.union(&r.affected_far) {
            if let Some(node) = world.node(*asn) {
                let home = world.gazetteer.by_index(node.info.home_city.0 as usize).unwrap();
                dists.push(epicenter.distance_km(&home.point));
            }
        }
    }
    dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
    println!("distance bucket (km) | affected ASes | CDF");
    let buckets = [
        (0.0, 50.0),
        (50.0, 500.0),
        (500.0, 1000.0),
        (1000.0, 2500.0),
        (2500.0, 5000.0),
        (5000.0, 99_999.0),
    ];
    let mut cum = 0usize;
    for (lo, hi) in buckets {
        let n = dists.iter().filter(|&&d| d >= lo && d < hi).count();
        cum += n;
        println!(
            "{:>8.0} - {:>6.0}    | {:>13} | {}",
            lo,
            hi,
            n,
            pct(cum as f64 / dists.len().max(1) as f64)
        );
    }
    let local = dists.iter().filter(|&&d| d < 50.0).count();
    println!(
        "\nlocal share: {} (paper: only 44% of affected interfaces were in London)",
        pct(local as f64 / dists.len().max(1) as f64)
    );
}

// ---------------------------------------------------------------------------
// Figure 10a/10b — BGP vs traceroute path changes around the AMS-IX outage
// ---------------------------------------------------------------------------
fn fig10a(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.amsix(ctx);
    let scenario = &study.scenario;
    let dict = scenario.mined_dictionary();
    // Replay the stream: which (collector, peer, prefix) routes carried an
    // AMS-IX-locating community before the outage, and when do they again?
    use kepler::bgpstream::RecordPayload;
    let crosses = |attrs: &kepler::bgp::PathAttributes| {
        attrs
            .communities
            .iter()
            .any(|c| matches!(dict.locate(*c), Some(LocationTag::Ixp(x)) if x == study.amsix))
    };
    let mut state: BTreeMap<(u16, std::net::IpAddr, kepler::bgp::Prefix), bool> = BTreeMap::new();
    let mut baseline: Option<Vec<(u16, std::net::IpAddr, kepler::bgp::Prefix)>> = None;
    let grid: Vec<i64> = vec![-1200, 300, 900, 1800, 3600, 2 * 3600, 4 * 3600, 8 * 3600, 20 * 3600];
    let mut gi = 0usize;
    println!("t-rel | AMS-IX-tagged routes still on baseline");
    for r in scenario.output.records.iter() {
        while gi < grid.len() && (r.time as i64) > OUTAGE_START as i64 + grid[gi] {
            let b = baseline
                .get_or_insert_with(|| state.iter().filter(|(_, &v)| v).map(|(k, _)| *k).collect());
            let on = b.iter().filter(|k| state.get(*k).copied().unwrap_or(false)).count();
            println!(
                "{:>6}s | {:>5} / {} ({})",
                grid[gi],
                on,
                b.len(),
                pct(on as f64 / b.len().max(1) as f64)
            );
            gi += 1;
        }
        if let RecordPayload::Update(u) = &r.payload {
            for p in &u.withdrawn {
                state.insert((r.collector.0, r.peer.addr, *p), false);
            }
            if let Some(attrs) = &u.attrs {
                let c = crosses(attrs);
                for p in &u.announced {
                    state.insert((r.collector.0, r.peer.addr, *p), c);
                }
            }
        }
    }
    // Flush grid points past the end of the stream (steady final state).
    while gi < grid.len() {
        if let Some(b) = &baseline {
            let on = b.iter().filter(|k| state.get(*k).copied().unwrap_or(false)).count();
            println!(
                "{:>6}s | {:>5} / {} ({})",
                grid[gi],
                on,
                b.len(),
                pct(on as f64 / b.len().max(1) as f64)
            );
        }
        gi += 1;
    }
    println!("(paper: ~4h to 95% return; ~5% never return)");
}

fn fig10b(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.amsix(ctx);
    let scenario = &study.scenario;
    let dp = DataplaneSim::new(&scenario.world, &scenario.timeline, scenario.seed);
    let pairs = dp.default_pairs(300);
    let base = dp.campaign(&pairs, OUTAGE_START - 1800);
    let crossing_pairs: Vec<_> =
        base.iter().filter(|p| p.crosses_ixp(study.amsix)).map(|p| p.pair).collect();
    println!("t-rel | traceroute paths still crossing the IXP | rerouted via transit (no IXP hop)");
    for rel in [-1800i64, 300, 1200, 2400, 3600, 2 * 3600, 4 * 3600] {
        let t = (OUTAGE_START as i64 + rel) as u64;
        let paths = dp.campaign(&crossing_pairs, t);
        let on = paths.iter().filter(|p| p.crosses_ixp(study.amsix)).count();
        let transit = paths
            .iter()
            .filter(|p| {
                !p.crosses_ixp(study.amsix)
                    && p.hops.iter().all(|h| {
                        !matches!(h.owner, kepler::netsim::dataplane::IfaceOwner::IxpLan { .. })
                    })
            })
            .count();
        println!(
            "{:>6}s | {:>4}/{} ({:>6}) | {:>4} ({})",
            rel,
            on,
            crossing_pairs.len(),
            pct(on as f64 / crossing_pairs.len().max(1) as f64),
            transit,
            pct(transit as f64 / crossing_pairs.len().max(1) as f64)
        );
    }
    println!("(paper: 85% of traceroute paths back within an hour; 75% of alternates via transit)");
}

fn fig10c(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.amsix(ctx);
    let scenario = &study.scenario;
    let dp = DataplaneSim::new(&scenario.world, &scenario.timeline, scenario.seed);
    let pairs = dp.default_pairs(300);
    let base = dp.campaign(&pairs, OUTAGE_START - 1800);
    let amsix_pairs: Vec<_> =
        base.iter().filter(|p| p.crosses_ixp(study.amsix)).map(|p| p.pair).collect();
    let others: Vec<_> =
        base.iter().filter(|p| p.reached && !p.crosses_ixp(study.amsix)).map(|p| p.pair).collect();
    let rtt_q = |pairs: &[kepler::netsim::dataplane::ProbePair], t: u64| -> (f64, f64, f64) {
        let mut v: Vec<f64> = dp.campaign(pairs, t).iter().filter_map(|p| p.rtt_ms()).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        (quantile(&v, 0.25), quantile(&v, 0.5), quantile(&v, 0.9))
    };
    println!("cohort / phase       | p25 (ms) | median (ms) | p90 (ms)");
    for (label, t) in [
        ("AMS-IX before", OUTAGE_START - 1800),
        ("AMS-IX during", OUTAGE_START + 300),
        ("AMS-IX after ", OUTAGE_START + OUTAGE_DURATION + 1200),
    ] {
        let (a, b, c) = rtt_q(&amsix_pairs, t);
        println!("{label:<20} | {a:>8.1} | {b:>11.1} | {c:>8.1}");
    }
    for (label, t) in
        [("others before", OUTAGE_START - 1800), ("others during", OUTAGE_START + 300)]
    {
        let (a, b, c) = rtt_q(&others, t);
        println!("{label:<20} | {a:>8.1} | {b:>11.1} | {c:>8.1}");
    }
    println!("(paper: median +100 ms for rerouted paths during the outage; recovers after)");
}

fn fig10d(ctx: &Ctx, cache: &mut Cache) {
    let study = cache.amsix(ctx);
    let scenario = &study.scenario;
    let ts = TrafficSim::new(&scenario.world, study.eu_ixp, study.amsix, scenario.seed);
    let series = ts.series(
        OUTAGE_START - 1800,
        OUTAGE_START + 3600,
        120,
        OUTAGE_START,
        OUTAGE_START + OUTAGE_DURATION,
    );
    println!("IPv4 traffic at the remote exchange (Gbps):");
    let values: Vec<f64> = series.iter().map(|p| p.gbps).collect();
    println!("  {}", sparkline(&values));
    for p in series.iter().step_by(5) {
        println!("  t{:+6}s {:>9.1}", p.time as i64 - OUTAGE_START as i64, p.gbps);
    }
    let impact = ts.impact_summary(OUTAGE_START, OUTAGE_START + OUTAGE_DURATION);
    println!(
        "\nmembers losing traffic: {}/{}; top-25 losers carry {} of the loss ({:.0} Gbps total)",
        impact.members_losing,
        impact.members,
        pct(impact.top25_share),
        impact.total_loss_gbps
    );
    println!("(paper: ~10% dip at an IXP 360 km away, overshoot after restore; 136/533 members, top-25 = 83%)");
}

// ---------------------------------------------------------------------------
// §5.3 validation + dictionary statistics
// ---------------------------------------------------------------------------
fn val(ctx: &Ctx, cache: &mut Cache) {
    let run = cache.five(ctx);
    let infra_truth = run.truth.iter().filter(|t| t.is_infrastructure).count();
    println!(
        "ground truth: {} infrastructure outages ({} trackable)",
        infra_truth,
        run.truth.iter().filter(|t| t.is_infrastructure && t.trackable).count()
    );
    println!("detected: {} outages", run.reports.len());
    println!(
        "validation: {} TP, {} FP, {} FN  (precision {:.2}, recall {:.2})",
        run.eval.true_positives,
        run.eval.false_positives,
        run.eval.false_negatives,
        run.eval.precision(),
        run.eval.recall()
    );
    // FP causes: fiber cuts detected at the right place count as FPs.
    let fiber_fps = run
        .eval
        .spurious
        .iter()
        .filter(|&&ri| {
            let r = &run.reports[ri];
            run.truth.iter().any(|t| {
                !t.is_infrastructure
                    && (t.scope == r.scope || t.aliases.contains(&r.scope))
                    && r.start.saturating_sub(1800) <= t.start + t.duration
                    && t.start <= r.end.unwrap_or(u64::MAX) + 1800
            })
        })
        .count();
    println!("  of the FPs, {fiber_fps} are correctly-located non-outage events (the paper's fiber-cut FP cause)");
    println!(
        "signal classes: {} link-level, {} AS-level, {} operator-level, {} PoP-level, {} unresolved",
        run.counts.link_level,
        run.counts.as_level,
        run.counts.operator_level,
        run.counts.pop_level,
        run.counts.unresolved
    );
    let reported = run.scenario.reported();
    println!(
        "publicly reported: {} -> detection advantage {:.1}x (paper: 4x)",
        reported.len(),
        run.reports.len() as f64 / reported.len().max(1) as f64
    );
    println!("(paper: 53/159 externally confirmed, 6 FP fiber cuts, 0 missed full outages, 4 missed small partials)");
}

fn dict(ctx: &Ctx) {
    let world = world_for(ctx);
    let colo = world.detector_colomap();
    let corpus = kepler::docmine::corpus::render_corpus(&world.schemes, ctx.seed ^ 0xD1C7);
    let miner = kepler::docmine::dictionary::DictionaryMiner::new(&colo, &world.gazetteer);
    let (mut dictionary, mining) = miner.mine(&corpus);
    dictionary.add_route_servers_from(&colo);
    let stats = dictionary.stats(&world.gazetteer, &colo);
    println!(
        "dictionary: {} communities by {} ASes and {} route servers",
        stats.communities, stats.ases, stats.route_servers
    );
    println!(
        "coverage: {} cities in {} countries, {} IXPs, {} facilities",
        stats.cities, stats.countries, stats.ixps, stats.facilities
    );
    println!(
        "mining: {} lines, {} outbound dropped, {} unrecognized",
        mining.lines, mining.outbound_dropped, mining.unrecognized
    );
    let report = kepler::docmine::dictionary::validate(&dictionary, &world.schemes);
    println!(
        "validation: precision {:.3}, recall {:.3} ({} wrong tags)",
        report.precision(),
        report.recall(),
        report.wrong_tag
    );
    // Attrition vs an earlier, lower-adoption epoch.
    let mut older =
        if ctx.compact { WorldConfig::small(ctx.seed) } else { WorldConfig::paper_scale(ctx.seed) };
    older.documentation_rate = 0.4;
    let old_world = World::generate(older);
    let old = kepler::docmine::dictionary::dictionary_from_schemes(&old_world.schemes, false);
    let att = kepler::docmine::attrition::compare(&old, &dictionary);
    println!(
        "attrition vs older epoch: {} shared, {} changed meaning ({}), {} retired, {} adopted",
        att.shared,
        att.changed_meaning,
        pct(att.meaning_change_rate()),
        att.retired,
        att.adopted
    );
    println!("(paper: 5,284 communities / 468 ASes / 48 RS; 1.5% of shared values changed meaning since 2008)");
}

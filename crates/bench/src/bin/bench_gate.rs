//! CI perf-regression gate.
//!
//! ```sh
//! cargo run --release -p kepler-bench --bin bench_gate -- \
//!     <baseline.json> <fresh.json> [--max-regression 0.25]
//! ```
//!
//! Compares the `events_per_sec` figures of two `BENCH_monitor.json`
//! documents and exits non-zero when any metric present in both regresses
//! by more than the allowed fraction. Used by the `bench-gate` job in
//! `.github/workflows/ci.yml`; run it locally with a fresh
//! `repro --bench` output against the committed baseline.

use kepler_bench::gate::{compare, gate_fails, parse_events_per_sec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression = 0.25f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--max-regression" => {
                max_regression = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--max-regression takes a fraction, e.g. 0.25");
            }
            other => paths.push(other.to_string()),
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: bench_gate <baseline.json> <fresh.json> [--max-regression 0.25]");
        std::process::exit(2);
    }
    let read = |p: &str| -> String {
        std::fs::read_to_string(p).unwrap_or_else(|e| panic!("cannot read {p}: {e}"))
    };
    let baseline = parse_events_per_sec(&read(&paths[0]));
    let fresh = parse_events_per_sec(&read(&paths[1]));
    if baseline.is_empty() {
        eprintln!("bench_gate: no events_per_sec metrics in baseline {}", paths[0]);
        std::process::exit(2);
    }
    if fresh.is_empty() {
        eprintln!("bench_gate: no events_per_sec metrics in fresh run {}", paths[1]);
        std::process::exit(2);
    }
    if !fresh.keys().any(|k| baseline.contains_key(k)) {
        // A wholesale metric rename (or corrupt fresh output) must not
        // silently disable the gate as "all retired / all new".
        eprintln!("bench_gate: baseline and fresh share no metric names — re-record the baseline");
        std::process::exit(2);
    }
    let verdicts = compare(&baseline, &fresh, max_regression);
    println!(
        "{:<16} {:>14} {:>14} {:>9}  verdict (budget: -{:.0}%)",
        "metric",
        "baseline",
        "fresh",
        "change",
        max_regression * 100.0
    );
    for v in &verdicts {
        let change =
            if v.change.is_nan() { "-".to_string() } else { format!("{:+.1}%", v.change * 100.0) };
        let verdict = if v.regressed {
            "REGRESSED"
        } else if v.baseline.is_nan() {
            "new"
        } else if v.fresh.is_nan() {
            "retired"
        } else {
            "ok"
        };
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>9}  {verdict}",
            v.metric, v.baseline, v.fresh, change
        );
    }
    if gate_fails(&verdicts) {
        eprintln!("bench_gate: events_per_sec regression beyond {:.0}%", max_regression * 100.0);
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}

//! Stage-by-stage cost breakdown of the 1M-record ingest pipeline.
//!
//! Times cumulative prefixes of the pipeline (construct → explode →
//! decode+intern → monitor) so the marginal cost of each stage is the
//! difference between consecutive rows. The record-dense rows measure
//! the explosion-free hot path ([`InputModule::process_record_events`])
//! against the historical per-element one, and the MRT rows measure the
//! zero-copy wire path (`FrameView` → `UpdateView` → dense intern) over
//! an encoded archive. Plus the probe stage (schedule → simulate →
//! analyze, per validation request). Guides optimization work; not part
//! of the perf-trajectory artifact (`repro --bench`).

use kepler_bench::{pipeline_dictionary, pipeline_record, PIPELINE_TIME_COMPRESSION};
use kepler_core::config::KeplerConfig;
use kepler_core::input::InputModule;
use kepler_core::intern::Interner;
use kepler_core::monitor::Monitor;
use kepler_topology::ColocationMap;
use std::hint::black_box;
use std::time::Instant;

const N: u64 = 1_000_000;
const PROBE_REQUESTS: u64 = 400;

fn main() {
    let t = Instant::now();
    for i in 0..N {
        black_box(pipeline_record(i));
    }
    report("construct", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let mut n = 0usize;
    for i in 0..N {
        n += pipeline_record(i).explode().len();
    }
    black_box(n);
    report("construct+explode", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut n = 0usize;
    for i in 0..N {
        for elem in pipeline_record(i).explode() {
            n += usize::from(input.process_dense(&elem, &mut interner).is_some());
        }
    }
    black_box(n);
    report("construct+explode+decode", t.elapsed().as_secs_f64());

    let t = Instant::now();
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut n = 0usize;
    for i in 0..N {
        let rec = pipeline_record(i);
        input.process_record_events(&rec, &mut interner, |_ev| n += 1);
    }
    black_box(n);
    report("construct+record-dense", t.elapsed().as_secs_f64());

    // The zero-copy wire path: the same workload pre-encoded as an MRT
    // archive, walked borrow-only (no `BgpUpdate` materialization, no
    // per-record attribute allocations). Encoding happens off the clock.
    const M: u64 = 200_000;
    let archive = kepler_bench::pipeline_mrt_bytes(M);
    {
        use kepler_bgp::mrt::FrameView;
        use kepler_bgpstream::{CollectorId, PeerId};
        let t = Instant::now();
        let mut frames = 0u64;
        let mut prefixes = 0usize;
        let mut off = 0usize;
        while let Some((frame, used)) =
            FrameView::parse(&archive[off..]).expect("bench archive is well-formed")
        {
            off += used;
            if let Some(msg) = frame.message().expect("bench frames are AS4 messages") {
                prefixes += msg.update.announced_v4().count() + msg.update.mp_announced().count();
            }
            frames += 1;
        }
        black_box((frames, prefixes));
        report_n("mrt zero-copy parse", t.elapsed().as_secs_f64(), M);

        let t = Instant::now();
        let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
        let mut interner = Interner::new();
        let mut n = 0usize;
        let mut idx = 0u64;
        let mut off = 0usize;
        while let Some((frame, used)) =
            FrameView::parse(&archive[off..]).expect("bench archive is well-formed")
        {
            off += used;
            if let Some(msg) = frame.message().expect("bench frames are AS4 messages") {
                let collector = CollectorId((idx % 4) as u16);
                let peer = PeerId { asn: msg.peer_as, addr: msg.peer_ip };
                input.process_update_view_dense(
                    collector,
                    peer,
                    &msg.update,
                    &mut interner,
                    |_elem| n += 1,
                );
            }
            idx += 1;
        }
        black_box(n);
        report_n("mrt zero-copy decode+intern", t.elapsed().as_secs_f64(), M);
    }

    let t = Instant::now();
    let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
    let mut interner = Interner::new();
    let mut monitor = Monitor::new(KeplerConfig::default());
    let mut bins = 0usize;
    for i in 0..N {
        let rec = pipeline_record(i);
        let time = rec.time;
        input.process_record_events(&rec, &mut interner, |ev| {
            bins += monitor.observe(time, &ev).len();
        });
    }
    bins += monitor.advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400).len();
    black_box(bins);
    report("full pipeline", t.elapsed().as_secs_f64());

    // Probe stage: one validation request = schedule (token-bucket
    // admission) → simulate (baseline + fresh traceroute per admitted
    // pair) → analyze (hop diff, verdicts) over two candidate twins.
    // Measured twice: per-trace tree computation vs the batched form
    // (one routing tree per (origin, failure-state), shared across the
    // campaign) — the difference is pure `compute_tree` savings.
    use kepler::probe::Prober;
    for (label, batched) in
        [("probe validate (per request)", false), ("probe validate (batched)", true)]
    {
        let (mut prober, request) = kepler_bench::probe_fixture(41, batched);
        let t = Instant::now();
        let mut verdicts = 0usize;
        for i in 0..PROBE_REQUESTS {
            // Advance time so the per-facility buckets refill between bins.
            let report = prober.validate(&request, request.bin_start + 60 * i);
            verdicts += report.verdicts.len();
        }
        black_box(verdicts);
        report_n(label, t.elapsed().as_secs_f64(), PROBE_REQUESTS);
    }
}

fn report(stage: &str, secs: f64) {
    report_n(stage, secs, N);
}

fn report_n(stage: &str, secs: f64, n: u64) {
    println!(
        "{stage:<28} {secs:>7.3}s  {:>9.0} rec/s  {:>6.0} ns/rec",
        n as f64 / secs,
        secs * 1e9 / n as f64
    );
}

//! Input-module throughput: sanitization plus community→PoP mapping per
//! element — the per-update cost of the whole passive pipeline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_bench::sample_record;
use kepler_bgp::Community;
use kepler_core::input::InputModule;
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::{CityGazetteer, ColocationMap, FacilityId};

fn bench_mapping(c: &mut Criterion) {
    let mut dict = CommunityDictionary::new();
    for v in 0..100u16 {
        dict.insert(
            Community::new(13030, 51_000 + v),
            LocationTag::Facility(FacilityId(v as u32 % 7)),
        );
        dict.insert(
            Community::new(3356, 2000 + v),
            LocationTag::City(kepler_topology::CityId(v as u32 % 30)),
        );
    }
    let _ = CityGazetteer::new();
    let records: Vec<_> = (0..5000u64).map(sample_record).collect();
    let elems: Vec<_> = records.iter().flat_map(|r| r.explode()).collect();

    let mut g = c.benchmark_group("mapping");
    g.throughput(Throughput::Elements(elems.len() as u64));
    g.bench_function("process_5k_elems", |b| {
        b.iter(|| {
            let mut input = InputModule::new(dict.clone(), ColocationMap::new());
            let mut located = 0usize;
            for e in &elems {
                if let Some(kepler_core::input::RouteEvent::Update { crossings, .. }) =
                    input.process(e)
                {
                    located += usize::from(!crossings.is_empty());
                }
            }
            located
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);

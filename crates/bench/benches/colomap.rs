//! Colocation-map query cost: the inner loop of signal disambiguation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_netsim::world::{World, WorldConfig};

fn bench_colomap(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(37));
    let colo = &world.colo;
    let asns: Vec<_> = world.ases.iter().map(|a| a.asn).collect();

    let mut g = c.benchmark_group("colomap");
    g.throughput(Throughput::Elements(asns.len() as u64));
    g.bench_function("facilities_of_as_all", |b| {
        b.iter(|| asns.iter().map(|a| colo.facilities_of_as(*a).len()).sum::<usize>())
    });
    let pairs: Vec<_> = asns.windows(2).map(|w| (w[0], w[1])).collect();
    g.throughput(Throughput::Elements(pairs.len() as u64));
    g.bench_function("common_facilities_pairs", |b| {
        b.iter(|| pairs.iter().map(|(x, y)| colo.common_facilities(*x, *y).len()).sum::<usize>())
    });
    g.bench_function("members_of_all_facilities", |b| {
        b.iter(|| {
            colo.facilities().iter().map(|f| colo.members_of_facility(f.id).len()).sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_colomap);
criterion_main!(benches);

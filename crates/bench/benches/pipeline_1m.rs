//! End-to-end pipeline throughput: 1M synthetic BGP records through the
//! input module (sanitize + community→PoP mapping), input-time interning
//! and the monitor — single-shard and sharded.
//!
//! This is the macro-benchmark the perf trajectory is tracked against
//! across PRs (see `repro --bench`, which measures the identical workload
//! via the shared `kepler_bench::pipeline_*` helpers), complementing the
//! monitor-only micro-benchmark in `monitor.rs`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_bench::{pipeline_dictionary, pipeline_record, PIPELINE_TIME_COMPRESSION};
use kepler_core::config::KeplerConfig;
use kepler_core::ingest::ParallelIngest;
use kepler_core::input::InputModule;
use kepler_core::intern::Interner;
use kepler_core::monitor::Monitor;
use kepler_core::shard::ShardedMonitor;
use kepler_topology::ColocationMap;

const N: u64 = 1_000_000;
const QUARANTINE: u64 = 600;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(N));
    g.bench_function("records_1m", |b| {
        b.iter(|| {
            let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
            let mut interner = Interner::new();
            let mut monitor = Monitor::new(KeplerConfig::default());
            let mut bins = 0usize;
            for i in 0..N {
                let rec = pipeline_record(i);
                for elem in rec.explode() {
                    if let Some(ev) = input.process_dense(&elem, &mut interner) {
                        bins += monitor.observe(elem.time, &ev).len();
                    }
                }
            }
            bins += monitor
                .advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400)
                .len();
            (bins, monitor.baseline_size())
        })
    });
    g.bench_function("records_1m_sharded_8", |b| {
        b.iter(|| {
            let mut input = InputModule::new(pipeline_dictionary(), ColocationMap::new());
            let mut interner = Interner::new();
            let mut monitor = ShardedMonitor::new(KeplerConfig::default(), 8);
            let mut bins = 0usize;
            for i in 0..N {
                let rec = pipeline_record(i);
                for elem in rec.explode() {
                    if let Some(ev) = input.process_dense(&elem, &mut interner) {
                        bins += monitor.observe(elem.time, &ev).len();
                    }
                }
            }
            bins += monitor
                .advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400)
                .len();
            (bins, monitor.baseline_size())
        })
    });
    g.bench_function("records_1m_parallel_8x8", |b| {
        b.iter(|| {
            let template = InputModule::new(pipeline_dictionary(), ColocationMap::new());
            let mut ingest = ParallelIngest::new(&template, QUARANTINE, 8);
            let mut interner = Interner::new();
            let mut monitor = ShardedMonitor::new(KeplerConfig::default(), 8);
            let mut events = Vec::new();
            let mut bins = 0usize;
            for i in 0..N {
                ingest.push_owned(pipeline_record(i));
                ingest.drain_ready(&mut interner, &mut events);
                for (t, ev) in events.drain(..) {
                    bins += monitor.observe(t, &ev).len();
                }
            }
            ingest.finish(&mut interner, &mut events);
            for (t, ev) in events.drain(..) {
                bins += monitor.observe(t, &ev).len();
            }
            bins += monitor
                .advance_to(1_400_000_000 + N / PIPELINE_TIME_COMPRESSION + 3 * 86_400)
                .len();
            (bins, monitor.baseline_size())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

//! Monitoring-module throughput: route events per second through binning,
//! baseline maintenance and deviation tracking.
//!
//! The timed path includes interning (`RouteEvent` → `DenseRouteEvent`),
//! i.e. the full per-event pipeline cost downstream of the input module,
//! for both the single monitor and the sharded one.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId};
use kepler_core::config::KeplerConfig;
use kepler_core::events::RouteKey;
use kepler_core::input::{PopCrossing, RouteEvent};
use kepler_core::intern::Interner;
use kepler_core::monitor::Monitor;
use kepler_core::shard::ShardedMonitor;
use kepler_docmine::LocationTag;
use kepler_topology::FacilityId;

fn key(i: u32) -> RouteKey {
    RouteKey {
        collector: CollectorId((i % 4) as u16),
        peer: PeerId { asn: Asn(100 + i % 8), addr: "10.0.0.1".parse().unwrap() },
        prefix: Prefix::v4(20, (i % 250) as u8, ((i / 250) % 250) as u8, 0, 24),
    }
}

fn event(i: u32) -> RouteEvent {
    RouteEvent::Update {
        key: key(i),
        crossings: vec![PopCrossing {
            pop: LocationTag::Facility(FacilityId(i % 40)),
            near: Asn(500 + i % 20),
            far: Asn(900 + i % 31),
        }],
        hops: vec![Asn(100 + i % 8), Asn(500 + i % 20), Asn(900 + i % 31)],
    }
}

fn bench_monitor(c: &mut Criterion) {
    const N: u32 = 20_000;
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(N as u64));
    g.bench_function("observe_20k_events", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let mut m = Monitor::new(KeplerConfig::default());
            let t0 = 1_000_000u64;
            for i in 0..N {
                let ev = interner.intern_event(&event(i));
                m.observe(t0 + (i / 100) as u64, &ev);
            }
            // Close the stable window and a few bins.
            let out = m.advance_to(t0 + 3 * 86_400);
            (m.baseline_size(), out.len())
        })
    });
    g.bench_function("observe_20k_events_sharded_4", |b| {
        b.iter(|| {
            let mut interner = Interner::new();
            let mut m = ShardedMonitor::new(KeplerConfig::default(), 4);
            let t0 = 1_000_000u64;
            for i in 0..N {
                let ev = interner.intern_event(&event(i));
                m.observe(t0 + (i / 100) as u64, &ev);
            }
            let out = m.advance_to(t0 + 3 * 86_400);
            (m.baseline_size(), out.len())
        })
    });
    g.bench_function("bin_close_with_deviations", |b| {
        // Pre-build a warm monitor, then measure deviation marking + close.
        let mut interner = Interner::new();
        let mut m = Monitor::new(KeplerConfig::default());
        let t0 = 1_000_000u64;
        for i in 0..N {
            let ev = interner.intern_event(&event(i));
            m.observe(t0, &ev);
        }
        m.advance_to(t0 + 3 * 86_400);
        let t1 = t0 + 3 * 86_400 + 60;
        b.iter(|| {
            for i in 0..2000u32 {
                let w = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
                m.observe(t1, &w);
                // Re-announce so the baseline refills for the next iter.
                let ev = interner.intern_event(&event(i));
                m.observe(t1, &ev);
            }
            m.advance_to(t1 + 60).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);

//! MRT archive encode/decode throughput — the cost floor of replaying
//! RouteViews/RIS history.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use kepler_bench::sample_record;
use kepler_bgp::mrt::{MrtReader, MrtWriter};
use kepler_bgp::Asn;

fn bench_mrt(c: &mut Criterion) {
    let records: Vec<_> = (0..1000u64)
        .map(|i| sample_record(i).to_mrt(Asn(64_700), "192.0.2.254".parse().unwrap()))
        .collect();
    let mut encoded = Vec::new();
    {
        let mut w = MrtWriter::new(&mut encoded);
        for r in &records {
            w.write_record(r).unwrap();
        }
    }

    let mut g = c.benchmark_group("mrt");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("encode_1k_updates", |b| {
        b.iter_batched(
            Vec::new,
            |mut buf| {
                let mut w = MrtWriter::new(&mut buf);
                for r in &records {
                    w.write_record(r).unwrap();
                }
                buf
            },
            BatchSize::SmallInput,
        )
    });
    g.throughput(Throughput::Bytes(encoded.len() as u64));
    g.bench_function("decode_1k_updates", |b| {
        b.iter(|| {
            let n = MrtReader::new(&encoded[..]).filter(|r| r.is_ok()).count();
            assert_eq!(n, records.len());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_mrt);
criterion_main!(benches);

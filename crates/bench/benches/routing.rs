//! Policy-routing cost: per-prefix route-tree computation over the
//! generated topology, clean and under failure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kepler_netsim::routing::policy::FailedSet;
use kepler_netsim::routing::propagate::compute_tree;
use kepler_netsim::world::{AsIdx, World, WorldConfig};

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing");
    for (label, cfg) in [("tiny", WorldConfig::tiny(29)), ("small", WorldConfig::small(29))] {
        let world = World::generate(cfg);
        let clean = FailedSet::default();
        g.bench_with_input(BenchmarkId::new("compute_tree_clean", label), &world, |b, w| {
            b.iter(|| compute_tree(w, &clean, AsIdx(0)).routed_count())
        });
        let mut failed = FailedSet::default();
        let busiest = world
            .colo
            .facilities()
            .iter()
            .max_by_key(|f| world.colo.members_of_facility(f.id).len())
            .unwrap()
            .id;
        failed.facilities.insert(busiest);
        g.bench_with_input(BenchmarkId::new("compute_tree_outage", label), &world, |b, w| {
            b.iter(|| compute_tree(w, &failed, AsIdx(0)).routed_count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);

//! Ablation timings for the design choices DESIGN.md calls out: how much
//! work classification and colocation-based localization add per signaled
//! bin. (The *outcome* ablations — per-AS grouping vs aggregate, tag
//! monitoring vs AS-path-only — are asserted in `tests/ablation.rs`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kepler_bgp::Asn;
use kepler_core::config::KeplerConfig;
use kepler_core::investigate::Investigator;
use kepler_core::monitor::{BinOutcome, OutageSignal};
use kepler_docmine::LocationTag;
use kepler_netsim::world::{World, WorldConfig};
use std::collections::BTreeMap;

fn synthetic_outcome(world: &World, n_signals: usize) -> BinOutcome {
    let fac = world
        .colo
        .facilities()
        .iter()
        .max_by_key(|f| world.colo.members_of_facility(f.id).len())
        .unwrap()
        .id;
    let members: Vec<Asn> = world.colo.members_of_facility(fac).iter().copied().collect();
    let pop = LocationTag::Facility(fac);
    let mut outcome = BinOutcome { bin_start: 0, ..Default::default() };
    let mut by_near: BTreeMap<Asn, BTreeMap<Asn, usize>> = BTreeMap::new();
    for i in 0..n_signals.min(members.len()) {
        let near = members[i];
        let fars: Vec<Asn> = members.iter().copied().filter(|m| *m != near).take(6).collect();
        by_near.insert(near, fars.iter().map(|f| (*f, 2usize)).collect());
        outcome.signals.push(OutageSignal {
            pop,
            near,
            bin_start: 0,
            deviated: vec![],
            stable_total: fars.len(),
            far_ases: fars.into_iter().collect(),
            fraction: 1.0,
        });
    }
    outcome.stable_fars.insert(pop, by_near);
    outcome
}

fn bench_ablation(c: &mut Criterion) {
    let world = World::generate(WorldConfig::small(41));
    let colo = world.detector_colomap();
    let inv = Investigator::new(KeplerConfig::default(), colo, world.orgs.clone());

    let mut g = c.benchmark_group("ablation");
    for n in [3usize, 6, 12] {
        let outcome = synthetic_outcome(&world, n);
        g.bench_with_input(BenchmarkId::new("investigate_signals", n), &outcome, |b, o| {
            b.iter(|| inv.investigate(o).incidents.len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);

//! BGPStream-substrate throughput: k-way merge of per-collector feeds.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_bench::sample_record;
use kepler_bgpstream::{MemorySource, MergedStream, RecordSource};

fn bench_stream(c: &mut Criterion) {
    const SOURCES: usize = 16;
    const PER_SOURCE: u64 = 2000;
    let feeds: Vec<Vec<_>> = (0..SOURCES)
        .map(|s| (0..PER_SOURCE).map(|i| sample_record(i * SOURCES as u64 + s as u64)).collect())
        .collect();

    let mut g = c.benchmark_group("stream");
    g.throughput(Throughput::Elements(SOURCES as u64 * PER_SOURCE));
    g.bench_function("merge_16x2k", |b| {
        b.iter(|| {
            let sources: Vec<Box<dyn RecordSource>> = feeds
                .iter()
                .map(|f| Box::new(MemorySource::new(f.clone())) as Box<dyn RecordSource>)
                .collect();
            let merged = MergedStream::new(sources);
            let mut last = 0u64;
            let mut n = 0usize;
            for r in merged {
                assert!(r.time >= last);
                last = r.time;
                n += 1;
            }
            n
        })
    });
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);

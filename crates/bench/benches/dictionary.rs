//! Dictionary-mining pipeline cost: corpus rendering, NER mining, lookups.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kepler_bgp::Community;
use kepler_docmine::corpus::render_corpus;
use kepler_docmine::dictionary::DictionaryMiner;
use kepler_netsim::world::{World, WorldConfig};

fn bench_dictionary(c: &mut Criterion) {
    let world = World::generate(WorldConfig::tiny(17));
    let colo = world.detector_colomap();
    let corpus = render_corpus(&world.schemes, 17);
    let miner = DictionaryMiner::new(&colo, &world.gazetteer);
    let (dict, _) = miner.mine(&corpus);

    let mut g = c.benchmark_group("dictionary");
    g.bench_function("render_corpus", |b| b.iter(|| render_corpus(&world.schemes, 17).len()));
    g.bench_function("mine_corpus", |b| {
        b.iter(|| {
            let (d, _) = miner.mine(&corpus);
            d.len()
        })
    });
    let lookups: Vec<Community> = dict.entries().map(|e| e.community).collect();
    if !lookups.is_empty() {
        g.throughput(Throughput::Elements(lookups.len() as u64));
        g.bench_function("locate_all", |b| {
            b.iter(|| lookups.iter().filter(|c| dict.locate(**c).is_some()).count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dictionary);
criterion_main!(benches);

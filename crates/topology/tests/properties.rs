//! Property-based tests for the colocation-map substrate.

use kepler_bgp::Asn;
use kepler_topology::geo::GeoPoint;
use kepler_topology::merge::merge_snapshots;
use kepler_topology::sources::{normalize_postcode, normalize_url, ColoSnapshot, SourceFacility};
use kepler_topology::CityGazetteer;
use proptest::prelude::*;

fn facility(name: String, pc: String, tenants: Vec<u32>) -> SourceFacility {
    SourceFacility {
        name,
        address: "addr".into(),
        postcode: pc,
        country: "GB".into(),
        city_name: "London".into(),
        operator: String::new(),
        point: None,
        tenants: tenants.into_iter().map(Asn).collect(),
    }
}

proptest! {
    /// Postcode normalization is idempotent and whitespace/case-invariant.
    #[test]
    fn postcode_normalization_idempotent(pc in "[a-zA-Z0-9 ]{0,12}") {
        let once = normalize_postcode(&pc);
        prop_assert_eq!(normalize_postcode(&once), once.clone());
        prop_assert_eq!(normalize_postcode(&pc.to_ascii_lowercase()), once.clone());
        prop_assert_eq!(normalize_postcode(&format!("  {pc}  ")), once);
    }

    /// URL normalization strips scheme/www/trailing slash and is idempotent.
    #[test]
    fn url_normalization_idempotent(host in "[a-z0-9.-]{1,20}") {
        let once = normalize_url(&host);
        prop_assert_eq!(normalize_url(&once), once.clone());
        prop_assert_eq!(normalize_url(&format!("https://www.{host}/")), once);
    }

    /// Merging a snapshot with itself is idempotent: same facilities, same
    /// tenant sets as merging it once.
    #[test]
    fn merge_self_idempotent(
        facs in prop::collection::vec(
            ("[A-Z][a-z]{2,8}", "[A-Z0-9]{4,6}", prop::collection::vec(1u32..500, 0..6)),
            0..8,
        )
    ) {
        let mut snap = ColoSnapshot::new("s");
        for (name, pc, tenants) in &facs {
            snap.facilities.push(facility(name.clone(), pc.clone(), tenants.clone()));
        }
        let g = CityGazetteer::new();
        let (once, s1) = merge_snapshots(&[snap.clone()], &g);
        let (twice, s2) = merge_snapshots(&[snap.clone(), snap.clone()], &g);
        prop_assert_eq!(s1.merged_facilities, s2.merged_facilities);
        prop_assert_eq!(once.facilities().len(), twice.facilities().len());
        for f in once.facilities() {
            prop_assert_eq!(
                once.members_of_facility(f.id),
                twice.members_of_facility(f.id),
                "tenants differ for {}", f.id
            );
        }
    }

    /// Membership relations stay bidirectionally consistent after any merge.
    #[test]
    fn membership_bidirectional(
        facs in prop::collection::vec(
            ("[A-Z0-9]{5}", prop::collection::vec(1u32..100, 0..5)),
            1..8,
        )
    ) {
        let mut snap = ColoSnapshot::new("s");
        for (pc, tenants) in &facs {
            snap.facilities.push(facility(format!("F{pc}"), pc.clone(), tenants.clone()));
        }
        let (map, _) = merge_snapshots(&[snap], &CityGazetteer::new());
        for f in map.facilities() {
            for asn in map.members_of_facility(f.id) {
                prop_assert!(map.facilities_of_as(*asn).contains(&f.id));
                prop_assert!(map.is_at_facility(*asn, f.id));
            }
        }
    }

    /// Haversine distance is a (pseudo)metric on sane coordinates:
    /// symmetric, zero on identity, triangle inequality within tolerance.
    #[test]
    fn haversine_metric(
        lat1 in -80.0f64..80.0, lon1 in -179.0f64..179.0,
        lat2 in -80.0f64..80.0, lon2 in -179.0f64..179.0,
        lat3 in -80.0f64..80.0, lon3 in -179.0f64..179.0,
    ) {
        let a = GeoPoint::new(lat1, lon1);
        let b = GeoPoint::new(lat2, lon2);
        let c = GeoPoint::new(lat3, lon3);
        prop_assert!(a.distance_km(&a) < 1e-6);
        prop_assert!((a.distance_km(&b) - b.distance_km(&a)).abs() < 1e-6);
        prop_assert!(a.distance_km(&c) <= a.distance_km(&b) + b.distance_km(&c) + 1e-6);
    }
}

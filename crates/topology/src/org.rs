//! AS-to-organization mapping (paper §4.3, citing Cai et al.'s
//! AS-to-Org method): operators often run several sibling ASes on shared
//! infrastructure, so Kepler must not count siblings as independent
//! evidence when classifying an outage signal.

use kepler_bgp::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense identifier of an organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// Maps ASNs to organizations. ASNs not explicitly registered are treated
/// as single-AS organizations distinct from every other AS.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrgMap {
    asn_to_org: HashMap<Asn, OrgId>,
    org_names: Vec<String>,
}

impl OrgMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an organization and returns its id.
    pub fn add_org(&mut self, name: &str) -> OrgId {
        self.org_names.push(name.to_string());
        OrgId((self.org_names.len() - 1) as u32)
    }

    /// Assigns an ASN to an organization.
    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        self.asn_to_org.insert(asn, org);
    }

    /// The organization of `asn`, if registered.
    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.asn_to_org.get(&asn).copied()
    }

    /// Organization display name.
    pub fn name(&self, org: OrgId) -> Option<&str> {
        self.org_names.get(org.0 as usize).map(String::as_str)
    }

    /// Whether two ASNs belong to the same organization. Unregistered ASNs
    /// are siblings only of themselves.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        if a == b {
            return true;
        }
        match (self.org_of(a), self.org_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Counts the distinct organizations in `asns`; unregistered ASNs each
    /// count as their own organization.
    pub fn distinct_orgs<I: IntoIterator<Item = Asn>>(&self, asns: I) -> usize {
        let mut orgs = std::collections::HashSet::new();
        let mut loners = std::collections::HashSet::new();
        for asn in asns {
            match self.org_of(asn) {
                Some(o) => {
                    orgs.insert(o);
                }
                None => {
                    loners.insert(asn);
                }
            }
        }
        orgs.len() + loners.len()
    }

    /// All registered sibling ASNs of `asn` (including itself).
    pub fn siblings(&self, asn: Asn) -> Vec<Asn> {
        match self.org_of(asn) {
            None => vec![asn],
            Some(org) => {
                let mut v: Vec<Asn> =
                    self.asn_to_org.iter().filter(|(_, &o)| o == org).map(|(&a, _)| a).collect();
                v.sort();
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sibling_semantics() {
        let mut m = OrgMap::new();
        let bell = m.add_org("Bell Canada");
        m.assign(Asn(577), bell);
        m.assign(Asn(6539), bell);
        m.assign(Asn(36522), bell);
        let other = m.add_org("Other");
        m.assign(Asn(3356), other);

        assert!(m.are_siblings(Asn(577), Asn(6539)));
        assert!(!m.are_siblings(Asn(577), Asn(3356)));
        assert!(m.are_siblings(Asn(999), Asn(999)), "self is sibling");
        assert!(!m.are_siblings(Asn(999), Asn(998)), "unregistered are loners");
        assert_eq!(m.siblings(Asn(577)), vec![Asn(577), Asn(6539), Asn(36522)]);
        assert_eq!(m.siblings(Asn(999)), vec![Asn(999)]);
        assert_eq!(m.name(bell), Some("Bell Canada"));
    }

    #[test]
    fn distinct_org_counting() {
        let mut m = OrgMap::new();
        let a = m.add_org("A");
        m.assign(Asn(1), a);
        m.assign(Asn(2), a);
        // {1,2} same org; 7 and 8 unregistered loners.
        assert_eq!(m.distinct_orgs([Asn(1), Asn(2), Asn(7), Asn(8)]), 3);
        assert_eq!(m.distinct_orgs([]), 0);
        assert_eq!(m.distinct_orgs([Asn(1), Asn(1)]), 1);
    }
}

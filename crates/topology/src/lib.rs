//! Colocation-map substrate for Kepler.
//!
//! Paper §3.3: community values mostly geolocate routes at *city* level,
//! which is too coarse to pinpoint a building. Kepler therefore maintains a
//! high-resolution **colocation map** of three interconnection relations —
//! AS↔facility, AS↔IXP, IXP↔facility — mined from PeeringDB and
//! DataCenterMap, merged by postal address (facilities) and URL/city (IXPs)
//! because names are not standardized across sources.
//!
//! * [`geo`] — coordinates, haversine distances, continents and the city
//!   gazetteer shared by every other crate.
//! * [`entities`] — facilities, IXPs, AS records and their id spaces.
//! * [`org`] — AS-to-organization (sibling) mapping, after CAIDA's
//!   AS-to-Org method, used by the operator-level signal classifier.
//! * [`sources`] — the two heterogeneous colocation data sources with
//!   their diverging naming conventions.
//! * [`merge`] — source merging into a single [`colomap::ColocationMap`].
//! * [`colomap`] — the queryable map with all indices Kepler needs.
//!
//! # Invariants
//!
//! * **Dense id spaces**: [`FacilityId`], [`IxpId`] and [`CityId`] index
//!   flat vectors; every consumer (monitor, investigator, simulator)
//!   relies on ids `0..n` being valid.
//! * **Merging is by physical identity**, not by name — postal address
//!   for facilities, URL/city for IXPs — because names are not
//!   standardized across sources; the merged map may therefore list
//!   members a single source missed.
//! * Membership queries ([`ColocationMap::members_of_facility`] etc.)
//!   return sorted, deduplicated sets, so set algebra over them is
//!   deterministic.

pub mod colomap;
pub mod entities;
pub mod geo;
pub mod merge;
pub mod org;
pub mod sources;

pub use colomap::ColocationMap;
pub use entities::{AsInfo, AsType, CityId, Facility, FacilityId, Ixp, IxpId};
pub use geo::{CityGazetteer, Continent, GeoPoint};
pub use org::{OrgId, OrgMap};

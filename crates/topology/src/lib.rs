//! Colocation-map substrate for Kepler.
//!
//! Paper §3.3: community values mostly geolocate routes at *city* level,
//! which is too coarse to pinpoint a building. Kepler therefore maintains a
//! high-resolution **colocation map** of three interconnection relations —
//! AS↔facility, AS↔IXP, IXP↔facility — mined from PeeringDB and
//! DataCenterMap, merged by postal address (facilities) and URL/city (IXPs)
//! because names are not standardized across sources.
//!
//! * [`geo`] — coordinates, haversine distances, continents and the city
//!   gazetteer shared by every other crate.
//! * [`entities`] — facilities, IXPs, AS records and their id spaces.
//! * [`org`] — AS-to-organization (sibling) mapping, after CAIDA's
//!   AS-to-Org method, used by the operator-level signal classifier.
//! * [`sources`] — the two heterogeneous colocation data sources with
//!   their diverging naming conventions.
//! * [`merge`] — source merging into a single [`colomap::ColocationMap`].
//! * [`colomap`] — the queryable map with all indices Kepler needs.

pub mod colomap;
pub mod entities;
pub mod geo;
pub mod merge;
pub mod org;
pub mod sources;

pub use colomap::ColocationMap;
pub use entities::{AsInfo, AsType, CityId, Facility, FacilityId, Ixp, IxpId};
pub use geo::{CityGazetteer, Continent, GeoPoint};
pub use org::{OrgId, OrgMap};

//! Core entities of the interconnection ecosystem.

use crate::geo::{Continent, GeoPoint};
use kepler_bgp::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dense identifier of a colocation facility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct FacilityId(pub u32);

impl fmt::Display for FacilityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fac{}", self.0)
    }
}

/// Dense identifier of an IXP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct IxpId(pub u32);

impl fmt::Display for IxpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ixp{}", self.0)
    }
}

/// Dense identifier of a city (index into the gazetteer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CityId(pub u32);

impl fmt::Display for CityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "city{}", self.0)
    }
}

/// A colocation facility: one building with a postal address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Facility {
    /// Dense id.
    pub id: FacilityId,
    /// Canonical display name (e.g. "Equinix FR5 KleyerStrasse").
    pub name: String,
    /// Street address.
    pub address: String,
    /// Postcode — together with the country this is the merge key across
    /// data sources (paper §3.3).
    pub postcode: String,
    /// ISO country code.
    pub country: String,
    /// City the facility is in.
    pub city: CityId,
    /// Continent bucket (denormalized for Table 1 / Figure 5).
    pub continent: Continent,
    /// Building coordinates.
    pub point: GeoPoint,
    /// Operating company (e.g. "Equinix").
    pub operator: String,
}

/// An Internet exchange point: a distributed layer-2 fabric whose switches
/// live inside colocation facilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ixp {
    /// Dense id.
    pub id: IxpId,
    /// Display name (e.g. "DE-CIX Frankfurt").
    pub name: String,
    /// Website URL — the merge key across data sources.
    pub url: String,
    /// Headquarters city.
    pub city: CityId,
    /// Continent bucket.
    pub continent: Continent,
    /// ASN of the IXP's route server, if it operates one.
    pub route_server_asn: Option<Asn>,
}

/// Coarse business role of an AS; drives topology generation and peering
/// policy in the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AsType {
    /// Global transit-free backbone.
    Tier1,
    /// Regional/national transit provider.
    Tier2,
    /// Access/eyeball network.
    Eyeball,
    /// Content provider or CDN.
    Content,
    /// Enterprise or stub edge network.
    Stub,
    /// An IXP's route-server AS (never originates prefixes).
    RouteServer,
}

/// Directory entry for an AS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Role.
    pub as_type: AsType,
    /// Home city.
    pub home_city: CityId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display() {
        assert_eq!(FacilityId(3).to_string(), "fac3");
        assert_eq!(IxpId(9).to_string(), "ixp9");
        assert_eq!(CityId(1).to_string(), "city1");
    }
}

//! Geography: coordinates, great-circle distances, continents, and the
//! city gazetteer used for geocoding community location identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A WGS-84 coordinate pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north.
    pub lat: f64,
    /// Longitude in degrees, positive east.
    pub lon: f64,
}

impl GeoPoint {
    /// Builds a point.
    pub fn new(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to `other` in kilometers (haversine).
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        const R: f64 = 6371.0;
        let (la1, la2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = (other.lat - self.lat).to_radians();
        let dlon = (other.lon - self.lon).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + la1.cos() * la2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * R * a.sqrt().asin()
    }
}

/// Continental buckets used in the paper's Table 1 and Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Continent {
    /// Europe.
    Europe,
    /// North America.
    NorthAmerica,
    /// Asia and Pacific (incl. Oceania).
    AsiaPacific,
    /// South America.
    SouthAmerica,
    /// Africa.
    Africa,
}

impl Continent {
    /// All buckets in the paper's Table 1 order.
    pub const ALL: [Continent; 5] = [
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::AsiaPacific,
        Continent::SouthAmerica,
        Continent::Africa,
    ];
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::AsiaPacific => "Asia/Pacific",
            Continent::SouthAmerica => "South America",
            Continent::Africa => "Africa",
        };
        f.write_str(s)
    }
}

/// One gazetteer city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GazetteerCity {
    /// Canonical English name.
    pub name: &'static str,
    /// ISO 3166-1 alpha-2 country code.
    pub country: &'static str,
    /// Continent bucket.
    pub continent: Continent,
    /// IATA airport code commonly used in community documentation.
    pub iata: &'static str,
    /// Common short alias (initials etc.), if any.
    pub alias: &'static str,
    /// Approximate coordinates.
    pub point: GeoPoint,
}

macro_rules! city {
    ($name:literal, $cc:literal, $cont:ident, $iata:literal, $alias:literal, $lat:literal, $lon:literal) => {
        GazetteerCity {
            name: $name,
            country: $cc,
            continent: Continent::$cont,
            iata: $iata,
            alias: $alias,
            point: GeoPoint { lat: $lat, lon: $lon },
        }
    };
}

/// The built-in world cities Kepler's gazetteer knows about. The skew
/// toward Europe and North America mirrors the real interconnection
/// ecosystem (paper: 66% of location communities tag Europe, 24.5% North
/// America, ~2% Africa + South America).
pub const WORLD_CITIES: &[GazetteerCity] = &[
    // Europe
    city!("London", "GB", Europe, "LHR", "LON", 51.5074, -0.1278),
    city!("Amsterdam", "NL", Europe, "AMS", "AMS", 52.3676, 4.9041),
    city!("Frankfurt", "DE", Europe, "FRA", "FRA", 50.1109, 8.6821),
    city!("Paris", "FR", Europe, "CDG", "PAR", 48.8566, 2.3522),
    city!("Madrid", "ES", Europe, "MAD", "MAD", 40.4168, -3.7038),
    city!("Milan", "IT", Europe, "MXP", "MIL", 45.4642, 9.1900),
    city!("Vienna", "AT", Europe, "VIE", "VIE", 48.2082, 16.3738),
    city!("Zurich", "CH", Europe, "ZRH", "ZRH", 47.3769, 8.5417),
    city!("Stockholm", "SE", Europe, "ARN", "STO", 59.3293, 18.0686),
    city!("Copenhagen", "DK", Europe, "CPH", "CPH", 55.6761, 12.5683),
    city!("Warsaw", "PL", Europe, "WAW", "WAW", 52.2297, 21.0122),
    city!("Prague", "CZ", Europe, "PRG", "PRG", 50.0755, 14.4378),
    city!("Dublin", "IE", Europe, "DUB", "DUB", 53.3498, -6.2603),
    city!("Brussels", "BE", Europe, "BRU", "BRU", 50.8503, 4.3517),
    city!("Budapest", "HU", Europe, "BUD", "BUD", 47.4979, 19.0402),
    city!("Bucharest", "RO", Europe, "OTP", "BUH", 44.4268, 26.1025),
    city!("Lisbon", "PT", Europe, "LIS", "LIS", 38.7223, -9.1393),
    city!("Oslo", "NO", Europe, "OSL", "OSL", 59.9139, 10.7522),
    city!("Helsinki", "FI", Europe, "HEL", "HEL", 60.1699, 24.9384),
    city!("Athens", "GR", Europe, "ATH", "ATH", 37.9838, 23.7275),
    city!("Berlin", "DE", Europe, "TXL", "BER", 52.5200, 13.4050),
    city!("Hamburg", "DE", Europe, "HAM", "HAM", 53.5511, 9.9937),
    city!("Munich", "DE", Europe, "MUC", "MUC", 48.1351, 11.5820),
    city!("Dusseldorf", "DE", Europe, "DUS", "DUS", 51.2277, 6.7735),
    city!("Marseille", "FR", Europe, "MRS", "MRS", 43.2965, 5.3698),
    city!("Manchester", "GB", Europe, "MAN", "MAN", 53.4808, -2.2426),
    city!("Geneva", "CH", Europe, "GVA", "GVA", 46.2044, 6.1432),
    city!("Rome", "IT", Europe, "FCO", "ROM", 41.9028, 12.4964),
    city!("Sofia", "BG", Europe, "SOF", "SOF", 42.6977, 23.3219),
    city!("Kyiv", "UA", Europe, "KBP", "IEV", 50.4501, 30.5234),
    city!("Moscow", "RU", Europe, "SVO", "MOW", 55.7558, 37.6173),
    city!("Istanbul", "TR", Europe, "IST", "IST", 41.0082, 28.9784),
    // North America
    city!("New York", "US", NorthAmerica, "JFK", "NYC", 40.7128, -74.0060),
    city!("Ashburn", "US", NorthAmerica, "IAD", "ASH", 39.0438, -77.4874),
    city!("Chicago", "US", NorthAmerica, "ORD", "CHI", 41.8781, -87.6298),
    city!("Dallas", "US", NorthAmerica, "DFW", "DAL", 32.7767, -96.7970),
    city!("Los Angeles", "US", NorthAmerica, "LAX", "LA", 34.0522, -118.2437),
    city!("San Jose", "US", NorthAmerica, "SJC", "SV", 37.3382, -121.8863),
    city!("Seattle", "US", NorthAmerica, "SEA", "SEA", 47.6062, -122.3321),
    city!("Miami", "US", NorthAmerica, "MIA", "MIA", 25.7617, -80.1918),
    city!("Atlanta", "US", NorthAmerica, "ATL", "ATL", 33.7490, -84.3880),
    city!("Toronto", "CA", NorthAmerica, "YYZ", "TOR", 43.6532, -79.3832),
    city!("Montreal", "CA", NorthAmerica, "YUL", "MTL", 45.5017, -73.5673),
    city!("Denver", "US", NorthAmerica, "DEN", "DEN", 39.7392, -104.9903),
    city!("Phoenix", "US", NorthAmerica, "PHX", "PHX", 33.4484, -112.0740),
    city!("Boston", "US", NorthAmerica, "BOS", "BOS", 42.3601, -71.0589),
    city!("Washington", "US", NorthAmerica, "DCA", "DC", 38.9072, -77.0369),
    city!("Palo Alto", "US", NorthAmerica, "PAO", "PA", 37.4419, -122.1430),
    city!("Vancouver", "CA", NorthAmerica, "YVR", "VAN", 49.2827, -123.1207),
    city!("Mexico City", "MX", NorthAmerica, "MEX", "MEX", 19.4326, -99.1332),
    // Asia / Pacific
    city!("Tokyo", "JP", AsiaPacific, "NRT", "TYO", 35.6762, 139.6503),
    city!("Singapore", "SG", AsiaPacific, "SIN", "SIN", 1.3521, 103.8198),
    city!("Hong Kong", "HK", AsiaPacific, "HKG", "HK", 22.3193, 114.1694),
    city!("Seoul", "KR", AsiaPacific, "ICN", "SEL", 37.5665, 126.9780),
    city!("Mumbai", "IN", AsiaPacific, "BOM", "BOM", 19.0760, 72.8777),
    city!("Chennai", "IN", AsiaPacific, "MAA", "MAA", 13.0827, 80.2707),
    city!("Jakarta", "ID", AsiaPacific, "CGK", "JKT", -6.2088, 106.8456),
    city!("Sydney", "AU", AsiaPacific, "SYD", "SYD", -33.8688, 151.2093),
    city!("Auckland", "NZ", AsiaPacific, "AKL", "AKL", -36.8509, 174.7645),
    city!("Taipei", "TW", AsiaPacific, "TPE", "TPE", 25.0330, 121.5654),
    city!("Osaka", "JP", AsiaPacific, "KIX", "OSA", 34.6937, 135.5023),
    city!("Kuala Lumpur", "MY", AsiaPacific, "KUL", "KL", 3.1390, 101.6869),
    city!("Bangkok", "TH", AsiaPacific, "BKK", "BKK", 13.7563, 100.5018),
    city!("Manila", "PH", AsiaPacific, "MNL", "MNL", 14.5995, 120.9842),
    // South America
    city!("Sao Paulo", "BR", SouthAmerica, "GRU", "SAO", -23.5505, -46.6333),
    city!("Buenos Aires", "AR", SouthAmerica, "EZE", "BUE", -34.6037, -58.3816),
    city!("Santiago", "CL", SouthAmerica, "SCL", "SCL", -33.4489, -70.6693),
    city!("Bogota", "CO", SouthAmerica, "BOG", "BOG", 4.7110, -74.0721),
    city!("Lima", "PE", SouthAmerica, "LIM", "LIM", -12.0464, -77.0428),
    city!("Rio de Janeiro", "BR", SouthAmerica, "GIG", "RIO", -22.9068, -43.1729),
    // Africa
    city!("Johannesburg", "ZA", Africa, "JNB", "JNB", -26.2041, 28.0473),
    city!("Cape Town", "ZA", Africa, "CPT", "CPT", -33.9249, 18.4241),
    city!("Nairobi", "KE", Africa, "NBO", "NBO", -1.2921, 36.8219),
    city!("Lagos", "NG", Africa, "LOS", "LOS", 6.5244, 3.3792),
    city!("Cairo", "EG", Africa, "CAI", "CAI", 30.0444, 31.2357),
    city!("Accra", "GH", Africa, "ACC", "ACC", 5.6037, -0.1870),
];

/// Lookup structure over [`WORLD_CITIES`] resolving the identifier styles
/// operators use in community documentation: full names ("New York City"),
/// initials ("NYC"), and IATA codes ("JFK").
#[derive(Debug, Clone)]
pub struct CityGazetteer {
    cities: &'static [GazetteerCity],
}

impl Default for CityGazetteer {
    fn default() -> Self {
        Self::new()
    }
}

impl CityGazetteer {
    /// A gazetteer over the built-in city list.
    pub fn new() -> Self {
        CityGazetteer { cities: WORLD_CITIES }
    }

    /// All cities.
    pub fn cities(&self) -> &'static [GazetteerCity] {
        self.cities
    }

    /// Number of known cities.
    pub fn len(&self) -> usize {
        self.cities.len()
    }

    /// Whether the gazetteer is empty.
    pub fn is_empty(&self) -> bool {
        self.cities.is_empty()
    }

    /// The city at a dense index (used as `CityId` value).
    pub fn by_index(&self, idx: usize) -> Option<&GazetteerCity> {
        self.cities.get(idx)
    }

    /// Geocodes an identifier to a city index — the offline equivalent of
    /// the paper's Google Maps Geocoding API call. Matching is
    /// case-insensitive over name, IATA code, and alias.
    pub fn geocode(&self, ident: &str) -> Option<usize> {
        let norm = ident.trim().to_ascii_uppercase();
        if norm.is_empty() {
            return None;
        }
        self.cities.iter().position(|c| {
            c.name.to_ascii_uppercase() == norm
                || c.iata == norm
                || c.alias == norm
                || norm.starts_with(&c.name.to_ascii_uppercase())
        })
    }

    /// Groups identifiers that geocode within `radius_km` of each other
    /// (paper: 10 km) into location clusters; returns, for each input, the
    /// cluster representative index or `None` when not geocodable.
    pub fn cluster(&self, idents: &[&str], radius_km: f64) -> Vec<Option<usize>> {
        let coded: Vec<Option<usize>> = idents.iter().map(|i| self.geocode(i)).collect();
        let mut representative: Vec<Option<usize>> = vec![None; idents.len()];
        for (i, &ci) in coded.iter().enumerate() {
            let Some(ci) = ci else { continue };
            // Find an earlier identifier whose city is within the radius.
            let mut rep = ci;
            for cj in coded[..i].iter().flatten() {
                let a = &self.cities[ci].point;
                let b = &self.cities[*cj].point;
                if a.distance_km(b) <= radius_km {
                    rep = *cj;
                    break;
                }
            }
            representative[i] = Some(rep);
        }
        representative
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haversine_known_distances() {
        let london = GeoPoint::new(51.5074, -0.1278);
        let amsterdam = GeoPoint::new(52.3676, 4.9041);
        let d = london.distance_km(&amsterdam);
        assert!((d - 358.0).abs() < 15.0, "London-Amsterdam ≈ 358 km, got {d}");
        assert!(london.distance_km(&london) < 1e-9);
    }

    #[test]
    fn gazetteer_has_continental_skew() {
        let g = CityGazetteer::new();
        let eu = g.cities().iter().filter(|c| c.continent == Continent::Europe).count();
        let af = g.cities().iter().filter(|c| c.continent == Continent::Africa).count();
        assert!(eu > 3 * af, "Europe should dominate the gazetteer");
    }

    #[test]
    fn geocode_all_identifier_styles() {
        let g = CityGazetteer::new();
        let ny = g.geocode("New York").unwrap();
        assert_eq!(g.geocode("NYC"), Some(ny));
        assert_eq!(g.geocode("JFK"), Some(ny));
        assert_eq!(g.geocode("new york city"), Some(ny), "prefix match");
        assert_eq!(g.geocode("Atlantis"), None);
        assert_eq!(g.geocode(""), None);
    }

    #[test]
    fn clustering_groups_nearby_identifiers() {
        let g = CityGazetteer::new();
        // Washington DC and Ashburn are ~50km apart: separate at 10km,
        // merged at 100km.
        let tight = g.cluster(&["Washington", "Ashburn"], 10.0);
        assert_ne!(tight[0], tight[1]);
        let loose = g.cluster(&["Washington", "Ashburn"], 100.0);
        assert_eq!(loose[0], loose[1]);
        // Same city under two identifiers is always merged.
        let same = g.cluster(&["NYC", "JFK"], 10.0);
        assert_eq!(same[0], same[1]);
        assert_eq!(g.cluster(&["Nowhere"], 10.0), vec![None]);
    }
}

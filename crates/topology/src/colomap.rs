//! The queryable colocation map.
//!
//! This is the structure Kepler's signal-investigation module interrogates:
//! which ASes sit in which buildings, which IXP fabrics span which
//! buildings, and where two ASes could physically interconnect.

use crate::entities::{AsInfo, CityId, Facility, FacilityId, Ixp, IxpId};
use kepler_bgp::Asn;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// The merged colocation map (paper §3.3): AS↔facility, AS↔IXP and
/// IXP↔facility relations plus entity metadata.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColocationMap {
    facilities: Vec<Facility>,
    ixps: Vec<Ixp>,
    fac_members: Vec<BTreeSet<Asn>>,
    ixp_members: Vec<BTreeSet<Asn>>,
    ixp_facs: Vec<BTreeSet<FacilityId>>,
    fac_ixps: Vec<BTreeSet<IxpId>>,
    as_facs: BTreeMap<Asn, BTreeSet<FacilityId>>,
    as_ixps: BTreeMap<Asn, BTreeSet<IxpId>>,
    as_info: BTreeMap<Asn, AsInfo>,
    route_servers: HashMap<Asn, IxpId>,
    empty_asns: BTreeSet<Asn>,
    empty_facs: BTreeSet<FacilityId>,
    empty_ixps: BTreeSet<IxpId>,
}

impl ColocationMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a facility; its `id` must equal the current facility count.
    pub fn add_facility(&mut self, facility: Facility) -> FacilityId {
        assert_eq!(facility.id.0 as usize, self.facilities.len(), "non-dense facility id");
        let id = facility.id;
        self.facilities.push(facility);
        self.fac_members.push(BTreeSet::new());
        self.fac_ixps.push(BTreeSet::new());
        id
    }

    /// Registers an IXP; its `id` must equal the current IXP count.
    pub fn add_ixp(&mut self, ixp: Ixp) -> IxpId {
        assert_eq!(ixp.id.0 as usize, self.ixps.len(), "non-dense ixp id");
        let id = ixp.id;
        if let Some(rs) = ixp.route_server_asn {
            self.route_servers.insert(rs, id);
        }
        self.ixps.push(ixp);
        self.ixp_members.push(BTreeSet::new());
        self.ixp_facs.push(BTreeSet::new());
        id
    }

    /// Registers AS metadata.
    pub fn add_as_info(&mut self, info: AsInfo) {
        self.as_info.insert(info.asn, info);
    }

    /// Records that `asn` is a tenant of `fac`.
    pub fn add_fac_member(&mut self, fac: FacilityId, asn: Asn) {
        self.fac_members[fac.0 as usize].insert(asn);
        self.as_facs.entry(asn).or_default().insert(fac);
    }

    /// Records that `asn` is a member of `ixp`.
    pub fn add_ixp_member(&mut self, ixp: IxpId, asn: Asn) {
        self.ixp_members[ixp.0 as usize].insert(asn);
        self.as_ixps.entry(asn).or_default().insert(ixp);
    }

    /// Records that `ixp` has switching fabric inside `fac`.
    pub fn link_ixp_facility(&mut self, ixp: IxpId, fac: FacilityId) {
        self.ixp_facs[ixp.0 as usize].insert(fac);
        self.fac_ixps[fac.0 as usize].insert(ixp);
    }

    // ---- entity accessors ----

    /// All facilities.
    pub fn facilities(&self) -> &[Facility] {
        &self.facilities
    }

    /// All IXPs.
    pub fn ixps(&self) -> &[Ixp] {
        &self.ixps
    }

    /// Facility metadata.
    pub fn facility(&self, id: FacilityId) -> Option<&Facility> {
        self.facilities.get(id.0 as usize)
    }

    /// IXP metadata.
    pub fn ixp(&self, id: IxpId) -> Option<&Ixp> {
        self.ixps.get(id.0 as usize)
    }

    /// AS metadata, if registered.
    pub fn as_info(&self, asn: Asn) -> Option<&AsInfo> {
        self.as_info.get(&asn)
    }

    /// All registered AS records.
    pub fn as_infos(&self) -> impl Iterator<Item = &AsInfo> {
        self.as_info.values()
    }

    // ---- relation queries ----

    /// The tenants of a facility (empty for unknown ids).
    pub fn members_of_facility(&self, fac: FacilityId) -> &BTreeSet<Asn> {
        self.fac_members.get(fac.0 as usize).unwrap_or(&self.empty_asns)
    }

    /// The members of an IXP (empty for unknown ids).
    pub fn members_of_ixp(&self, ixp: IxpId) -> &BTreeSet<Asn> {
        self.ixp_members.get(ixp.0 as usize).unwrap_or(&self.empty_asns)
    }

    /// The facilities hosting an IXP's fabric (empty for unknown ids).
    pub fn facilities_of_ixp(&self, ixp: IxpId) -> &BTreeSet<FacilityId> {
        self.ixp_facs.get(ixp.0 as usize).unwrap_or(&self.empty_facs)
    }

    /// The IXPs with fabric inside a facility (empty for unknown ids).
    pub fn ixps_at_facility(&self, fac: FacilityId) -> &BTreeSet<IxpId> {
        self.fac_ixps.get(fac.0 as usize).unwrap_or(&self.empty_ixps)
    }

    /// The facilities an AS is present in (empty set if unknown).
    pub fn facilities_of_as(&self, asn: Asn) -> BTreeSet<FacilityId> {
        self.as_facs.get(&asn).cloned().unwrap_or_default()
    }

    /// The IXPs an AS is a member of (empty set if unknown).
    pub fn ixps_of_as(&self, asn: Asn) -> BTreeSet<IxpId> {
        self.as_ixps.get(&asn).cloned().unwrap_or_default()
    }

    /// Facilities where both ASes are present.
    pub fn common_facilities(&self, a: Asn, b: Asn) -> BTreeSet<FacilityId> {
        match (self.as_facs.get(&a), self.as_facs.get(&b)) {
            (Some(x), Some(y)) => x.intersection(y).copied().collect(),
            _ => BTreeSet::new(),
        }
    }

    /// IXPs where both ASes are members.
    pub fn common_ixps(&self, a: Asn, b: Asn) -> BTreeSet<IxpId> {
        match (self.as_ixps.get(&a), self.as_ixps.get(&b)) {
            (Some(x), Some(y)) => x.intersection(y).copied().collect(),
            _ => BTreeSet::new(),
        }
    }

    /// Whether `asn` is present at facility `fac`.
    pub fn is_at_facility(&self, asn: Asn, fac: FacilityId) -> bool {
        self.fac_members[fac.0 as usize].contains(&asn)
    }

    /// Facilities located in `city`.
    pub fn facilities_in_city(&self, city: CityId) -> Vec<FacilityId> {
        self.facilities.iter().filter(|f| f.city == city).map(|f| f.id).collect()
    }

    /// IXPs headquartered in `city`.
    pub fn ixps_in_city(&self, city: CityId) -> Vec<IxpId> {
        self.ixps.iter().filter(|x| x.city == city).map(|x| x.id).collect()
    }

    /// If `asn` is a route server, the IXP it serves.
    pub fn route_server_ixp(&self, asn: Asn) -> Option<IxpId> {
        self.route_servers.get(&asn).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entities::AsType;
    use crate::geo::{Continent, GeoPoint};

    fn fac(id: u32, city: u32) -> Facility {
        Facility {
            id: FacilityId(id),
            name: format!("Fac {id}"),
            address: "1 Example St".into(),
            postcode: format!("PC{id}"),
            country: "GB".into(),
            city: CityId(city),
            continent: Continent::Europe,
            point: GeoPoint::new(51.5, -0.1),
            operator: "Op".into(),
        }
    }

    fn ixp(id: u32, city: u32, rs: Option<u32>) -> Ixp {
        Ixp {
            id: IxpId(id),
            name: format!("IXP {id}"),
            url: format!("ixp{id}.net"),
            city: CityId(city),
            continent: Continent::Europe,
            route_server_asn: rs.map(Asn),
        }
    }

    fn sample_map() -> ColocationMap {
        let mut m = ColocationMap::new();
        let f0 = m.add_facility(fac(0, 0));
        let f1 = m.add_facility(fac(1, 0));
        let f2 = m.add_facility(fac(2, 1));
        let x0 = m.add_ixp(ixp(0, 0, Some(64900)));
        m.link_ixp_facility(x0, f0);
        m.link_ixp_facility(x0, f1);
        for asn in [10, 20, 30] {
            m.add_fac_member(f0, Asn(asn));
            m.add_ixp_member(x0, Asn(asn));
        }
        m.add_fac_member(f1, Asn(20));
        m.add_fac_member(f2, Asn(30));
        m.add_as_info(AsInfo {
            asn: Asn(10),
            name: "AS ten".into(),
            as_type: AsType::Tier2,
            home_city: CityId(0),
        });
        m
    }

    #[test]
    fn relation_queries() {
        let m = sample_map();
        assert_eq!(m.members_of_facility(FacilityId(0)).len(), 3);
        assert_eq!(m.facilities_of_as(Asn(20)), [FacilityId(0), FacilityId(1)].into());
        assert_eq!(m.common_facilities(Asn(10), Asn(20)), [FacilityId(0)].into());
        assert_eq!(m.common_facilities(Asn(10), Asn(99)), BTreeSet::new());
        assert_eq!(m.common_ixps(Asn(10), Asn(30)), [IxpId(0)].into());
        assert!(m.is_at_facility(Asn(30), FacilityId(2)));
        assert!(!m.is_at_facility(Asn(10), FacilityId(2)));
    }

    #[test]
    fn ixp_facility_links() {
        let m = sample_map();
        assert_eq!(m.facilities_of_ixp(IxpId(0)).len(), 2);
        assert_eq!(m.ixps_at_facility(FacilityId(0)), &[IxpId(0)].into());
        assert!(m.ixps_at_facility(FacilityId(2)).is_empty());
    }

    #[test]
    fn city_and_route_server_lookups() {
        let m = sample_map();
        assert_eq!(m.facilities_in_city(CityId(0)), vec![FacilityId(0), FacilityId(1)]);
        assert_eq!(m.ixps_in_city(CityId(0)), vec![IxpId(0)]);
        assert_eq!(m.route_server_ixp(Asn(64900)), Some(IxpId(0)));
        assert_eq!(m.route_server_ixp(Asn(1)), None);
        assert_eq!(m.as_info(Asn(10)).unwrap().name, "AS ten");
    }

    #[test]
    #[should_panic(expected = "non-dense facility id")]
    fn dense_ids_enforced() {
        let mut m = ColocationMap::new();
        m.add_facility(fac(5, 0));
    }
}

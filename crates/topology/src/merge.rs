//! Cross-source merging (paper §3.3).
//!
//! "Since names of facilities and facility operators are not standardized,
//! we use the facility address (postcode and country) to identify common
//! facilities among the different data sources. ... To identify and merge
//! the records that refer to the same IXP we use the URLs of the IXP
//! websites, and the location (city/country) where the IXP operates."

use crate::colomap::ColocationMap;
use crate::entities::{CityId, Facility, FacilityId, Ixp, IxpId};
use crate::geo::{CityGazetteer, GeoPoint};
use crate::sources::{normalize_country, normalize_postcode, normalize_url, ColoSnapshot};
use std::collections::HashMap;

/// Statistics describing one merge run, for observability and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Facility records read across all snapshots.
    pub facility_records: usize,
    /// Distinct facilities after address-based merging.
    pub merged_facilities: usize,
    /// IXP records read across all snapshots.
    pub ixp_records: usize,
    /// Distinct IXPs after URL/city-based merging.
    pub merged_ixps: usize,
    /// Records dropped because the city could not be geocoded.
    pub dropped_ungeocodable: usize,
}

/// Merges snapshots from multiple sources into one [`ColocationMap`].
///
/// Later snapshots only *add* information (extra tenants/members, filled-in
/// operator names); identity is decided by the normalized keys.
pub fn merge_snapshots(
    snapshots: &[ColoSnapshot],
    gazetteer: &CityGazetteer,
) -> (ColocationMap, MergeStats) {
    let mut stats = MergeStats::default();
    let mut map = ColocationMap::new();

    // facility key -> id
    let mut fac_index: HashMap<(String, String), FacilityId> = HashMap::new();
    // ixp key -> id
    let mut ixp_index: HashMap<String, IxpId> = HashMap::new();
    let mut next_fac = 0u32;
    let mut next_ixp = 0u32;

    for snap in snapshots {
        for f in &snap.facilities {
            stats.facility_records += 1;
            let Some(city_idx) = gazetteer.geocode(&f.city_name) else {
                stats.dropped_ungeocodable += 1;
                continue;
            };
            let key = (normalize_postcode(&f.postcode), normalize_country(&f.country));
            let id = *fac_index.entry(key).or_insert_with(|| {
                let city = &gazetteer.cities()[city_idx];
                let id = FacilityId(next_fac);
                next_fac += 1;
                map.add_facility(Facility {
                    id,
                    name: f.name.clone(),
                    address: f.address.clone(),
                    postcode: normalize_postcode(&f.postcode),
                    country: normalize_country(&f.country),
                    city: CityId(city_idx as u32),
                    continent: city.continent,
                    point: f.point.unwrap_or(GeoPoint { lat: city.point.lat, lon: city.point.lon }),
                    operator: f.operator.clone(),
                });
                id
            });
            for &t in &f.tenants {
                map.add_fac_member(id, t);
            }
        }
    }

    // IXPs second so facility keys resolve regardless of snapshot order.
    for snap in snapshots {
        for x in &snap.ixps {
            stats.ixp_records += 1;
            let Some(city_idx) = gazetteer.geocode(&x.city_name) else {
                stats.dropped_ungeocodable += 1;
                continue;
            };
            let url_key = normalize_url(&x.url);
            let key = if url_key.is_empty() {
                format!("name:{}@{}", x.name.to_ascii_lowercase(), city_idx)
            } else {
                format!("url:{url_key}")
            };
            let id = *ixp_index.entry(key).or_insert_with(|| {
                let city = &gazetteer.cities()[city_idx];
                let id = IxpId(next_ixp);
                next_ixp += 1;
                map.add_ixp(Ixp {
                    id,
                    name: x.name.clone(),
                    url: url_key.clone(),
                    city: CityId(city_idx as u32),
                    continent: city.continent,
                    route_server_asn: x.route_server_asn,
                });
                id
            });
            for &m in &x.members {
                map.add_ixp_member(id, m);
            }
            for (pc, cc) in &x.facility_keys {
                let fkey = (normalize_postcode(pc), normalize_country(cc));
                if let Some(&fid) = fac_index.get(&fkey) {
                    map.link_ixp_facility(id, fid);
                }
            }
        }
    }

    stats.merged_facilities = map.facilities().len();
    stats.merged_ixps = map.ixps().len();
    (map, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{SourceFacility, SourceIxp};
    use kepler_bgp::Asn;

    fn fac(name: &str, pc: &str, cc: &str, city: &str, tenants: &[u32]) -> SourceFacility {
        SourceFacility {
            name: name.into(),
            address: "addr".into(),
            postcode: pc.into(),
            country: cc.into(),
            city_name: city.into(),
            operator: String::new(),
            point: None,
            tenants: tenants.iter().map(|&a| Asn(a)).collect(),
        }
    }

    #[test]
    fn facilities_merge_by_postcode_despite_names() {
        let mut a = ColoSnapshot::new("peeringdb");
        a.facilities.push(fac("Telehouse East", "E14 2AA", "GB", "London", &[1, 2]));
        let mut b = ColoSnapshot::new("datacentermap");
        b.facilities.push(fac("TELEHOUSE London East", "e142aa", "gb", "LON", &[2, 3]));
        let (map, stats) = merge_snapshots(&[a, b], &CityGazetteer::new());
        assert_eq!(stats.facility_records, 2);
        assert_eq!(stats.merged_facilities, 1);
        assert_eq!(map.members_of_facility(FacilityId(0)).len(), 3, "tenant union");
        assert_eq!(map.facility(FacilityId(0)).unwrap().name, "Telehouse East", "first name wins");
    }

    #[test]
    fn distinct_postcodes_stay_separate() {
        let mut a = ColoSnapshot::new("peeringdb");
        a.facilities.push(fac("F1", "E14 2AA", "GB", "London", &[1]));
        a.facilities.push(fac("F2", "EC1A 1BB", "GB", "London", &[1]));
        let (map, stats) = merge_snapshots(&[a], &CityGazetteer::new());
        assert_eq!(stats.merged_facilities, 2);
        assert_eq!(map.facilities_of_as(Asn(1)).len(), 2);
    }

    #[test]
    fn ixps_merge_by_url_and_link_to_facilities() {
        let mut a = ColoSnapshot::new("peeringdb");
        a.facilities.push(fac("Telehouse East", "E14 2AA", "GB", "London", &[1]));
        a.ixps.push(SourceIxp {
            name: "LINX LON1".into(),
            url: "https://www.linx.net/".into(),
            city_name: "London".into(),
            members: vec![Asn(1), Asn(2)],
            facility_keys: vec![("E14 2AA".into(), "GB".into())],
            route_server_asn: Some(Asn(8714)),
        });
        let mut b = ColoSnapshot::new("euro-ix");
        b.ixps.push(SourceIxp {
            name: "London Internet Exchange".into(),
            url: "linx.net".into(),
            city_name: "LON".into(),
            members: vec![Asn(3)],
            facility_keys: vec![],
            route_server_asn: None,
        });
        let (map, stats) = merge_snapshots(&[a, b], &CityGazetteer::new());
        assert_eq!(stats.merged_ixps, 1);
        assert_eq!(map.members_of_ixp(IxpId(0)).len(), 3);
        assert_eq!(map.facilities_of_ixp(IxpId(0)).len(), 1);
        assert_eq!(map.route_server_ixp(Asn(8714)), Some(IxpId(0)));
    }

    #[test]
    fn ungeocodable_records_dropped() {
        let mut a = ColoSnapshot::new("peeringdb");
        a.facilities.push(fac("F", "123", "XX", "Atlantis", &[1]));
        let (_, stats) = merge_snapshots(&[a], &CityGazetteer::new());
        assert_eq!(stats.dropped_ungeocodable, 1);
        assert_eq!(stats.merged_facilities, 0);
    }

    #[test]
    fn urlless_ixps_key_by_name_and_city() {
        let mut a = ColoSnapshot::new("s1");
        a.ixps.push(SourceIxp {
            name: "Tiny-IX".into(),
            url: String::new(),
            city_name: "Oslo".into(),
            members: vec![Asn(5)],
            facility_keys: vec![],
            route_server_asn: None,
        });
        let mut b = ColoSnapshot::new("s2");
        b.ixps.push(SourceIxp {
            name: "tiny-ix".into(),
            url: String::new(),
            city_name: "OSL".into(),
            members: vec![Asn(6)],
            facility_keys: vec![],
            route_server_asn: None,
        });
        let (map, stats) = merge_snapshots(&[a, b], &CityGazetteer::new());
        assert_eq!(stats.merged_ixps, 1);
        assert_eq!(map.members_of_ixp(IxpId(0)).len(), 2);
    }
}

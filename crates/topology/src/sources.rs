//! Heterogeneous colocation data sources.
//!
//! Mirrors the paper's inputs: PeeringDB and DataCenterMap publish
//! overlapping but differently-keyed views of the colocation world —
//! facility and IXP *names* differ between sources ("Telehouse East" vs
//! "TELEHOUSE London East"), so records can only be reconciled through
//! stable keys: postal address for facilities, website URL and city for
//! IXPs (§3.3).

use crate::geo::GeoPoint;
use kepler_bgp::Asn;
use serde::{Deserialize, Serialize};

/// A facility record as one source publishes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceFacility {
    /// Source-specific display name.
    pub name: String,
    /// Street address.
    pub address: String,
    /// Postcode (merge key together with country).
    pub postcode: String,
    /// ISO country code (merge key).
    pub country: String,
    /// City name as this source spells it.
    pub city_name: String,
    /// Operator name, possibly empty.
    pub operator: String,
    /// Coordinates if the source provides them.
    pub point: Option<GeoPoint>,
    /// Member ASes this source knows about.
    pub tenants: Vec<Asn>,
}

/// An IXP record as one source publishes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceIxp {
    /// Source-specific display name.
    pub name: String,
    /// Website URL (primary merge key).
    pub url: String,
    /// City name as this source spells it.
    pub city_name: String,
    /// Member ASNs this source knows about.
    pub members: Vec<Asn>,
    /// Facilities hosting switch fabric, referenced by `(postcode, country)`.
    pub facility_keys: Vec<(String, String)>,
    /// Route-server ASN if known.
    pub route_server_asn: Option<Asn>,
}

/// One source's complete snapshot.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ColoSnapshot {
    /// Human-readable source name ("peeringdb", "datacentermap").
    pub source: String,
    /// Facility records.
    pub facilities: Vec<SourceFacility>,
    /// IXP records.
    pub ixps: Vec<SourceIxp>,
}

impl ColoSnapshot {
    /// An empty snapshot for `source`.
    pub fn new(source: &str) -> Self {
        ColoSnapshot { source: source.to_string(), ..Default::default() }
    }
}

/// Normalizes a postcode for cross-source matching: uppercase, no spaces.
pub fn normalize_postcode(pc: &str) -> String {
    pc.chars().filter(|c| !c.is_whitespace()).collect::<String>().to_ascii_uppercase()
}

/// Normalizes a country code.
pub fn normalize_country(cc: &str) -> String {
    cc.trim().to_ascii_uppercase()
}

/// Normalizes a URL for cross-source matching: lowercase, scheme and
/// trailing slash stripped.
pub fn normalize_url(url: &str) -> String {
    let u = url.trim().to_ascii_lowercase();
    let u = u.strip_prefix("https://").or_else(|| u.strip_prefix("http://")).unwrap_or(&u);
    let u = u.strip_prefix("www.").unwrap_or(u);
    u.trim_end_matches('/').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postcode_normalization() {
        assert_eq!(normalize_postcode("E14 2AA"), "E142AA");
        assert_eq!(normalize_postcode(" 60314 "), "60314");
    }

    #[test]
    fn url_normalization_unifies_variants() {
        for v in ["https://www.ams-ix.net/", "http://ams-ix.net", "AMS-IX.net/"] {
            assert_eq!(normalize_url(v), "ams-ix.net", "{v}");
        }
    }

    #[test]
    fn country_normalization() {
        assert_eq!(normalize_country(" de "), "DE");
    }
}

//! The Kepler system: all modules wired per the paper's Figure 6.

use crate::config::KeplerConfig;
use crate::dataplane::{confirm, DataPlaneProbe};
use crate::events::{OutageReport, OutageScope, SignalClass, ValidationStatus};
use crate::ingest::{AnyIngest, ParallelIngest};
use crate::input::InputModule;
use crate::intern::{DenseRouteEvent, Interner};
use crate::investigate::{Investigator, LocalizedIncident, PendingIncident};
use crate::monitor::{DenseBinOutcome, Monitor};
use crate::shard::{AnyMonitor, ShardedMonitor};
use crate::signal::{BinView, SignalKind, SignalSource, SourceContribution, SourceSignal};
use crate::tracker::{IncidentMeta, Tracker};
use kepler_bgp::Asn;
use kepler_bgpstream::{BgpRecord, GapTracker, Timestamp};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_probe::{
    BackendHealth, FacilityVerdict, HopEvidence, ProbeRequest, Prober, RestorationProber,
};
use kepler_topology::{ColocationMap, FacilityId, OrgMap};
use std::collections::{BTreeMap, BTreeSet};

/// Everything Kepler needs to start.
pub struct KeplerInputs {
    /// Pipeline configuration.
    pub config: KeplerConfig,
    /// The community dictionary (mined or ground-truth).
    pub dictionary: CommunityDictionary,
    /// The colocation map (merged from public sources).
    pub colo: ColocationMap,
    /// AS-to-organization map.
    pub orgs: OrgMap,
}

/// Classification counters over a run (drives the Figure 7a sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Signal groups dismissed as link-level.
    pub link_level: usize,
    /// Signal groups dismissed as AS-level.
    pub as_level: usize,
    /// Signal groups dismissed as operator-level.
    pub operator_level: usize,
    /// PoP-level incidents localized.
    pub pop_level: usize,
    /// PoP-level groups that could not be localized.
    pub unresolved: usize,
    /// Incidents discarded because the data plane contradicted them.
    pub dataplane_rejected: usize,
    /// Ambiguous localizations resolved to a single facility by targeted
    /// probes.
    pub probe_confirmed: usize,
    /// Suspicions suppressed because probes refuted every candidate (or
    /// the fallback epicenter).
    pub probe_refuted: usize,
    /// Probe campaigns that could not decide (fell back to the passive
    /// verdict).
    pub probe_inconclusive: usize,
    /// Pending localizations settled from the evidence accumulated on an
    /// already-open incident (no fresh campaign was needed).
    pub evidence_reused: usize,
    /// Incidents closed by restoration re-probes (before the BGP watch
    /// list recovered).
    pub probe_closed: usize,
    /// Pending localizations settled passively because the measurement
    /// backend was degraded or offline (campaign below its completeness
    /// quorum): the detector kept running on control-plane evidence
    /// alone instead of blocking on the platform.
    pub degraded_passive: usize,
    /// Passively-settled incidents later upgraded to probe-confirmed by
    /// re-validation after the backend recovered.
    pub deferred_revalidated: usize,
    /// Forecast-deficit signals raised (signal-bins, across PoPs).
    pub forecast_signals: usize,
    /// Delay-anomaly signals raised (signal-bins, across sites).
    pub delay_signals: usize,
    /// Auxiliary signals that corroborated an already-open incident.
    pub fused_corroborations: usize,
    /// Incidents opened by auxiliary signals alone (no deviation group).
    pub fused_opens: usize,
    /// Auxiliary signals suppressed below the fusion opening quorum.
    pub aux_suppressed: usize,
}

/// A pending localization parked while the measurement backend was
/// degraded, waiting for re-validation once the platform recovers.
struct DeferredPending {
    pending: PendingIncident,
    /// Re-validation rounds already spent on this pending.
    attempts: u32,
}

/// Most pendings parked for backend recovery at any time; beyond this the
/// oldest suspicions stay passive-only (bounded memory under a brownout
/// that never ends).
const DEFER_CAP: usize = 32;
/// Re-validation rounds before a parked pending is dropped for good.
const DEFER_ATTEMPTS: u32 = 2;

/// The Kepler detection system.
pub struct Kepler {
    config: KeplerConfig,
    ingest: AnyIngest,
    interner: Interner,
    monitor: AnyMonitor,
    investigator: Investigator,
    tracker: Tracker,
    dataplane: Option<Box<dyn DataPlaneProbe>>,
    prober: Option<Box<dyn Prober>>,
    restoration: Option<Box<dyn RestorationProber>>,
    signal_sources: Vec<Box<dyn SignalSource>>,
    deferred: Vec<DeferredPending>,
    counts: ClassCounts,
    last_time: Timestamp,
    /// Reusable buffer for events drained from the ingest stage.
    event_scratch: Vec<(Timestamp, DenseRouteEvent)>,
    /// Monitor bins handled so far — the serve daemon's commit clock.
    bins_closed: u64,
    /// End of the most recently handled bin.
    last_bin_end: Timestamp,
}

impl Kepler {
    /// Builds the system.
    pub fn new(inputs: KeplerInputs) -> Self {
        let config = inputs.config.clone();
        let mut tracker = Tracker::new(config.clone());
        tracker.set_geography(&inputs.colo);
        Kepler {
            ingest: AnyIngest::Serial {
                input: InputModule::new(inputs.dictionary, inputs.colo.clone()),
                gap: GapTracker::new(config.quarantine_secs),
            },
            interner: Interner::new(),
            monitor: AnyMonitor::Single(Monitor::new(config.clone())),
            investigator: Investigator::new(config.clone(), inputs.colo, inputs.orgs),
            tracker,
            dataplane: None,
            prober: None,
            restoration: None,
            signal_sources: Vec::new(),
            deferred: Vec::new(),
            counts: ClassCounts::default(),
            config,
            last_time: 0,
            event_scratch: Vec::new(),
            bins_closed: 0,
            last_bin_end: 0,
        }
    }

    /// Attaches a data-plane measurement backend for incident confirmation.
    pub fn with_dataplane(mut self, probe: Box<dyn DataPlaneProbe>) -> Self {
        self.dataplane = Some(probe);
        self
    }

    /// Attaches an active-measurement prober (`kepler-probe` engine or a
    /// deployment equivalent). Localizations the investigator flags as
    /// low-confidence are handed to it for facility-level disambiguation;
    /// confident localizations never touch it, so attaching a prober
    /// cannot change outcomes for events it does not probe.
    ///
    /// ```
    /// use kepler_core::{Kepler, KeplerConfig, KeplerInputs};
    /// use kepler_bgpstream::Timestamp;
    /// use kepler_docmine::CommunityDictionary;
    /// use kepler_probe::{ProbeReport, ProbeRequest, Prober};
    /// use kepler_topology::{ColocationMap, OrgMap};
    ///
    /// /// The contract made executable: a stream without ambiguous
    /// /// localizations never consults the prober at all.
    /// struct NeverConsulted;
    /// impl Prober for NeverConsulted {
    ///     fn validate(&mut self, r: &ProbeRequest, _: Timestamp) -> ProbeReport {
    ///         unreachable!("nothing ambiguous to probe: {r:?}")
    ///     }
    /// }
    ///
    /// let inputs = KeplerInputs {
    ///     config: KeplerConfig::default(),
    ///     dictionary: CommunityDictionary::new(),
    ///     colo: ColocationMap::new(),
    ///     orgs: OrgMap::new(),
    /// };
    /// let kepler = Kepler::new(inputs).with_prober(Box::new(NeverConsulted));
    /// assert!(kepler.run(Vec::new()).is_empty());
    /// ```
    pub fn with_prober(mut self, prober: Box<dyn Prober>) -> Self {
        self.prober = Some(prober);
        self
    }

    /// Attaches a restoration prober: open incidents — facility-, IXP-
    /// or city-scoped — are re-probed on an exponential-backoff schedule
    /// and closed once two consecutive checks observe baseline paths
    /// crossing the epicenter again — typically well before the BGP watch list recovers. Without
    /// one, incidents close on control-plane restoration alone.
    pub fn with_restoration_prober(mut self, prober: Box<dyn RestorationProber>) -> Self {
        self.restoration = Some(prober);
        self
    }

    /// Attaches an auxiliary signal source ([`crate::signal`]): polled
    /// once per closed bin and fused with the deviation pipeline under
    /// conservative opening rules (see [`Self::watch_presence`] for the
    /// forecast detector's input series). With no sources attached the
    /// fusion stage is skipped entirely, so plain runs are bit-identical
    /// to pre-fusion behavior.
    pub fn with_signal_source(mut self, source: Box<dyn SignalSource>) -> Self {
        self.signal_sources.push(source);
        self
    }

    /// Attaches remote-peering evidence ([`crate::remote`]) to the
    /// investigator: members the latency heuristic flags as remote at an
    /// exchange never nominate their distant home facilities as
    /// epicenter candidates for that metro's signals. An empty map (the
    /// default) changes nothing.
    pub fn with_remoteness(mut self, remoteness: crate::remote::RemotenessMap) -> Self {
        self.investigator = self.investigator.with_remoteness(remoteness);
        self
    }

    /// Replaces the serial decode stage with an N-way parallel ingest
    /// pipeline ([`ParallelIngest`]). Must be called before the first
    /// record is processed (per-session decode state is not migrated).
    pub fn with_parallel_ingest(mut self, workers: usize) -> Self {
        assert_eq!(self.last_time, 0, "with_parallel_ingest must precede processing");
        let AnyIngest::Serial { input, .. } = &self.ingest else {
            return self; // already parallel
        };
        self.ingest =
            AnyIngest::Parallel(ParallelIngest::new(input, self.config.quarantine_secs, workers));
        self
    }

    /// Replaces the monitor with an N-way sharded one. Must be called
    /// before the first record is processed (monitor state is not
    /// migrated).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert_eq!(self.last_time, 0, "with_shards must precede processing");
        // Carry registered watches over to the replacement monitor.
        let watched = self.monitor.watched_pops();
        let presence = self.monitor.presence_watched().to_vec();
        self.monitor = AnyMonitor::Sharded(ShardedMonitor::new(self.config.clone(), shards));
        for pop in watched {
            self.monitor.watch(pop);
        }
        for pop in presence {
            self.monitor.watch_presence(pop);
        }
        self
    }

    /// Registers a PoP whose per-bin change fraction should be recorded.
    pub fn watch(&mut self, pop: kepler_docmine::LocationTag) {
        let pop = self.interner.pop_id(pop);
        self.monitor.watch(pop);
    }

    /// Registers a PoP whose announced-crossing presence count should be
    /// sampled at every bin close — the forecast signal source's input
    /// series. Typically every trackable facility the forecast detector
    /// should cover.
    pub fn watch_presence(&mut self, pop: kepler_docmine::LocationTag) {
        let pop = self.interner.pop_id(pop);
        self.monitor.watch_presence(pop);
    }

    /// The recorded series of a watched PoP.
    pub fn watch_series(&self, pop: kepler_docmine::LocationTag) -> Option<&[(Timestamp, f64)]> {
        let pop = self.interner.lookup_pop(pop)?;
        self.monitor.watch_series(pop)
    }

    /// Input-module statistics (coverage fractions etc.). In parallel
    /// ingest mode these cover every record merged back so far; after
    /// [`finish`](Self::finish) they cover the whole run.
    pub fn input_stats(&self) -> &crate::input::InputStats {
        self.ingest.stats()
    }

    /// Classification counters.
    pub fn class_counts(&self) -> ClassCounts {
        self.counts
    }

    /// Lifecycle states of the incidents currently tracked (`Open` /
    /// `Recovering`; incidents past the oscillation window have already
    /// been finalized and left this list).
    pub fn incident_states(&self) -> Vec<(OutageScope, crate::events::IncidentState)> {
        self.tracker.live_states()
    }

    /// Monitor bins handled so far. Increments every time a bin closes
    /// anywhere in the stream — a long-running shell (the `kepler-serve`
    /// daemon) polls this after each record and commits incident-state
    /// deltas exactly once per closed-bin batch.
    pub fn bins_closed(&self) -> u64 {
        self.bins_closed
    }

    /// End timestamp of the most recently handled bin (0 before any bin
    /// closes) — the deterministic clock the serve daemon stamps WAL
    /// commits and alerts with.
    pub fn last_bin_end(&self) -> Timestamp {
        self.last_bin_end
    }

    /// Exports the tracker's full lifecycle state in display space
    /// ([`crate::tracker::TrackerState`]) — the image a durable incident
    /// store persists and replays.
    pub fn export_incidents(&self) -> crate::tracker::TrackerState {
        self.tracker.export(&self.interner)
    }

    /// Replaces the tracker's lifecycle state with an exported image,
    /// re-interning its display keys into this run's interner. Used by
    /// the serve daemon on restart: snapshot+WAL recovery reconstructs
    /// the [`crate::tracker::TrackerState`], and this hook seeds the
    /// fresh detector with it before the stream resumes.
    pub fn import_incidents(&mut self, state: &crate::tracker::TrackerState) {
        self.tracker.import(state, &mut self.interner);
    }

    /// Reports finalized so far (not including ongoing/cooling ones).
    pub fn finished_reports(&self) -> &[OutageReport] {
        self.tracker.finished()
    }

    /// The monitor (for inspection in tests and harnesses).
    pub fn monitor(&mut self) -> &mut AnyMonitor {
        &mut self.monitor
    }

    /// The dense-id interner of this run.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The monitor and interner together — a split borrow for callers
    /// that resolve tags while querying the monitor.
    pub fn monitor_and_interner(&mut self) -> (&mut AnyMonitor, &Interner) {
        (&mut self.monitor, &self.interner)
    }

    /// Feeds one record through the pipeline.
    pub fn process_record(&mut self, rec: &BgpRecord) {
        self.last_time = self.last_time.max(rec.time);
        let mut events = std::mem::take(&mut self.event_scratch);
        self.ingest.process_record(rec, &mut self.interner, &mut events);
        self.observe_events(&mut events);
        self.event_scratch = events;
    }

    /// Feeds one owned record — the parallel ingest path dispatches it to
    /// its worker without a deep clone ([`run`](Self::run) uses this).
    pub fn process_record_owned(&mut self, rec: BgpRecord) {
        self.last_time = self.last_time.max(rec.time);
        let mut events = std::mem::take(&mut self.event_scratch);
        self.ingest.process_record_owned(rec, &mut self.interner, &mut events);
        self.observe_events(&mut events);
        self.event_scratch = events;
    }

    /// Advances the bin clock to `t` without feeding a record: every
    /// dense bin ending at or before `t` closes, polling presence
    /// watches and auxiliary signal sources as usual. A quiet stream
    /// still gets monitored — a pure data-plane event (congestion
    /// brownout) leaves no control-plane records at all, but the delay
    /// detector's canary panel must keep tracing through the silence.
    pub fn advance_clock(&mut self, t: Timestamp) {
        self.last_time = self.last_time.max(t);
        let outcomes = self.monitor.advance_to(t);
        for outcome in outcomes {
            self.handle_bin(outcome);
        }
    }

    /// Feeds drained dense events to the monitor and handles closed bins.
    fn observe_events(&mut self, events: &mut Vec<(Timestamp, DenseRouteEvent)>) {
        for (t, event) in events.drain(..) {
            let outcomes = self.monitor.observe(t, &event);
            for outcome in outcomes {
                self.handle_bin(outcome);
            }
        }
    }

    /// Re-validates pendings parked during a backend brownout. Runs only
    /// while the prober reports [`BackendHealth::Online`]; a confirmed
    /// verdict upgrades the passively-settled incident via the tracker's
    /// merge (Unvalidated → Confirmed, fresh evidence attached). A
    /// refutation or inconclusive answer drops the parked pending
    /// silently — the passive incident already on record must not be
    /// erased by a late, post-hoc campaign.
    fn revalidate_deferred(&mut self, now: Timestamp) {
        if self.deferred.is_empty() {
            return;
        }
        let Some(mut prober) = self.prober.take() else { return };
        if prober.health() == BackendHealth::Online {
            for mut d in std::mem::take(&mut self.deferred) {
                let report = prober.validate(&d.pending.request(), now);
                if report.degraded {
                    // Browned out again mid-drain: requeue, boundedly.
                    d.attempts += 1;
                    if d.attempts < DEFER_ATTEMPTS {
                        self.deferred.push(d);
                    }
                    continue;
                }
                if let Some(fac) = report.resolved() {
                    self.counts.deferred_revalidated += 1;
                    let inc = d.pending.to_incident(OutageScope::Facility(fac));
                    let meta = IncidentMeta {
                        validation: ValidationStatus::Confirmed,
                        evidence: report.evidence,
                        completeness: report.completeness,
                        ..IncidentMeta::default()
                    };
                    self.tracker.record(&[inc], &[meta], &mut self.interner);
                }
            }
        }
        self.prober = Some(prober);
    }

    fn handle_bin(&mut self, outcome: DenseBinOutcome) {
        // Presence counts leave dense space here: `resolve` below does not
        // carry them (pre-fusion callers never see the field), so the
        // fusion stage samples them before the dense view is dropped.
        let presence: Vec<(LocationTag, u64)> = outcome
            .watch_presence
            .iter()
            .map(|&(pop, n)| (self.interner.pop_tag(pop), n))
            .collect();
        // Resolution back to display space happens here, once per closed
        // bin — the per-event path upstream is entirely dense.
        let outcome = outcome.resolve(&self.interner);
        self.bins_closed += 1;
        self.last_bin_end = outcome.bin_start.saturating_add(self.config.bin_secs);
        self.revalidate_deferred(outcome.bin_start);
        let investigation = self.investigator.investigate(&outcome);
        for (_, class) in &investigation.dismissed {
            match class {
                SignalClass::LinkLevel => self.counts.link_level += 1,
                SignalClass::AsLevel => self.counts.as_level += 1,
                SignalClass::OperatorLevel => self.counts.operator_level += 1,
                SignalClass::PopLevel => {}
            }
        }
        self.counts.unresolved += investigation.unresolved.len();
        // Low-confidence localizations: targeted probes disambiguate the
        // candidate facilities (paper §4.4 targeted campaigns). Without a
        // prober, each pending group collapses to its passive fallback.
        let mut settled: Vec<(LocalizedIncident, IncidentMeta)> = Vec::new();
        for pending in &investigation.pending {
            // Cross-bin evidence accumulation: an open incident whose
            // epicenter is among this group's candidates may already carry
            // a probe-confirmed verdict fresh enough to reuse — no new
            // campaign, the accumulated hop evidence travels along.
            let candidates: Vec<FacilityId> =
                pending.candidates.iter().map(|c| c.facility).collect();
            if let Some((fac, evidence)) =
                self.tracker.accumulated_confirmation(&candidates, outcome.bin_start)
            {
                self.counts.evidence_reused += 1;
                self.counts.unresolved =
                    self.counts.unresolved.saturating_sub(pending.booked_unresolved);
                settled.push((
                    pending.to_incident(OutageScope::Facility(fac)),
                    IncidentMeta {
                        validation: ValidationStatus::Confirmed,
                        evidence,
                        reused: true,
                        ..IncidentMeta::default()
                    },
                ));
                continue;
            }
            let (scope, validation, evidence, completeness) = match self.prober.as_mut() {
                None => match pending.fallback {
                    Some(scope) => (scope, ValidationStatus::Unvalidated, Vec::new(), 1.0),
                    None => continue,
                },
                Some(prober) => {
                    let report = prober.validate(&pending.request(), outcome.bin_start);
                    if report.degraded {
                        // The measurement backend browned out below its
                        // completeness quorum: the campaign's verdicts are
                        // not trustworthy. Degrade gracefully — settle on
                        // the passive fallback now, park the pending for
                        // re-validation once the platform recovers.
                        self.counts.degraded_passive += 1;
                        if self.deferred.len() < DEFER_CAP {
                            self.deferred
                                .push(DeferredPending { pending: pending.clone(), attempts: 0 });
                        }
                        match pending.fallback {
                            Some(scope) => (
                                scope,
                                ValidationStatus::Unvalidated,
                                Vec::new(),
                                report.completeness,
                            ),
                            None => continue,
                        }
                    } else if let Some(fac) = report.resolved() {
                        self.counts.probe_confirmed += 1;
                        // Clusters that were booked unresolved have been
                        // rescued by the probes; the pending carries the
                        // exact number of bookings it absorbed.
                        self.counts.unresolved =
                            self.counts.unresolved.saturating_sub(pending.booked_unresolved);
                        (
                            OutageScope::Facility(fac),
                            ValidationStatus::Confirmed,
                            report.evidence,
                            report.completeness,
                        )
                    } else {
                        let fallback_refuted = matches!(
                            pending.fallback,
                            Some(OutageScope::Facility(g))
                                if report.verdict_for(g) == Some(FacilityVerdict::Refuted)
                        );
                        if report.all_refuted() || fallback_refuted {
                            // Every suspect building is demonstrably
                            // forwarding: the suspicion was a false
                            // positive.
                            self.counts.probe_refuted += 1;
                            continue;
                        }
                        self.counts.probe_inconclusive += 1;
                        match pending.fallback {
                            Some(scope) => (
                                scope,
                                ValidationStatus::Inconclusive,
                                report.evidence,
                                report.completeness,
                            ),
                            None => continue,
                        }
                    }
                }
            };
            settled.push((
                pending.to_incident(scope),
                IncidentMeta { validation, evidence, completeness, ..IncidentMeta::default() },
            ));
        }
        // Data-plane confirmation: incidents contradicted by traceroutes
        // are discarded as false positives (paper §4.4).
        let mut kept = Vec::new();
        let mut meta = Vec::new();
        let confident =
            investigation.incidents.into_iter().map(|inc| (inc, IncidentMeta::default()));
        for (inc, mut m) in confident.chain(settled) {
            let verdict = self
                .dataplane
                .as_ref()
                .and_then(|dp| dp.probe(&inc.scope, outcome.bin_start))
                .map(|r| confirm(r, self.config.t_fail));
            if verdict == Some(false) {
                self.counts.dataplane_rejected += 1;
                continue;
            }
            self.counts.pop_level += 1;
            m.dataplane = verdict;
            kept.push(inc);
            meta.push(m);
        }
        self.tracker.record(&kept, &meta, &mut self.interner);
        // Auxiliary detectors run after the deviation pipeline recorded,
        // so their signals corroborate this bin's incidents directly.
        self.fuse_signals(&presence, outcome.bin_start);
        let bin_end = outcome.bin_start.saturating_add(self.config.bin_secs);
        // Probe-driven restoration first: a data-plane close stamps the
        // earlier end time before the control-plane check can.
        if let Some(rp) = self.restoration.as_mut() {
            self.counts.probe_closed += self.tracker.probe_restorations(bin_end, rp.as_mut());
        }
        self.tracker.check_restorations(bin_end, &mut self.monitor);
    }

    /// Polls every attached signal source for the closed bin and fuses
    /// the results with the deviation pipeline:
    ///
    /// * a signal whose scope matches (or is geographically related to)
    ///   an ongoing incident **corroborates** it — the contribution
    ///   merges into the incident's per-source ledger;
    /// * remaining signals group per scope and open an incident only
    ///   under a conservative quorum: two independent kinds agree, a
    ///   delay signal reaches the distinct-pair quorum on its own (its
    ///   evidence is already multi-vantage, and a reachability probe
    ///   would wrongly refute a still-forwarding brownout), or a
    ///   forecast-only suspicion is confirmed by a targeted campaign;
    /// * everything below the quorum is suppressed and counted.
    ///
    /// Incidents opened here carry empty watch lists (no deviated routes
    /// exist), so they close via restoration probes or stay open — the
    /// control-plane restoration check never fires vacuously.
    fn fuse_signals(&mut self, presence: &[(LocationTag, u64)], bin_start: Timestamp) {
        if self.signal_sources.is_empty() {
            return;
        }
        let view = BinView { bin_start, bin_secs: self.config.bin_secs, presence };
        let mut raised: Vec<(SignalKind, SourceSignal)> = Vec::new();
        for source in &mut self.signal_sources {
            let kind = source.kind();
            for sig in source.poll(&view) {
                match kind {
                    SignalKind::Forecast => self.counts.forecast_signals += 1,
                    SignalKind::Delay => self.counts.delay_signals += 1,
                    SignalKind::Deviation => {}
                }
                raised.push((kind, sig));
            }
        }
        if raised.is_empty() {
            return;
        }
        let mut standalone: BTreeMap<OutageScope, Vec<(SignalKind, SourceSignal)>> =
            BTreeMap::new();
        for (kind, sig) in raised {
            let contrib =
                SourceContribution { kind, confidence: sig.confidence, first_bin: bin_start };
            if self.tracker.corroborate(sig.scope, contrib) {
                self.counts.fused_corroborations += 1;
            } else {
                standalone.entry(sig.scope).or_default().push((kind, sig));
            }
        }
        for (scope, signals) in standalone {
            let kinds: BTreeSet<SignalKind> = signals.iter().map(|(k, _)| *k).collect();
            let delay_weight = signals
                .iter()
                .filter(|(k, _)| *k == SignalKind::Delay)
                .map(|(_, s)| s.weight)
                .max()
                .unwrap_or(0);
            let mut validation = ValidationStatus::Unvalidated;
            let mut evidence: Vec<HopEvidence> = Vec::new();
            let mut completeness = 1.0;
            let open = if kinds.len() >= 2 || delay_weight >= self.config.delay_min_anomalous_pairs
            {
                true
            } else if kinds.contains(&SignalKind::Forecast) {
                match self.probe_forecast_suspicion(scope, bin_start) {
                    Some((e, c)) => {
                        validation = ValidationStatus::Confirmed;
                        evidence = e;
                        completeness = c;
                        true
                    }
                    None => false,
                }
            } else {
                false
            };
            if !open {
                self.counts.aux_suppressed += signals.len();
                continue;
            }
            let mut sources: Vec<SourceContribution> = Vec::new();
            for (kind, sig) in &signals {
                match sources.iter_mut().find(|s| s.kind == *kind) {
                    Some(s) => s.confidence = s.confidence.max(sig.confidence),
                    None => sources.push(SourceContribution {
                        kind: *kind,
                        confidence: sig.confidence,
                        first_bin: bin_start,
                    }),
                }
            }
            sources.sort_by_key(|s| s.kind.tag());
            let inc = LocalizedIncident {
                scope,
                bin_start,
                affected_near: BTreeSet::new(),
                affected_far: self.scope_members(scope),
                affected_keys: Vec::new(),
                watch: Vec::new(),
            };
            let meta = IncidentMeta {
                validation,
                evidence,
                completeness,
                sources,
                ..IncidentMeta::default()
            };
            self.counts.fused_opens += 1;
            self.tracker.record(&[inc], &[meta], &mut self.interner);
        }
    }

    /// Runs a synthetic validation campaign for a forecast-only
    /// suspicion: the scope's own facilities are the candidates and its
    /// colocated members the targets. Returns the confirming evidence,
    /// or `None` when the suspicion stays suppressed — no prober
    /// attached, campaign degraded, refuted, or inconclusive.
    fn probe_forecast_suspicion(
        &mut self,
        scope: OutageScope,
        bin_start: Timestamp,
    ) -> Option<(Vec<HopEvidence>, f64)> {
        self.prober.as_ref()?;
        let colo = self.investigator.colo();
        let (pop, candidates): (LocationTag, Vec<FacilityId>) = match scope {
            OutageScope::Facility(f) => (LocationTag::Facility(f), vec![f]),
            OutageScope::Ixp(x) => {
                (LocationTag::Ixp(x), colo.facilities_of_ixp(x).iter().copied().collect())
            }
            OutageScope::City(c) => (LocationTag::City(c), colo.facilities_in_city(c)),
        };
        if candidates.is_empty() {
            return None;
        }
        let request = ProbeRequest {
            pop,
            bin_start,
            candidates,
            affected_far: self.scope_members(scope).into_iter().collect(),
            affected_near: Vec::new(),
        };
        let prober = self.prober.as_mut().expect("checked above");
        let report = prober.validate(&request, bin_start);
        if report.degraded {
            return None;
        }
        if report.resolved().is_some() {
            self.counts.probe_confirmed += 1;
            return Some((report.evidence, report.completeness));
        }
        if report.all_refuted() {
            self.counts.probe_refuted += 1;
        } else {
            self.counts.probe_inconclusive += 1;
        }
        None
    }

    /// The colocated member ASes of a scope — the affected-far display
    /// set for incidents opened without a deviation group.
    fn scope_members(&self, scope: OutageScope) -> BTreeSet<Asn> {
        let colo = self.investigator.colo();
        match scope {
            OutageScope::Facility(f) => colo.members_of_facility(f).clone(),
            OutageScope::Ixp(x) => colo.members_of_ixp(x).clone(),
            OutageScope::City(c) => {
                let mut members = BTreeSet::new();
                for f in colo.facilities_in_city(c) {
                    members.extend(colo.members_of_facility(f).iter().copied());
                }
                members
            }
        }
    }

    /// Feeds a whole stream, then finishes.
    pub fn run<I: IntoIterator<Item = BgpRecord>>(mut self, records: I) -> Vec<OutageReport> {
        for rec in records {
            self.process_record_owned(rec);
        }
        self.finish()
    }

    /// Flushes pending bins and closes the run.
    pub fn finish(mut self) -> Vec<OutageReport> {
        self.finalize()
    }

    /// Like [`finish`](Self::finish), but borrowing: the system stays
    /// alive for post-run inspection ([`class_counts`](Self::class_counts)
    /// includes work done during this final flush — e.g. incidents the
    /// restoration prober closed in the trailing bins).
    pub fn finalize(&mut self) -> Vec<OutageReport> {
        let mut events = std::mem::take(&mut self.event_scratch);
        self.ingest.finish(&mut self.interner, &mut events);
        self.observe_events(&mut events);
        let outcomes =
            self.monitor.advance_to(self.last_time.saturating_add(2 * self.config.bin_secs));
        for outcome in outcomes {
            self.handle_bin(outcome);
        }
        self.tracker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataplane::{FixedProbe, ProbeResult};
    use crate::events::OutageScope;
    use kepler_bgp::{AsPath, Asn, BgpUpdate, Community, PathAttributes, Prefix};
    use kepler_bgpstream::{CollectorId, PeerId, RecordPayload};
    use kepler_docmine::LocationTag;
    use kepler_topology::entities::Facility;
    use kepler_topology::{CityId, Continent, FacilityId, GeoPoint};

    const DAY: u64 = 86_400;
    const T0: u64 = 1_000_000;

    /// A synthetic world: facility 0 with near-end ASes 10,11,12 tagging
    /// routes received from far-end ASes 20..26, observed by peer AS 3356.
    fn inputs() -> KeplerInputs {
        let mut colo = ColocationMap::new();
        colo.add_facility(Facility {
            id: FacilityId(0),
            name: "F0".into(),
            address: String::new(),
            postcode: "P0".into(),
            country: "GB".into(),
            city: CityId(0),
            continent: Continent::Europe,
            point: GeoPoint::new(51.5, 0.0),
            operator: "Op".into(),
        });
        for a in [10u32, 11, 12, 20, 21, 22, 23, 24, 25] {
            colo.add_fac_member(FacilityId(0), Asn(a));
        }
        let mut dictionary = CommunityDictionary::new();
        for near in [10u16, 11, 12] {
            dictionary.insert(Community::new(near, 500), LocationTag::Facility(FacilityId(0)));
        }
        KeplerInputs {
            config: KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() },
            dictionary,
            colo,
            orgs: OrgMap::new(),
        }
    }

    fn peer() -> PeerId {
        PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() }
    }

    fn announce(t: u64, near: u32, far: u32, pfx: u8) -> BgpRecord {
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, near, far]),
            vec![Community::new(near as u16, 500)],
        );
        BgpRecord {
            time: t,
            collector: CollectorId(0),
            peer: peer(),
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(20, pfx, 0, 0, 16)],
                attrs,
            )),
        }
    }

    fn announce_detour(t: u64, far: u32, pfx: u8) -> BgpRecord {
        // Route now avoids the facility (no community).
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 99, far]),
            vec![],
        );
        BgpRecord {
            time: t,
            collector: CollectorId(0),
            peer: peer(),
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(20, pfx, 0, 0, 16)],
                attrs,
            )),
        }
    }

    /// Builds the base table: prefix i (0..6) via near 10+i%3, far 20+i.
    fn base_records() -> Vec<BgpRecord> {
        (0..6u8).map(|i| announce(T0, 10 + (i % 3) as u32, 20 + i as u32, i)).collect()
    }

    fn outage_records(t: u64) -> Vec<BgpRecord> {
        (0..6u8).map(|i| announce_detour(t + i as u64, 20 + i as u32, i)).collect()
    }

    fn restore_records(t: u64) -> Vec<BgpRecord> {
        (0..6u8).map(|i| announce(t + i as u64, 10 + (i % 3) as u32, 20 + i as u32, i)).collect()
    }

    #[test]
    fn detects_facility_outage_end_to_end() {
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        let t_restore = t_fail + 1800;
        records.extend(restore_records(t_restore));
        // A closing marker so bins flush well past the merge window.
        records.push(announce(t_restore + 13 * 3600, 10, 20, 0));
        let kepler = Kepler::new(inputs());
        let reports = kepler.run(records);
        assert_eq!(reports.len(), 1, "{reports:?}");
        let r = &reports[0];
        assert_eq!(r.scope, OutageScope::Facility(FacilityId(0)));
        assert!(r.start >= t_fail - 60 && r.start <= t_fail + 120, "start {}", r.start);
        let end = r.end.expect("restored");
        assert!(end >= t_restore && end <= t_restore + 600, "end {end}");
        assert_eq!(r.affected_near, [Asn(10), Asn(11), Asn(12)].into());
        assert!(r.affected_far.len() >= 3);
    }

    #[test]
    fn detects_facility_outage_with_parallel_ingest_and_shards() {
        // The fully parallel system: 3 ingest workers fanning into a
        // 2-way sharded monitor, same stream as the serial test above.
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        let t_restore = t_fail + 1800;
        records.extend(restore_records(t_restore));
        records.push(announce(t_restore + 13 * 3600, 10, 20, 0));
        let kepler = Kepler::new(inputs()).with_parallel_ingest(3).with_shards(2);
        let reports = kepler.run(records);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(0)));
        assert_eq!(reports[0].affected_near, [Asn(10), Asn(11), Asn(12)].into());
    }

    #[test]
    fn single_as_event_is_not_an_outage() {
        let mut records = base_records();
        let t_ev = T0 + 2 * DAY + 3600;
        // Only near-AS 10's routes detour (prefixes 0 and 3).
        records.push(announce_detour(t_ev, 20, 0));
        records.push(announce_detour(t_ev + 1, 23, 3));
        records.push(announce(t_ev + 10_000, 11, 21, 1));
        let kepler = Kepler::new(inputs());
        let reports = kepler.run(records);
        assert!(reports.is_empty(), "{reports:?}");
    }

    #[test]
    fn dataplane_rejection_discards_incident() {
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        records.push(announce(t_fail + 13 * 3600, 10, 20, 0));
        let kepler =
            Kepler::new(inputs()).with_dataplane(Box::new(FixedProbe(Some(ProbeResult {
                still_crossing: 10,
                baseline: 10,
            }))));
        let reports = kepler.run(records);
        assert!(reports.is_empty(), "dataplane contradiction discards: {reports:?}");
    }

    #[test]
    fn dataplane_confirmation_marks_report() {
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        records.push(announce(t_fail + 13 * 3600, 10, 20, 0));
        let kepler =
            Kepler::new(inputs()).with_dataplane(Box::new(FixedProbe(Some(ProbeResult {
                still_crossing: 0,
                baseline: 10,
            }))));
        let reports = kepler.run(records);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].dataplane_confirmed, Some(true));
    }

    #[test]
    fn collector_session_loss_is_not_an_outage() {
        use kepler_bgp::{PeerState, StateChange};
        let mut records = base_records();
        let t_ev = T0 + 2 * DAY + 3600;
        records.push(BgpRecord {
            time: t_ev,
            collector: CollectorId(0),
            peer: peer(),
            payload: RecordPayload::State(StateChange {
                old: PeerState::Established,
                new: PeerState::Idle,
            }),
        });
        // The session drop is followed by withdraw-looking noise that must
        // be ignored because the feed is down.
        for i in 0..6u8 {
            records.push(BgpRecord {
                time: t_ev + 5,
                collector: CollectorId(0),
                peer: peer(),
                payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(
                    20, i, 0, 0, 16,
                )])),
            });
        }
        records.push(announce(t_ev + 10_000, 10, 20, 0));
        let kepler = Kepler::new(inputs());
        let reports = kepler.run(records);
        assert!(reports.is_empty(), "{reports:?}");
    }

    /// Twin world: the near-end tag is facility 0; the affected far-ends
    /// 20..=25 are listed (per the colocation map) in *both* facility 1
    /// and facility 2 — passive localization ties and needs probes.
    fn twin_inputs() -> KeplerInputs {
        let mut colo = ColocationMap::new();
        for (id, city) in [(0u32, 0u32), (1, 1), (2, 1)] {
            colo.add_facility(Facility {
                id: FacilityId(id),
                name: format!("F{id}"),
                address: String::new(),
                postcode: format!("P{id}"),
                country: "GB".into(),
                city: CityId(city),
                continent: Continent::Europe,
                point: GeoPoint::new(51.5, 0.0),
                operator: "Op".into(),
            });
        }
        for a in [10u32, 11, 12] {
            colo.add_fac_member(FacilityId(0), Asn(a));
        }
        for a in 20..=25u32 {
            colo.add_fac_member(FacilityId(1), Asn(a));
            colo.add_fac_member(FacilityId(2), Asn(a));
        }
        let mut dictionary = CommunityDictionary::new();
        for near in [10u16, 11, 12] {
            dictionary.insert(Community::new(near, 500), LocationTag::Facility(FacilityId(0)));
        }
        KeplerInputs {
            config: KeplerConfig { min_stable_paths: 1, ..KeplerConfig::default() },
            dictionary,
            colo,
            orgs: OrgMap::new(),
        }
    }

    /// A prober answering from a script instead of measurements.
    struct ScriptedProber {
        /// Facility to confirm; every other candidate is refuted.
        confirm: Option<u32>,
        /// Answer Inconclusive for everything instead.
        inconclusive: bool,
    }

    impl kepler_probe::Prober for ScriptedProber {
        fn validate(
            &mut self,
            request: &kepler_probe::ProbeRequest,
            _now: Timestamp,
        ) -> kepler_probe::ProbeReport {
            use kepler_probe::{FacilityVerdict, HopEvidence, PostState, ProbeReport};
            let mut report = ProbeReport::default();
            for &c in &request.candidates {
                let verdict = if self.inconclusive {
                    FacilityVerdict::Inconclusive
                } else if Some(c.0) == self.confirm {
                    FacilityVerdict::Confirmed
                } else {
                    FacilityVerdict::Refuted
                };
                if verdict == FacilityVerdict::Confirmed {
                    report.evidence.push(HopEvidence {
                        vantage: Asn(900),
                        target: *request.affected_far.first().unwrap_or(&Asn(0)),
                        facility: c,
                        pre_hop: 2,
                        post: PostState::Detoured,
                    });
                }
                report.verdicts.push((c, verdict));
                report.probes_sent += 4;
            }
            report
        }
    }

    fn twin_records() -> Vec<BgpRecord> {
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        records.push(announce(t_fail + 13 * 3600, 10, 20, 0));
        records
    }

    #[test]
    fn twin_without_prober_falls_back_to_best_passive_guess() {
        let reports = Kepler::new(twin_inputs()).run(twin_records());
        assert_eq!(reports.len(), 1, "{reports:?}");
        // The tie collapses to the first candidate — an arbitrary pick.
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(1)));
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Unvalidated);
    }

    #[test]
    fn prober_disambiguates_the_twin_and_marks_the_report() {
        let kepler = Kepler::new(twin_inputs())
            .with_prober(Box::new(ScriptedProber { confirm: Some(2), inconclusive: false }));
        let reports = kepler.run(twin_records());
        assert_eq!(reports.len(), 1, "{reports:?}");
        // The probe verdict overrides the passive tie-break.
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(2)));
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Confirmed);
        assert!(!reports[0].probe_evidence.is_empty(), "verdicts carry hop evidence");
    }

    #[test]
    fn refuted_suspicion_suppresses_the_report() {
        let mut kepler = Kepler::new(twin_inputs())
            .with_prober(Box::new(ScriptedProber { confirm: None, inconclusive: false }));
        let counts_before = kepler.class_counts();
        assert_eq!(counts_before.probe_refuted, 0);
        for r in twin_records() {
            kepler.process_record(&r);
        }
        let reports = kepler.finish();
        assert!(reports.is_empty(), "all candidates refuted: {reports:?}");
    }

    #[test]
    fn inconclusive_probing_falls_back_and_is_marked() {
        let kepler = Kepler::new(twin_inputs())
            .with_prober(Box::new(ScriptedProber { confirm: None, inconclusive: true }));
        let reports = kepler.run(twin_records());
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(1)));
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Inconclusive);
    }

    #[test]
    fn prober_never_touches_confident_localizations() {
        // The original unambiguous fixture: localization is confident, so
        // the prober must not be consulted and outcomes are bit-identical.
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        let t_restore = t_fail + 1800;
        records.extend(restore_records(t_restore));
        records.push(announce(t_restore + 13 * 3600, 10, 20, 0));
        let plain = Kepler::new(inputs()).run(records.clone());
        /// A prober that fails the test if it is ever consulted.
        struct Tripwire;
        impl kepler_probe::Prober for Tripwire {
            fn validate(
                &mut self,
                request: &kepler_probe::ProbeRequest,
                _now: Timestamp,
            ) -> kepler_probe::ProbeReport {
                panic!("confident localization must not be probed: {request:?}");
            }
        }
        let probed = Kepler::new(inputs()).with_prober(Box::new(Tripwire)).run(records);
        assert_eq!(plain, probed, "attaching a prober must not change untouched events");
    }

    /// A prober with a call budget: validates like [`ScriptedProber`]
    /// (confirming facility 2) but panics past `max_calls`.
    struct BudgetedProber {
        calls: std::sync::Arc<std::sync::atomic::AtomicUsize>,
        max_calls: usize,
    }

    impl kepler_probe::Prober for BudgetedProber {
        fn validate(
            &mut self,
            request: &kepler_probe::ProbeRequest,
            now: Timestamp,
        ) -> kepler_probe::ProbeReport {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            assert!(
                n < self.max_calls,
                "accumulated evidence must be reused instead of re-probing: {request:?}"
            );
            let mut inner = ScriptedProber { confirm: Some(2), inconclusive: false };
            inner.validate(request, now)
        }
    }

    #[test]
    fn accumulated_evidence_is_reused_instead_of_reprobing() {
        // Twin world with three extra far-ends (26..28) so a *second* bin
        // of deviations can raise a fresh pending group while the first
        // incident is still open.
        let mut inputs = twin_inputs();
        for a in 26..=28u32 {
            inputs.colo.add_fac_member(FacilityId(1), Asn(a));
            inputs.colo.add_fac_member(FacilityId(2), Asn(a));
        }
        let mut records: Vec<BgpRecord> =
            (0..9u8).map(|i| announce(T0, 10 + (i % 3) as u32, 20 + i as u32, i)).collect();
        let t_fail = T0 + 2 * DAY + 3600;
        // Bin A: prefixes 0..6 detour; bin B (two bins later): 6..9.
        records.extend((0..6u8).map(|i| announce_detour(t_fail + i as u64, 20 + i as u32, i)));
        records.extend((6..9u8).map(|i| announce_detour(t_fail + 120, 20 + i as u32, i)));
        records.push(announce(t_fail + 13 * 3600, 10, 20, 0));
        let calls = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut kepler = Kepler::new(inputs)
            .with_prober(Box::new(BudgetedProber { calls: calls.clone(), max_calls: 1 }));
        for r in records {
            kepler.process_record_owned(r);
        }
        let counts = kepler.class_counts();
        let reports = kepler.finish();
        assert_eq!(calls.load(std::sync::atomic::Ordering::SeqCst), 1, "one campaign total");
        assert!(counts.evidence_reused >= 1, "{counts:?}");
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(2)));
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Confirmed);
        // The second bin's far-ends merged into the same incident.
        assert!(reports[0].affected_far.contains(&Asn(26)), "{reports:?}");
    }

    /// A prober that browns out for its first `degraded_remaining`
    /// campaigns (degraded reports, health `Offline`) and then answers
    /// cleanly, confirming facility 2.
    struct BrownoutProber {
        degraded_remaining: std::cell::Cell<usize>,
    }

    impl kepler_probe::Prober for BrownoutProber {
        fn validate(
            &mut self,
            request: &kepler_probe::ProbeRequest,
            now: Timestamp,
        ) -> kepler_probe::ProbeReport {
            let left = self.degraded_remaining.get();
            if left > 0 {
                self.degraded_remaining.set(left - 1);
                return kepler_probe::ProbeReport {
                    completeness: 0.0,
                    degraded: true,
                    ..Default::default()
                };
            }
            ScriptedProber { confirm: Some(2), inconclusive: false }.validate(request, now)
        }

        fn health(&self) -> kepler_probe::BackendHealth {
            if self.degraded_remaining.get() > 0 {
                kepler_probe::BackendHealth::Offline
            } else {
                kepler_probe::BackendHealth::Online
            }
        }
    }

    #[test]
    fn degraded_backend_falls_back_to_passive_verdicts() {
        // The backend never recovers: the twin tie settles on the passive
        // fallback, unvalidated, instead of blocking on probes.
        let kepler = Kepler::new(twin_inputs()).with_prober(Box::new(BrownoutProber {
            degraded_remaining: std::cell::Cell::new(usize::MAX),
        }));
        let mut kepler = kepler;
        for r in twin_records() {
            kepler.process_record_owned(r);
        }
        let counts = kepler.class_counts();
        let reports = kepler.finish();
        assert!(counts.degraded_passive >= 1, "{counts:?}");
        assert_eq!(counts.probe_confirmed, 0);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].scope, OutageScope::Facility(FacilityId(1)), "passive tie-break");
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Unvalidated);
        assert_eq!(reports[0].probe_completeness, 0.0, "degraded campaign recorded as such");
    }

    #[test]
    fn deferred_pending_is_revalidated_after_recovery() {
        // One brownout campaign, then the backend heals: the parked
        // pending re-validates on a later bin close and upgrades the
        // passive incident to probe-confirmed.
        let kepler = Kepler::new(twin_inputs())
            .with_prober(Box::new(BrownoutProber { degraded_remaining: std::cell::Cell::new(1) }));
        let mut kepler = kepler;
        let mut records = twin_records();
        // Keepalives on a never-deviating prefix drive later bin closes
        // so the deferred drain gets a chance to run.
        let t_fail = T0 + 2 * DAY + 3600;
        for k in 1..10u64 {
            records.push(announce(t_fail + k * 300, 10, 20, 0));
        }
        for r in records {
            kepler.process_record_owned(r);
        }
        let counts = kepler.class_counts();
        let reports = kepler.finish();
        assert_eq!(counts.degraded_passive, 1, "{counts:?}");
        assert_eq!(counts.deferred_revalidated, 1, "{counts:?}");
        assert_eq!(reports.len(), 1, "{reports:?}");
        // The passive guess (facility 1) and the late confirmation
        // (facility 2) reconcile to their shared city per the tracker's
        // merge rules; the verdict upgrade sticks.
        assert_eq!(reports[0].validation, crate::events::ValidationStatus::Confirmed);
        assert!(!reports[0].probe_evidence.is_empty(), "late evidence attached");
    }

    /// Restoration prober scripted on wall clock: still down before
    /// `up_from`, restored at/after it.
    struct ClockedRestoration {
        up_from: Timestamp,
    }

    impl kepler_probe::RestorationProber for ClockedRestoration {
        fn check(
            &mut self,
            _epicenter: kepler_probe::Epicenter,
            _targets: &[Asn],
            _incident_start: Timestamp,
            now: Timestamp,
        ) -> kepler_probe::RestorationReport {
            use kepler_probe::{RestorationReport, RestorationVerdict};
            let verdict = if now >= self.up_from {
                RestorationVerdict::Restored
            } else {
                RestorationVerdict::StillDown
            };
            RestorationReport {
                verdict,
                watched: 4,
                crossing: if verdict == RestorationVerdict::Restored { 4 } else { 0 },
                probes_sent: 8,
                rate_limited: 0,
            }
        }
    }

    #[test]
    fn restoration_probes_close_what_bgp_never_restores() {
        // BGP-wise the outage never ends (no restore records): without a
        // restoration prober the incident runs off the end of the feed.
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        // Keepalives on an unrelated, never-deviating prefix drive bin
        // closes (and thus the re-probe schedule) through the repair.
        for k in 1..200u64 {
            records.push(announce(t_fail + k * 300, 10, 20, 0));
        }
        let plain = Kepler::new(inputs()).run(records.clone());
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].end, None, "control plane alone never restores: {plain:?}");
        assert_eq!(plain[0].state, crate::events::IncidentState::Open);
        // The data plane recovers 2h in: two consecutive Restored checks
        // close the incident near the repair, despite BGP silence.
        let repair = t_fail + 7200;
        let kepler = Kepler::new(inputs())
            .with_restoration_prober(Box::new(ClockedRestoration { up_from: repair }));
        let mut kepler = kepler;
        for r in records {
            kepler.process_record_owned(r);
        }
        let counts = kepler.class_counts();
        let reports = kepler.finish();
        assert_eq!(counts.probe_closed, 1, "{counts:?}");
        assert_eq!(reports.len(), 1, "{reports:?}");
        let end = reports[0].end.expect("probe-closed");
        assert!(
            end >= repair && end <= repair + 3600 + 600,
            "closed near the repair (repair {repair}, end {end})"
        );
        assert_eq!(reports[0].state, crate::events::IncidentState::Closed);
    }

    #[test]
    fn restoration_probes_never_close_a_still_down_facility() {
        let mut records = base_records();
        let t_fail = T0 + 2 * DAY + 3600;
        records.extend(outage_records(t_fail));
        for k in 1..200u64 {
            records.push(announce(t_fail + k * 300, 10, 20, 0));
        }
        // The facility never recovers: every check says StillDown.
        let kepler = Kepler::new(inputs())
            .with_restoration_prober(Box::new(ClockedRestoration { up_from: u64::MAX }));
        let reports = kepler.run(records);
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert_eq!(reports[0].end, None, "a still-down facility must stay open: {reports:?}");
        assert_eq!(reports[0].state, crate::events::IncidentState::Open);
    }

    #[test]
    fn input_stats_track_coverage() {
        let records = base_records();
        let mut kepler = Kepler::new(inputs());
        for r in &records {
            kepler.process_record(r);
        }
        assert_eq!(kepler.input_stats().located, 6);
        assert!((kepler.input_stats().located_fraction() - 1.0).abs() < 1e-9);
    }
}

//! Multi-signal detection: the [`SignalSource`] trait and the two
//! auxiliary detectors fused into the tracker beside the paper's
//! deviation test.
//!
//! The monitor's per-(PoP, near-AS) deviation test is one signal; the
//! related work names outages it structurally misses:
//!
//! * **Slow drains / seasonal drops** — members leave one at a time over
//!   hours, so no single 60 s bin ever crosses `T_fail` for 3+ disjoint
//!   ASes. Chocolatine (arXiv:1906.04426) catches these with seasonal
//!   forecasts over aggregate counts; [`ForecastDetector`] is the
//!   deterministic hand-rolled equivalent — seasonal-naive prediction
//!   over per-PoP *present stable crossing* counts with an EWMA
//!   residual band.
//! * **Delay/forwarding anomalies** — a congested or brown-out facility
//!   keeps announcing routes (no BGP signal at all) while RTTs through
//!   it surge. Fontugne et al. (arXiv:1605.04784) localize these with
//!   differential RTT on shared traceroute segments; [`DelayDetector`]
//!   reads the probe subsystem's passive
//!   [`RttLedger`](kepler_probe::telemetry::RttLedger) telemetry.
//!
//! Each source emits [`SourceSignal`]s per closed bin; the system fuses
//! them with the deviation pipeline under conservative opening rules
//! (see `system::Kepler`), and every incident records per-source
//! [`SourceContribution`]s for attribution and ablation.

use crate::config::KeplerConfig;
use crate::events::OutageScope;
use crate::fx::FxHashMap;
use kepler_bgp::Asn;
use kepler_bgpstream::Timestamp;
use kepler_docmine::LocationTag;
use kepler_probe::telemetry::{DelaySite, SharedRttLedger};
use kepler_probe::TraceBackend;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which detector produced a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SignalKind {
    /// The paper's per-(PoP, near-AS) deviation test.
    Deviation,
    /// Seasonal-forecast deficit over per-PoP presence counts.
    Forecast,
    /// Differential-RTT anomaly over shared probe hop pairs.
    Delay,
}

impl SignalKind {
    /// Every kind, in fusion precedence order.
    pub const ALL: [SignalKind; 3] =
        [SignalKind::Deviation, SignalKind::Forecast, SignalKind::Delay];

    /// Stable wire tag (serve codec).
    pub fn tag(self) -> u8 {
        match self {
            SignalKind::Deviation => 0,
            SignalKind::Forecast => 1,
            SignalKind::Delay => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(SignalKind::Deviation),
            1 => Some(SignalKind::Forecast),
            2 => Some(SignalKind::Delay),
            _ => None,
        }
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignalKind::Deviation => "deviation",
            SignalKind::Forecast => "forecast",
            SignalKind::Delay => "delay",
        };
        f.write_str(s)
    }
}

/// One auxiliary detection for one bin.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSignal {
    /// Where the source localizes the anomaly.
    pub scope: OutageScope,
    /// Source confidence in (0, 1].
    pub confidence: f64,
    /// Independent anomalous measurements behind the signal (distinct
    /// hop-pair keys for delay, consecutive deficit bins for forecast).
    pub weight: usize,
}

/// Per-source contribution recorded on an incident: peak confidence and
/// the first bin the source fired in.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SourceContribution {
    /// The contributing detector.
    pub kind: SignalKind,
    /// Highest confidence it reported across the incident's bins.
    pub confidence: f64,
    /// Start of the first bin it fired in.
    pub first_bin: Timestamp,
}

/// What every signal source sees at bin close.
#[derive(Debug, Clone, PartialEq)]
pub struct BinView<'a> {
    /// Start of the closing bin.
    pub bin_start: Timestamp,
    /// Bin width.
    pub bin_secs: u64,
    /// Per-watched-PoP count of stable baseline crossings currently
    /// present (announced) at bin close.
    pub presence: &'a [(LocationTag, u64)],
}

/// A fused detector: polled once per closed bin, in stream order.
pub trait SignalSource {
    /// Which kind of signal this source emits.
    fn kind(&self) -> SignalKind;

    /// Signals raised for the bin described by `view`.
    fn poll(&mut self, view: &BinView<'_>) -> Vec<SourceSignal>;
}

/// Per-PoP seasonal-naive forecaster state.
#[derive(Debug, Clone)]
struct SeasonState {
    /// Ring of the last season's observed presence counts.
    ring: Vec<f64>,
    /// Next write index == the slot holding the value one season ago.
    idx: usize,
    /// Whether a full season has been observed.
    warmed: bool,
    /// EWMA of |observed - predicted| (frozen while alarming).
    band: f64,
    /// Consecutive bins with a confirmed deficit.
    streak: usize,
}

/// Seasonal-forecast detector over per-PoP presence counts
/// (Chocolatine-style, deterministic and dependency-free).
///
/// Prediction is seasonal-naive: this bin's expected presence is the
/// observed presence exactly one season earlier. The residual band is an
/// EWMA of absolute residuals, updated only while *not* alarming so a
/// long drain cannot widen its own acceptance band. A deficit must
/// exceed `max(abs_floor, band_k × band, rel_floor × prediction)` for
/// `confirm_bins` consecutive bins before the detector fires, filtering
/// the 1–2-bin edge mismatches BGP reconvergence jitter produces.
pub struct ForecastDetector {
    season_bins: usize,
    alpha: f64,
    band_k: f64,
    abs_floor: f64,
    rel_floor: f64,
    confirm_bins: usize,
    states: FxHashMap<LocationTag, SeasonState>,
    /// Lifetime alarms raised (observability).
    alarms: usize,
}

impl ForecastDetector {
    /// A detector configured from the fusion knobs in `config`.
    pub fn new(config: &KeplerConfig) -> Self {
        let season_bins = (config.forecast_season_secs / config.bin_secs).max(1) as usize;
        ForecastDetector {
            season_bins,
            alpha: config.forecast_band_alpha,
            band_k: config.forecast_band_k,
            abs_floor: config.forecast_abs_floor,
            rel_floor: config.forecast_rel_floor,
            confirm_bins: config.forecast_confirm_bins,
            states: FxHashMap::default(),
            alarms: 0,
        }
    }

    /// Bins per season.
    pub fn season_bins(&self) -> usize {
        self.season_bins
    }

    /// Lifetime alarm-bin count.
    pub fn alarms(&self) -> usize {
        self.alarms
    }
}

impl SignalSource for ForecastDetector {
    fn kind(&self) -> SignalKind {
        SignalKind::Forecast
    }

    fn poll(&mut self, view: &BinView<'_>) -> Vec<SourceSignal> {
        let mut out = Vec::new();
        for &(tag, observed) in view.presence {
            let observed = observed as f64;
            let state = self.states.entry(tag).or_insert_with(|| SeasonState {
                ring: vec![0.0; self.season_bins],
                idx: 0,
                warmed: false,
                band: 0.0,
                streak: 0,
            });
            let predicted = state.ring[state.idx];
            let deficit = predicted - observed;
            let threshold =
                self.abs_floor.max(self.band_k * state.band).max(self.rel_floor * predicted);
            let deficient = state.warmed && deficit > threshold;
            if deficient {
                state.streak += 1;
                if state.streak >= self.confirm_bins {
                    self.alarms += 1;
                    let confidence = (deficit / (deficit + threshold)).clamp(0.0, 1.0);
                    out.push(SourceSignal {
                        scope: OutageScope::from_tag(tag),
                        confidence,
                        weight: state.streak,
                    });
                }
                // Band frozen while in deficit: an outage must not teach
                // the forecaster that low is normal.
            } else {
                state.streak = 0;
                if state.warmed {
                    let residual = deficit.abs();
                    state.band = self.alpha * residual + (1.0 - self.alpha) * state.band;
                }
            }
            state.ring[state.idx] = observed;
            state.idx += 1;
            if state.idx == self.season_bins {
                state.idx = 0;
                state.warmed = true;
            }
        }
        out
    }
}

/// A fixed canary measurement: one (vantage, target) pair traced every
/// bin, feeding the ledger even when no validation campaign is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CanaryPair {
    /// Vantage AS.
    pub vantage: Asn,
    /// Destination AS.
    pub target: Asn,
}

/// Distinct anomalous measurement keys and summed excess RTT per site.
type SiteAnomalies = BTreeMap<DelaySite, (std::collections::BTreeSet<(u32, u64, u64)>, f64)>;

/// Differential-RTT delay detector over the probe subsystem's passive
/// telemetry ([`kepler_probe::telemetry`]).
///
/// Validation and restoration campaigns stream their measured pairs into
/// a shared [`RttLedger`](kepler_probe::telemetry::RttLedger); this
/// source drains the recorded anomalies each bin, groups them by the
/// infrastructure the slow segment enters, and fires when at least
/// `delay_min_anomalous_pairs` *distinct* (vantage, hop-pair) keys agree
/// — one noisy pair never blames a facility. An optional canary panel
/// keeps the telemetry flowing on worlds where no campaign happens to be
/// in progress.
pub struct DelayDetector<B = NoCanary> {
    ledger: SharedRttLedger,
    min_pairs: usize,
    threshold_ms: f64,
    canary: Option<(B, Vec<CanaryPair>, Timestamp)>,
    canary_baselined: bool,
    /// Lifetime signals raised (observability).
    alarms: usize,
}

/// Placeholder backend for canary-less delay detectors.
pub enum NoCanary {}

impl TraceBackend for NoCanary {
    fn trace(&self, _v: Asn, _t: Asn, _at: Timestamp) -> kepler_probe::Trace {
        match *self {}
    }
}

impl DelayDetector<NoCanary> {
    /// A detector reading an existing shared ledger (fed by a
    /// [`ProbeEngine::with_telemetry`](kepler_probe::ProbeEngine) tap).
    pub fn new(config: &KeplerConfig, ledger: SharedRttLedger) -> Self {
        DelayDetector {
            ledger,
            min_pairs: config.delay_min_anomalous_pairs,
            threshold_ms: config.delay_threshold_ms,
            canary: None,
            canary_baselined: false,
            alarms: 0,
        }
    }
}

impl<B: TraceBackend> DelayDetector<B> {
    /// A detector that additionally traces a fixed canary panel each bin
    /// through `backend`, baselining the panel once at `baseline_t` (a
    /// known-quiet instant, e.g. stream start).
    pub fn with_canary(
        config: &KeplerConfig,
        ledger: SharedRttLedger,
        backend: B,
        pairs: Vec<CanaryPair>,
        baseline_t: Timestamp,
    ) -> Self {
        DelayDetector {
            ledger,
            min_pairs: config.delay_min_anomalous_pairs,
            threshold_ms: config.delay_threshold_ms,
            canary: Some((backend, pairs, baseline_t)),
            canary_baselined: false,
            alarms: 0,
        }
    }

    /// Lifetime signal count.
    pub fn alarms(&self) -> usize {
        self.alarms
    }
}

impl<B: TraceBackend> SignalSource for DelayDetector<B> {
    fn kind(&self) -> SignalKind {
        SignalKind::Delay
    }

    fn poll(&mut self, view: &BinView<'_>) -> Vec<SourceSignal> {
        let bin_end = view.bin_start + view.bin_secs;
        if let Some((backend, pairs, baseline_t)) = &self.canary {
            let mut ledger = self.ledger.lock().expect("rtt ledger poisoned");
            if !self.canary_baselined {
                for p in pairs {
                    ledger.observe_baseline(
                        p.vantage,
                        &backend.trace(p.vantage, p.target, *baseline_t),
                    );
                }
                self.canary_baselined = true;
            }
            for p in pairs {
                ledger.observe_current(
                    p.vantage,
                    bin_end,
                    &backend.trace(p.vantage, p.target, bin_end),
                );
            }
        }
        let anomalies = self.ledger.lock().expect("rtt ledger poisoned").drain_anomalies();
        // Distinct anomalous measurement keys and total excess per site.
        let mut by_site: SiteAnomalies = BTreeMap::new();
        for a in anomalies {
            let entry = by_site.entry(a.site).or_default();
            entry.0.insert(a.key);
            entry.1 += a.excess_ms;
        }
        let mut out = Vec::new();
        for (site, (keys, total_excess)) in by_site {
            if keys.len() < self.min_pairs {
                continue;
            }
            self.alarms += 1;
            let mean_excess = total_excess / keys.len() as f64;
            let confidence = (mean_excess / (mean_excess + self.threshold_ms)).clamp(0.0, 1.0);
            let scope = match site {
                DelaySite::Facility(f) => OutageScope::Facility(f),
                DelaySite::Ixp(x) => OutageScope::Ixp(x),
            };
            out.push(SourceSignal { scope, confidence, weight: keys.len() });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_probe::telemetry::shared_ledger;
    use kepler_probe::{IfaceOwner, Trace, TraceHop};
    use kepler_topology::FacilityId;
    use std::net::{IpAddr, Ipv4Addr};

    fn cfg() -> KeplerConfig {
        KeplerConfig::default().with_forecast(600, 3, 3.0).with_delay(10.0, 2)
    }

    fn fac_tag(id: u32) -> LocationTag {
        LocationTag::Facility(FacilityId(id))
    }

    fn run_forecast(
        det: &mut ForecastDetector,
        series: &[u64],
        tag: LocationTag,
    ) -> Vec<(usize, SourceSignal)> {
        let mut fired = Vec::new();
        for (i, &count) in series.iter().enumerate() {
            let presence = [(tag, count)];
            let v = BinView { bin_start: i as u64 * 60, bin_secs: 60, presence: &presence };
            for s in det.poll(&v) {
                fired.push((i, s));
            }
        }
        fired
    }

    #[test]
    fn tags_round_trip() {
        for k in SignalKind::ALL {
            assert_eq!(SignalKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(SignalKind::from_tag(9), None);
        assert_eq!(SignalKind::Forecast.to_string(), "forecast");
    }

    #[test]
    fn forecast_stays_silent_on_flat_and_pure_seasonal_traffic() {
        // Season = 10 bins. Flat series: never fires.
        let mut det = ForecastDetector::new(&cfg());
        assert_eq!(det.season_bins(), 10);
        let flat = vec![40u64; 50];
        assert!(run_forecast(&mut det, &flat, fac_tag(1)).is_empty());
        // A clean diurnal pattern (low half / high half, repeating with
        // the season) is predicted perfectly by seasonal-naive: silent.
        let mut det = ForecastDetector::new(&cfg());
        let seasonal: Vec<u64> = (0..80).map(|i| if (i / 5) % 2 == 0 { 40 } else { 25 }).collect();
        assert!(run_forecast(&mut det, &seasonal, fac_tag(1)).is_empty());
        assert_eq!(det.alarms(), 0);
    }

    #[test]
    fn forecast_fires_on_slow_drain_after_confirm_streak() {
        let mut det = ForecastDetector::new(&cfg());
        // One warm season at 40, then a drain losing 8 crossings per bin.
        let mut series = vec![40u64; 10];
        for i in 0..12 {
            series.push(40u64.saturating_sub(8 * (i + 1)));
        }
        let fired = run_forecast(&mut det, &series, fac_tag(1));
        assert!(!fired.is_empty(), "drain must eventually fire");
        // First alarm needs the deficit past both floors (abs 4.0, rel
        // 0.25 × 40 = 10) and the 3-bin confirm streak; the deficit
        // first clears 10 at bin 11 (16 lost), so the streak completes
        // at bin 13.
        let first = fired[0].0;
        assert!(first >= 13, "confirm streak delays the alarm: {first}");
        assert_eq!(fired[0].1.scope, OutageScope::Facility(FacilityId(1)));
        assert!(fired[0].1.confidence > 0.0 && fired[0].1.confidence <= 1.0);
        // Once alarming it keeps firing every bin while the drain deepens.
        assert!(fired.len() >= 3, "{fired:?}");
    }

    #[test]
    fn forecast_band_absorbs_noise_but_not_sustained_deficit() {
        // Noisy-but-stationary series: residuals teach the band, so a
        // one-bin dip inside the noise envelope never alarms.
        let mut det = ForecastDetector::new(&cfg());
        let noisy: Vec<u64> = (0..60).map(|i| 40 + [0u64, 3, 1, 4, 2][(i as usize) % 5]).collect();
        assert!(run_forecast(&mut det, &noisy, fac_tag(1)).is_empty());
    }

    #[test]
    fn forecast_tracks_each_pop_independently() {
        let mut det = ForecastDetector::new(&cfg());
        for i in 0..30u64 {
            let a = if i >= 15 { 10 } else { 40 };
            let presence = [(fac_tag(1), a), (fac_tag(2), 40)];
            let v = BinView { bin_start: i * 60, bin_secs: 60, presence: &presence };
            for s in det.poll(&v) {
                assert_eq!(
                    s.scope,
                    OutageScope::Facility(FacilityId(1)),
                    "the healthy pop must never fire"
                );
            }
        }
        assert!(det.alarms() > 0, "the dropped pop fired");
    }

    fn fac_hop(oct: u8, fac: u32, rtt: f64) -> TraceHop {
        TraceHop {
            addr: IpAddr::V4(Ipv4Addr::new(11, 0, 0, oct)),
            owner: IfaceOwner::FacilityPort { asn: Asn(oct as u32), facility: FacilityId(fac) },
            rtt_ms: rtt,
        }
    }

    #[test]
    fn delay_detector_needs_distinct_pair_quorum() {
        let cfg = cfg();
        let ledger = shared_ledger(cfg.delay_threshold_ms);
        let mut det = DelayDetector::new(&cfg, ledger.clone());
        assert_eq!(det.kind(), SignalKind::Delay);
        let base = Trace { hops: vec![fac_hop(1, 7, 5.0)], reached: true };
        let slow = Trace { hops: vec![fac_hop(1, 7, 60.0)], reached: true };
        {
            let mut l = ledger.lock().unwrap();
            // Two vantages baseline the same facility segment.
            l.observe_baseline(Asn(900), &base);
            l.observe_baseline(Asn(901), &base);
            // Only one vantage sees the surge: below the 2-pair quorum.
            l.observe_current(Asn(900), 100, &slow);
        }
        let v = BinView { bin_start: 60, bin_secs: 60, presence: &[] };
        assert!(det.poll(&v).is_empty(), "one pair never blames a facility");
        {
            let mut l = ledger.lock().unwrap();
            l.observe_current(Asn(900), 160, &slow);
            l.observe_current(Asn(901), 160, &slow);
        }
        let signals = det.poll(&BinView { bin_start: 120, bin_secs: 60, presence: &[] });
        assert_eq!(signals.len(), 1, "{signals:?}");
        assert_eq!(signals[0].scope, OutageScope::Facility(FacilityId(7)));
        assert_eq!(signals[0].weight, 2);
        assert!(signals[0].confidence > 0.5);
        assert_eq!(det.alarms(), 1);
    }

    struct SurgingBackend {
        surge_from: Timestamp,
    }

    impl TraceBackend for SurgingBackend {
        fn trace(&self, _v: Asn, target: Asn, t: Timestamp) -> Trace {
            let extra = if t >= self.surge_from { 50.0 } else { 0.0 };
            Trace { hops: vec![fac_hop((target.0 % 200) as u8, 7, 5.0 + extra)], reached: true }
        }
    }

    #[test]
    fn canary_panel_feeds_the_ledger_without_campaigns() {
        let cfg = cfg();
        let ledger = shared_ledger(cfg.delay_threshold_ms);
        let pairs = vec![
            CanaryPair { vantage: Asn(900), target: Asn(20) },
            CanaryPair { vantage: Asn(901), target: Asn(21) },
            CanaryPair { vantage: Asn(902), target: Asn(22) },
        ];
        let mut det = DelayDetector::with_canary(
            &cfg,
            ledger.clone(),
            SurgingBackend { surge_from: 300 },
            pairs,
            0,
        );
        // Quiet bins: baselines recorded, nothing fires.
        assert!(det.poll(&BinView { bin_start: 60, bin_secs: 60, presence: &[] }).is_empty());
        assert!(det.poll(&BinView { bin_start: 120, bin_secs: 60, presence: &[] }).is_empty());
        assert_eq!(ledger.lock().unwrap().baseline_pairs(), 3);
        // Surge bin: all three canary pairs exceed the threshold.
        let signals = det.poll(&BinView { bin_start: 300, bin_secs: 60, presence: &[] });
        assert_eq!(signals.len(), 1, "{signals:?}");
        assert_eq!(signals[0].scope, OutageScope::Facility(FacilityId(7)));
        assert_eq!(signals[0].weight, 3);
    }
}

//! Input module (paper §4.1): sanitization plus community→PoP mapping.
//!
//! For every update, each location community is attributed to the AS-path
//! hop whose ASN matches the community's top 16 bits — that hop is the
//! *near-end* AS that received the route at the tagged location, and the
//! next hop toward the origin is the *far-end* neighbor. Route-server
//! communities (top 16 bits = the RS ASN, which never appears in the path)
//! are resolved by finding the adjacent member pair of that IXP on the
//! path, the method of Giotsas & Zhou \[51\].

use crate::events::RouteKey;
use crate::intern::{DenseCrossing, DenseRouteEvent, Interner, RouteId};
use kepler_bgp::mrt::UpdateView;
use kepler_bgp::sanitize::{SanitizeStats, Sanitizer, SanitizerConfig};
use kepler_bgp::{Asn, Community, PathAttributes};
use kepler_bgpstream::{BgpElem, BgpRecord, CollectorId, ElemKind, PeerId, RecordPayload};
use kepler_docmine::{CommunityDictionary, LocationTag};
use kepler_topology::ColocationMap;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One located crossing on a route: the near-end AS received the route
/// from the far-end AS at `pop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PopCrossing {
    /// The tagged location.
    pub pop: LocationTag,
    /// The AS that applied the tag (or imported from the route server).
    pub near: Asn,
    /// Its neighbor toward the origin.
    pub far: Asn,
}

/// An input-module event handed to the monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteEvent {
    /// The route is (re-)announced with these crossings (possibly empty if
    /// no location community was usable).
    Update {
        /// Route identity.
        key: RouteKey,
        /// Located crossings.
        crossings: Vec<PopCrossing>,
        /// Collapsed AS path hops (for link-level attribution).
        hops: Vec<Asn>,
    },
    /// The route was withdrawn.
    Withdraw {
        /// Route identity.
        key: RouteKey,
    },
}

/// Statistics over processed elements.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputStats {
    /// Elements seen.
    pub elems: u64,
    /// Announcements carrying at least one locatable community.
    pub located: u64,
    /// Announcements with no usable location information.
    pub unlocated: u64,
    /// Elements dropped by sanitization.
    pub rejected: u64,
}

impl InputStats {
    /// Fraction of announcements with location info — the paper's ≈50%
    /// IPv4 / ≈30% IPv6 coverage metric (Figure 7c).
    pub fn located_fraction(&self) -> f64 {
        let total = self.located + self.unlocated;
        if total == 0 {
            return 0.0;
        }
        self.located as f64 / total as f64
    }
}

/// One decoded element in dense-id space, borrowed from the decoder's
/// scratch buffers. Produced by [`InputModule::process_record_dense`].
#[derive(Debug, Clone, Copy)]
pub enum DenseElem<'a> {
    /// The route is (re-)announced with these interned crossings.
    Update {
        /// Interned route identity.
        route: RouteId,
        /// Interned located crossings (scratch-backed; copy out to keep).
        crossings: &'a [DenseCrossing],
    },
    /// The route was withdrawn.
    Withdraw {
        /// Interned route identity.
        route: RouteId,
    },
}

/// Recycled per-record scratch arena for the batch decoders. One arena
/// lives inside each [`InputModule`]; every record-level decode *resets*
/// the buffers (length to zero, capacity kept), so after warm-up the
/// per-record allocation count is zero.
///
/// Ownership rule: emitted [`DenseElem`]s borrow `dense` — callers must
/// finish with (or copy out of) one record's elements before the next
/// record-level call, which the `&mut self` receivers enforce.
#[derive(Debug, Default)]
struct RecordArena {
    hops: Vec<Asn>,
    cross: Vec<PopCrossing>,
    dense: Vec<DenseCrossing>,
}

/// The input module.
pub struct InputModule {
    dictionary: CommunityDictionary,
    colo: ColocationMap,
    sanitizer: Sanitizer,
    stats: InputStats,
    arena: RecordArena,
}

impl InputModule {
    /// Builds an input module around a dictionary and colocation map.
    pub fn new(dictionary: CommunityDictionary, colo: ColocationMap) -> Self {
        InputModule {
            dictionary,
            colo,
            sanitizer: Sanitizer::new(SanitizerConfig::default()),
            stats: InputStats::default(),
            arena: RecordArena::default(),
        }
    }

    /// The dictionary in use.
    pub fn dictionary(&self) -> &CommunityDictionary {
        &self.dictionary
    }

    /// Replaces the dictionary (bi-weekly refresh, §3.2).
    pub fn set_dictionary(&mut self, dictionary: CommunityDictionary) {
        self.dictionary = dictionary;
    }

    /// The colocation map in use.
    pub fn colo(&self) -> &ColocationMap {
        &self.colo
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &InputStats {
        &self.stats
    }

    /// Sanitizer counters.
    pub fn sanitize_stats(&self) -> &SanitizeStats {
        self.sanitizer.stats()
    }

    /// Processes one element into a monitor event (or `None` if rejected).
    pub fn process(&mut self, elem: &BgpElem) -> Option<RouteEvent> {
        self.stats.elems += 1;
        let key = RouteKey { collector: elem.collector, peer: elem.peer, prefix: elem.prefix };
        match &elem.kind {
            ElemKind::Withdraw => {
                if self.sanitizer.check_prefix(&elem.prefix).is_err() {
                    self.stats.rejected += 1;
                    return None;
                }
                Some(RouteEvent::Withdraw { key })
            }
            ElemKind::Announce(attrs) => {
                if self.sanitizer.check_route(&attrs.as_path, &elem.prefix).is_err() {
                    self.stats.rejected += 1;
                    return None;
                }
                let hops = attrs.as_path.hops();
                let crossings = self.map_crossings(attrs, &hops);
                if crossings.is_empty() {
                    self.stats.unlocated += 1;
                } else {
                    self.stats.located += 1;
                }
                Some(RouteEvent::Update { key, crossings, hops })
            }
        }
    }

    /// Processes one element straight into dense-id space — the input-time
    /// interning boundary: everything downstream of this call works on
    /// [`DenseRouteEvent`]s, and fat keys are only resolved back at report
    /// time.
    pub fn process_dense(
        &mut self,
        elem: &BgpElem,
        interner: &mut Interner,
    ) -> Option<DenseRouteEvent> {
        self.process(elem).map(|ev| interner.intern_event(&ev))
    }

    /// Decodes one whole record straight into dense-id space, without the
    /// per-prefix [`BgpElem`] explosion (no `Arc<PathAttributes>` clone,
    /// no per-element `Vec`s): the path is sanitized and its communities
    /// mapped **once per update**, then each announced prefix re-uses the
    /// scratch-backed crossing list. Statistics (both [`InputStats`] and
    /// [`SanitizeStats`]) are accounted per element, byte-identical to
    /// calling [`process_dense`](Self::process_dense) on every exploded
    /// element. State records yield nothing (they are the
    /// [`GapTracker`](kepler_bgpstream::GapTracker)'s business).
    ///
    /// This is the decode stage of the parallel ingest pipeline
    /// ([`crate::ingest`]); `emit` receives elements in the exact order
    /// [`BgpRecord::explode`] would have produced them.
    pub fn process_record_dense<F: for<'a> FnMut(DenseElem<'a>)>(
        &mut self,
        rec: &BgpRecord,
        interner: &mut Interner,
        mut emit: F,
    ) {
        let RecordPayload::Update(update) = &rec.payload else { return };
        let sess = interner.route_session(rec.collector, rec.peer);
        for p in &update.withdrawn {
            self.stats.elems += 1;
            let v = self.sanitizer.assess_prefix(p);
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            emit(DenseElem::Withdraw { route: interner.route_id_in(sess, *p) });
        }
        let Some(attrs) = &update.attrs else { return };
        if update.announced.is_empty() {
            return;
        }
        let mut hops = std::mem::take(&mut self.arena.hops);
        attrs.as_path.hops_into(&mut hops);
        let path_verdict = self.sanitizer.path_verdict(&attrs.as_path, &hops);
        let mut dense = std::mem::take(&mut self.arena.dense);
        dense.clear();
        let mut located = false;
        if path_verdict.is_ok() {
            let mut cross = std::mem::take(&mut self.arena.cross);
            self.map_crossings_into(attrs, &hops, &mut cross);
            located = !cross.is_empty();
            dense.extend(cross.iter().map(|c| interner.crossing(c)));
            self.arena.cross = cross;
        }
        for p in &update.announced {
            self.stats.elems += 1;
            let v = path_verdict.and_then(|()| self.sanitizer.assess_prefix(p));
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            if located {
                self.stats.located += 1;
            } else {
                self.stats.unlocated += 1;
            }
            emit(DenseElem::Update { route: interner.route_id_in(sess, *p), crossings: &dense });
        }
        self.arena.hops = hops;
        self.arena.dense = dense;
    }

    /// [`process_record_dense`](Self::process_record_dense) variant that
    /// emits owned [`DenseRouteEvent`]s, sharing one cached `Arc` per
    /// distinct crossing set (see [`Interner::intern_crossings`]) — the
    /// serial-pipeline twin of the parallel coordinator's crossing cache.
    /// Event order, minted ids and statistics are identical to
    /// `process_record_dense`.
    pub fn process_record_events<F: FnMut(DenseRouteEvent)>(
        &mut self,
        rec: &BgpRecord,
        interner: &mut Interner,
        mut emit: F,
    ) {
        let RecordPayload::Update(update) = &rec.payload else { return };
        let sess = interner.route_session(rec.collector, rec.peer);
        for p in &update.withdrawn {
            self.stats.elems += 1;
            let v = self.sanitizer.assess_prefix(p);
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            emit(DenseRouteEvent::Withdraw { route: interner.route_id_in(sess, *p) });
        }
        let Some(attrs) = &update.attrs else { return };
        if update.announced.is_empty() {
            return;
        }
        let mut hops = std::mem::take(&mut self.arena.hops);
        attrs.as_path.hops_into(&mut hops);
        let path_verdict = self.sanitizer.path_verdict(&attrs.as_path, &hops);
        let mut dense = std::mem::take(&mut self.arena.dense);
        dense.clear();
        let mut located = false;
        if path_verdict.is_ok() {
            let mut cross = std::mem::take(&mut self.arena.cross);
            self.map_crossings_into(attrs, &hops, &mut cross);
            located = !cross.is_empty();
            dense.extend(cross.iter().map(|c| interner.crossing(c)));
            self.arena.cross = cross;
        }
        let shared = interner.intern_crossings(&dense);
        for p in &update.announced {
            self.stats.elems += 1;
            let v = path_verdict.and_then(|()| self.sanitizer.assess_prefix(p));
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            if located {
                self.stats.located += 1;
            } else {
                self.stats.unlocated += 1;
            }
            emit(DenseRouteEvent::Update {
                route: interner.route_id_in(sess, *p),
                crossings: Arc::clone(&shared),
            });
        }
        self.arena.hops = hops;
        self.arena.dense = dense;
    }

    /// Decodes a zero-copy [`UpdateView`] straight into dense-id space —
    /// the wire-to-dense path with no materialization step at all: hops
    /// are collapsed into the arena directly from the AS_PATH bytes,
    /// communities stream out of the attribute region, and prefixes
    /// decode one at a time from the NLRI regions. Event order, minted
    /// ids and statistics are byte-identical to materializing the frame
    /// into a [`BgpRecord`] and calling
    /// [`process_record_dense`](Self::process_record_dense).
    pub fn process_update_view_dense<F: for<'a> FnMut(DenseElem<'a>)>(
        &mut self,
        collector: CollectorId,
        peer: PeerId,
        update: &UpdateView<'_>,
        interner: &mut Interner,
        mut emit: F,
    ) {
        let sess = interner.route_session(collector, peer);
        for p in update.withdrawn_v4().chain(update.mp_withdrawn()) {
            self.stats.elems += 1;
            let v = self.sanitizer.assess_prefix(&p);
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            emit(DenseElem::Withdraw { route: interner.route_id_in(sess, p) });
        }
        // Matches the materializing path's `attrs == None` normalization:
        // an update announcing nothing carries no meaningful attributes.
        if !update.has_announcements() {
            return;
        }
        let path = update.as_path();
        let mut hops = std::mem::take(&mut self.arena.hops);
        path.hops_into(&mut hops);
        let path_verdict = self
            .sanitizer
            .path_verdict_parts(path.is_empty(), &hops, || path.has_special_purpose_asn());
        let mut dense = std::mem::take(&mut self.arena.dense);
        dense.clear();
        let mut located = false;
        if path_verdict.is_ok() {
            let mut cross = std::mem::take(&mut self.arena.cross);
            let comms = update.communities();
            self.map_communities_into(comms.iter(), &hops, &mut cross);
            located = !cross.is_empty();
            dense.extend(cross.iter().map(|c| interner.crossing(c)));
            self.arena.cross = cross;
        }
        for p in update.announced_v4().chain(update.mp_announced()) {
            self.stats.elems += 1;
            let v = path_verdict.and_then(|()| self.sanitizer.assess_prefix(&p));
            self.sanitizer.tally(v);
            if v.is_err() {
                self.stats.rejected += 1;
                continue;
            }
            if located {
                self.stats.located += 1;
            } else {
                self.stats.unlocated += 1;
            }
            emit(DenseElem::Update { route: interner.route_id_in(sess, p), crossings: &dense });
        }
        self.arena.hops = hops;
        self.arena.dense = dense;
    }

    /// Maps the communities of an announcement onto path crossings.
    pub fn map_crossings(&self, attrs: &PathAttributes, hops: &[Asn]) -> Vec<PopCrossing> {
        let mut out: Vec<PopCrossing> = Vec::new();
        self.map_crossings_into(attrs, hops, &mut out);
        out
    }

    /// [`map_crossings`](Self::map_crossings) into a caller-provided
    /// buffer (cleared first).
    pub fn map_crossings_into(
        &self,
        attrs: &PathAttributes,
        hops: &[Asn],
        out: &mut Vec<PopCrossing>,
    ) {
        self.map_communities_into(attrs.communities.iter().copied(), hops, out);
    }

    /// [`map_crossings_into`](Self::map_crossings_into) over any community
    /// source — this is what lets the zero-copy path stream communities
    /// straight out of the attribute bytes.
    pub fn map_communities_into<I: IntoIterator<Item = Community>>(
        &self,
        communities: I,
        hops: &[Asn],
        out: &mut Vec<PopCrossing>,
    ) {
        out.clear();
        for c in communities {
            let c = &c;
            if let Some(tag) = self.dictionary.lookup(*c) {
                // Explicit location community: attribute to the matching hop.
                let asn = Asn(c.asn16() as u32);
                if let Some(i) = hops.iter().position(|h| *h == asn) {
                    if i + 1 < hops.len() {
                        let crossing = PopCrossing { pop: tag, near: hops[i], far: hops[i + 1] };
                        if !out.contains(&crossing) {
                            out.push(crossing);
                        }
                    }
                }
            } else if let Some(ixp) = self.dictionary.route_servers().find_map(|(rs, ixp)| {
                if rs == c.asn16() {
                    Some(ixp)
                } else {
                    None
                }
            }) {
                // Route-server community: find the adjacent member pair.
                let members = self.colo.members_of_ixp(ixp);
                for w in hops.windows(2) {
                    if members.contains(&w[0]) && members.contains(&w[1]) {
                        let crossing =
                            PopCrossing { pop: LocationTag::Ixp(ixp), near: w[0], far: w[1] };
                        if !out.contains(&crossing) {
                            out.push(crossing);
                        }
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::{AsPath, BgpUpdate, Community, Prefix};
    use kepler_bgpstream::{BgpRecord, CollectorId, PeerId, RecordPayload};
    use kepler_topology::entities::{CityId, Facility, Ixp};
    use kepler_topology::{Continent, FacilityId, GeoPoint, IxpId};

    fn colo() -> ColocationMap {
        let mut m = ColocationMap::new();
        m.add_facility(Facility {
            id: FacilityId(0),
            name: "Telehouse East".into(),
            address: "x".into(),
            postcode: "E142AA".into(),
            country: "GB".into(),
            city: CityId(0),
            continent: Continent::Europe,
            point: GeoPoint::new(51.5, 0.0),
            operator: "Telehouse".into(),
        });
        m.add_ixp(Ixp {
            id: IxpId(0),
            name: "LINX".into(),
            url: "linx.net".into(),
            city: CityId(0),
            continent: Continent::Europe,
            route_server_asn: Some(Asn(8714)),
        });
        m.add_ixp_member(IxpId(0), Asn(13030));
        m.add_ixp_member(IxpId(0), Asn(20940));
        m
    }

    fn dict() -> CommunityDictionary {
        let mut d = CommunityDictionary::new();
        d.insert(Community::new(13030, 51702), LocationTag::Facility(FacilityId(0)));
        d.add_route_server(8714, IxpId(0));
        d
    }

    fn elem(attrs: PathAttributes) -> BgpElem {
        let rec = BgpRecord {
            time: 100,
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::announce(
                vec![Prefix::v4(184, 84, 242, 0, 24)],
                attrs,
            )),
        };
        rec.explode().pop().unwrap()
    }

    #[test]
    fn explicit_community_maps_to_hop_pair() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030, 20940]),
            vec![Community::new(13030, 51702)],
        );
        let ev = input.process(&elem(attrs)).unwrap();
        match ev {
            RouteEvent::Update { crossings, hops, .. } => {
                assert_eq!(crossings.len(), 1);
                assert_eq!(crossings[0].pop, LocationTag::Facility(FacilityId(0)));
                assert_eq!(crossings[0].near, Asn(13030));
                assert_eq!(crossings[0].far, Asn(20940));
                assert_eq!(hops.len(), 3);
            }
            _ => panic!("expected update"),
        }
        assert_eq!(input.stats().located, 1);
    }

    #[test]
    fn community_without_matching_hop_is_ignored() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 20940]),
            vec![Community::new(13030, 51702)], // 13030 not on path
        );
        match input.process(&elem(attrs)).unwrap() {
            RouteEvent::Update { crossings, .. } => assert!(crossings.is_empty()),
            _ => panic!(),
        }
        assert_eq!(input.stats().unlocated, 1);
    }

    #[test]
    fn origin_tagger_has_no_far_end() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030]), // 13030 is the origin
            vec![Community::new(13030, 51702)],
        );
        match input.process(&elem(attrs)).unwrap() {
            RouteEvent::Update { crossings, .. } => assert!(crossings.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn route_server_community_maps_member_pair() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030, 20940, 174]),
            vec![Community::new(8714, 1)],
        );
        match input.process(&elem(attrs)).unwrap() {
            RouteEvent::Update { crossings, .. } => {
                assert_eq!(crossings.len(), 1);
                assert_eq!(crossings[0].pop, LocationTag::Ixp(IxpId(0)));
                assert_eq!(crossings[0].near, Asn(13030));
                assert_eq!(crossings[0].far, Asn(20940));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn sanitization_rejects_loops_and_bogons() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030, 3356, 20940]),
            vec![],
        );
        assert!(input.process(&elem(attrs)).is_none());
        assert_eq!(input.stats().rejected, 1);
    }

    #[test]
    fn withdraw_passes_through() {
        let mut input = InputModule::new(dict(), colo());
        let rec = BgpRecord {
            time: 5,
            collector: CollectorId(1),
            peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
            payload: RecordPayload::Update(BgpUpdate::withdraw(vec![Prefix::v4(
                184, 84, 242, 0, 24,
            )])),
        };
        let e = rec.explode().pop().unwrap();
        assert!(matches!(input.process(&e), Some(RouteEvent::Withdraw { .. })));
    }

    #[test]
    fn prepending_does_not_break_hop_matching() {
        let mut input = InputModule::new(dict(), colo());
        let attrs = PathAttributes::with_path_and_communities(
            AsPath::from_sequence([3356, 13030, 13030, 13030, 20940]),
            vec![Community::new(13030, 51702)],
        );
        match input.process(&elem(attrs)).unwrap() {
            RouteEvent::Update { crossings, .. } => {
                assert_eq!(crossings.len(), 1);
                assert_eq!(crossings[0].far, Asn(20940));
            }
            _ => panic!(),
        }
    }
}

//! Dense identity interning for the monitor hot path.
//!
//! The monitoring module (paper §4.2) digests BGP update streams from
//! ~100 collectors in small time bins over multi-year windows, so the cost
//! of one [`RouteEvent`] dominates end-to-end runtime. The seed
//! implementation keyed every map on fat composite structs (`RouteKey` =
//! collector + peer + prefix; nested maps over `LocationTag` and `Asn`),
//! hashing the same identities millions of times per bin. This module
//! assigns each identity a dense `u32` id **once, at input time**; the
//! monitor then works exclusively on flat `Vec`-indexed tables and
//! small-int hash maps.
//!
//! # Id lifetime rules
//!
//! * Ids are assigned first-come-first-served and are **stable for the
//!   lifetime of one run** (one [`Interner`]): the same `RouteKey` always
//!   maps to the same [`RouteId`], and `resolve`-style lookups never move.
//! * Ids are **never recycled**, not even for routes that have been
//!   withdrawn mid-bin: a recycled id could alias a dead route's deviation
//!   entry with a new route inside the same bin. Memory for dead ids is
//!   bounded by the identity universe (collector × peer × prefix), which
//!   the paper's workload bounds at tens of millions — 4-byte ids keep the
//!   tables compact.
//! * Dense ids are only meaningful relative to the interner that minted
//!   them. [`crate::shard::ShardedMonitor`] relies on this: one shared
//!   interner feeds every shard, so `(PopId, AsnId)` group keys agree
//!   across shards and per-shard deviation counts are additive.
//! * Display types (`RouteKey`, `LocationTag`, `Asn`) are resolved back
//!   **only at report time** (bin outcomes with signals, final reports) —
//!   never on the per-event path.

use crate::events::RouteKey;
use crate::fx::FxHashMap;
use crate::input::{PopCrossing, RouteEvent};
use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId};
use kepler_docmine::LocationTag;
use std::sync::Arc;

/// Dense id of one monitored route (a prefix seen by one collector peer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouteId(pub u32);

/// Dense id of one PoP tag (facility / IXP / city).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PopId(pub u32);

/// Dense id of one AS number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AsnId(pub u32);

/// A located crossing in dense-id space (see [`PopCrossing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DenseCrossing {
    /// The tagged location.
    pub pop: PopId,
    /// The AS that applied the tag.
    pub near: AsnId,
    /// Its neighbor toward the origin.
    pub far: AsnId,
}

impl DenseCrossing {
    /// The `(pop, near)` deviation-group key, packed for flat maps.
    #[inline]
    pub fn group(self) -> GroupKey {
        pack_group(self.pop, self.near)
    }
}

/// A `(PopId, AsnId)` pair packed into one word — the key of every
/// deviation-group map on the hot path.
pub type GroupKey = u64;

/// Packs a `(pop, near)` pair into a [`GroupKey`].
#[inline]
pub fn pack_group(pop: PopId, near: AsnId) -> GroupKey {
    ((pop.0 as u64) << 32) | near.0 as u64
}

/// Inverse of [`pack_group`].
#[inline]
pub fn unpack_group(key: GroupKey) -> (PopId, AsnId) {
    (PopId((key >> 32) as u32), AsnId(key as u32))
}

/// A [`RouteEvent`] with all identities interned. Crossing lists are
/// `Arc<[_]>` so the monitor's `current`/`baseline` tables share one
/// allocation per announcement instead of cloning `Vec`s.
#[derive(Debug, Clone, PartialEq)]
pub enum DenseRouteEvent {
    /// The route is (re-)announced with these crossings.
    Update {
        /// Interned route identity.
        route: RouteId,
        /// Interned located crossings.
        crossings: Arc<[DenseCrossing]>,
    },
    /// The route was withdrawn.
    Withdraw {
        /// Interned route identity.
        route: RouteId,
    },
}

impl DenseRouteEvent {
    /// The route the event concerns.
    pub fn route(&self) -> RouteId {
        match self {
            DenseRouteEvent::Update { route, .. } => *route,
            DenseRouteEvent::Withdraw { route } => *route,
        }
    }
}

/// Bidirectional mapping between display identities and dense ids.
///
/// Every identity crossing into the hot path — route keys, PoP tags,
/// ASNs — is interned once at input time; the monitor, sharder and
/// tracker then work exclusively on `u32` ids, and display types are
/// resolved back only at report time. Interning is idempotent and ids
/// are dense (0, 1, 2, …), so flat `Vec`s indexed by id replace hash
/// maps everywhere downstream.
///
/// ```
/// use kepler_bgp::{Asn, Prefix};
/// use kepler_bgpstream::{CollectorId, PeerId};
/// use kepler_core::events::RouteKey;
/// use kepler_core::intern::Interner;
/// use kepler_docmine::LocationTag;
/// use kepler_topology::FacilityId;
///
/// let mut interner = Interner::new();
/// let key = RouteKey {
///     collector: CollectorId(0),
///     peer: PeerId { asn: Asn(3356), addr: "10.0.0.1".parse().unwrap() },
///     prefix: Prefix::v4(192, 0, 2, 0, 24),
/// };
/// // Idempotent: the same identity always maps to the same dense id.
/// let id = interner.route_id(&key);
/// assert_eq!(interner.route_id(&key), id);
/// assert_eq!(id.0, 0, "ids are dense, starting at 0");
/// // And bidirectional: reports resolve ids back to display types.
/// assert_eq!(interner.route_key(id), key);
/// let pop = interner.pop_id(LocationTag::Facility(FacilityId(7)));
/// assert_eq!(interner.pop_tag(pop), LocationTag::Facility(FacilityId(7)));
/// ```
#[derive(Debug, Default)]
pub struct Interner {
    /// First level of the route table: `(collector, peer)` → session.
    /// BGP streams are session-bursty (one record carries many prefixes
    /// from one peer), so hashing the fat session half once per record
    /// and only the prefix per route amortizes most of the intern cost —
    /// see [`route_session`](Self::route_session).
    sessions: FxHashMap<(CollectorId, PeerId), RouteSession>,
    session_meta: Vec<(CollectorId, PeerId)>,
    /// Second level: per-session prefix → dense route id.
    session_prefixes: Vec<FxHashMap<Prefix, RouteId>>,
    route_keys: Vec<RouteKey>,
    pops: FxHashMap<LocationTag, PopId>,
    pop_tags: Vec<LocationTag>,
    asns: FxHashMap<Asn, AsnId>,
    asn_values: Vec<Asn>,
    /// Scratch buffer so `intern_event` performs exactly one allocation
    /// (the `Arc<[_]>` itself) per announcement.
    scratch: Vec<DenseCrossing>,
    /// Distinct crossing set → shared allocation, for
    /// [`intern_crossings`](Self::intern_crossings). Crossing sets are
    /// drawn from the (small) located-link universe, so the cache
    /// converts per-announcement `Arc` allocations into lookups.
    cross_cache: FxHashMap<Vec<DenseCrossing>, Arc<[DenseCrossing]>>,
}

/// Handle to one `(collector, peer)` slot of the two-level route table,
/// from [`Interner::route_session`]. Only meaningful for the interner
/// that minted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteSession(u32);

impl Interner {
    /// An empty interner, pre-sized for a live-stream route universe so
    /// the hot maps do not rehash during warm-up (a few MB up front
    /// against millions of per-event inserts).
    pub fn new() -> Self {
        let mut interner = Interner::default();
        interner.route_keys.reserve(1 << 15);
        interner.asns.reserve(1 << 10);
        interner.asn_values.reserve(1 << 10);
        interner
    }

    /// The dense id of `key`, minting one on first sight. Equivalent to
    /// [`route_session`](Self::route_session) +
    /// [`route_id_in`](Self::route_id_in); id assignment order — and
    /// therefore every minted id — is identical whichever entry point a
    /// caller mixes, because minting is always first-come in call order.
    #[inline]
    pub fn route_id(&mut self, key: &RouteKey) -> RouteId {
        let sess = self.route_session(key.collector, key.peer);
        self.route_id_in(sess, key.prefix)
    }

    /// First half of the batched intern API: resolves the session slot
    /// for `(collector, peer)`, minting one on first sight. Callers
    /// processing a multi-prefix record hash the session exactly once
    /// here, then pay only a prefix hash per route in
    /// [`route_id_in`](Self::route_id_in).
    #[inline]
    pub fn route_session(&mut self, collector: CollectorId, peer: PeerId) -> RouteSession {
        match self.sessions.entry((collector, peer)) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let s = RouteSession(
                    u32::try_from(self.session_meta.len()).expect("session id space exhausted"),
                );
                v.insert(s);
                self.session_meta.push((collector, peer));
                self.session_prefixes.push(FxHashMap::default());
                s
            }
        }
    }

    /// Second half of the batched intern API: the dense id of `prefix`
    /// within `sess`, minting one on first sight.
    #[inline]
    pub fn route_id_in(&mut self, sess: RouteSession, prefix: Prefix) -> RouteId {
        match self.session_prefixes[sess.0 as usize].entry(prefix) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let id = RouteId(
                    u32::try_from(self.route_keys.len()).expect("route id space exhausted"),
                );
                v.insert(id);
                let (collector, peer) = self.session_meta[sess.0 as usize];
                self.route_keys.push(RouteKey { collector, peer, prefix });
                id
            }
        }
    }

    /// A shared allocation for `dense`, reusing one `Arc` per distinct
    /// crossing set. [`DenseRouteEvent`] compares by contents, so
    /// consumers cannot observe the sharing — only the allocator can.
    pub fn intern_crossings(&mut self, dense: &[DenseCrossing]) -> Arc<[DenseCrossing]> {
        if let Some(a) = self.cross_cache.get(dense) {
            return Arc::clone(a);
        }
        let arc: Arc<[DenseCrossing]> = Arc::from(dense);
        self.cross_cache.insert(dense.to_vec(), Arc::clone(&arc));
        arc
    }

    /// The display key of a minted route id.
    #[inline]
    pub fn route_key(&self, id: RouteId) -> RouteKey {
        self.route_keys[id.0 as usize]
    }

    /// The dense id of `tag`, minting one on first sight.
    #[inline]
    pub fn pop_id(&mut self, tag: LocationTag) -> PopId {
        match self.pops.entry(tag) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let id = PopId(u32::try_from(self.pop_tags.len()).expect("pop id space exhausted"));
                v.insert(id);
                self.pop_tags.push(tag);
                id
            }
        }
    }

    /// The dense id of `tag` if it has been seen, without minting.
    #[inline]
    pub fn lookup_pop(&self, tag: LocationTag) -> Option<PopId> {
        self.pops.get(&tag).copied()
    }

    /// The display tag of a minted pop id.
    #[inline]
    pub fn pop_tag(&self, id: PopId) -> LocationTag {
        self.pop_tags[id.0 as usize]
    }

    /// The dense id of `asn`, minting one on first sight.
    #[inline]
    pub fn asn_id(&mut self, asn: Asn) -> AsnId {
        match self.asns.entry(asn) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(v) => {
                let id =
                    AsnId(u32::try_from(self.asn_values.len()).expect("asn id space exhausted"));
                v.insert(id);
                self.asn_values.push(asn);
                id
            }
        }
    }

    /// The display ASN of a minted asn id.
    #[inline]
    pub fn asn(&self, id: AsnId) -> Asn {
        self.asn_values[id.0 as usize]
    }

    /// Interns one display crossing.
    #[inline]
    pub fn crossing(&mut self, c: &PopCrossing) -> DenseCrossing {
        DenseCrossing {
            pop: self.pop_id(c.pop),
            near: self.asn_id(c.near),
            far: self.asn_id(c.far),
        }
    }

    /// Resolves a dense crossing back to display space.
    #[inline]
    pub fn resolve_crossing(&self, c: DenseCrossing) -> PopCrossing {
        PopCrossing { pop: self.pop_tag(c.pop), near: self.asn(c.near), far: self.asn(c.far) }
    }

    /// Interns a whole input-module event (the input-time boundary where
    /// fat keys leave the pipeline).
    pub fn intern_event(&mut self, event: &RouteEvent) -> DenseRouteEvent {
        match event {
            RouteEvent::Withdraw { key } => DenseRouteEvent::Withdraw { route: self.route_id(key) },
            RouteEvent::Update { key, crossings, .. } => {
                let route = self.route_id(key);
                let mut scratch = std::mem::take(&mut self.scratch);
                scratch.clear();
                scratch.extend(crossings.iter().map(|c| self.crossing(c)));
                let dense = Arc::from(scratch.as_slice());
                self.scratch = scratch;
                DenseRouteEvent::Update { route, crossings: dense }
            }
        }
    }

    /// Display keys of the routes minted at id `n` and later, in id order
    /// — the delta a parallel-ingest worker ships to the remap layer after
    /// a batch (see [`crate::ingest`]).
    pub fn route_keys_since(&self, n: usize) -> &[RouteKey] {
        &self.route_keys[n..]
    }

    /// Display tags of the PoPs minted at id `n` and later, in id order.
    pub fn pop_tags_since(&self, n: usize) -> &[LocationTag] {
        &self.pop_tags[n..]
    }

    /// Display ASNs minted at id `n` and later, in id order.
    pub fn asns_since(&self, n: usize) -> &[Asn] {
        &self.asn_values[n..]
    }

    /// Number of distinct routes seen.
    pub fn routes_len(&self) -> usize {
        self.route_keys.len()
    }

    /// Number of distinct PoP tags seen.
    pub fn pops_len(&self) -> usize {
        self.pop_tags.len()
    }

    /// Number of distinct ASNs seen.
    pub fn asns_len(&self) -> usize {
        self.asn_values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Prefix;
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_topology::{CityId, FacilityId, IxpId};

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(i as u16),
            peer: PeerId { asn: Asn(100 + i as u32), addr: "10.0.0.9".parse().unwrap() },
            prefix: Prefix::v4(10, i, 0, 0, 24),
        }
    }

    #[test]
    fn route_keys_round_trip_exactly() {
        let mut interner = Interner::new();
        let ids: Vec<RouteId> = (0..32).map(|i| interner.route_id(&key(i))).collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(interner.route_key(*id), key(i as u8));
        }
        // Stable across re-interning.
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(interner.route_id(&key(i as u8)), *id);
        }
        assert_eq!(interner.routes_len(), 32);
    }

    #[test]
    fn location_tags_round_trip_exactly() {
        let mut interner = Interner::new();
        let tags = [
            LocationTag::Facility(FacilityId(7)),
            LocationTag::Ixp(IxpId(7)),
            LocationTag::City(CityId(7)),
            LocationTag::Facility(FacilityId(0)),
        ];
        let ids: Vec<PopId> = tags.iter().map(|t| interner.pop_id(*t)).collect();
        for (tag, id) in tags.iter().zip(&ids) {
            assert_eq!(interner.pop_tag(*id), *tag);
            assert_eq!(interner.lookup_pop(*tag), Some(*id));
        }
        // Same numeric id under different constructors stays distinct.
        assert_eq!(ids.iter().collect::<std::collections::HashSet<_>>().len(), 4);
        assert_eq!(interner.lookup_pop(LocationTag::City(CityId(99))), None);
    }

    #[test]
    fn group_key_packing_round_trips() {
        for (p, a) in [(0u32, 0u32), (1, 2), (u32::MAX, 7), (3, u32::MAX)] {
            let k = pack_group(PopId(p), AsnId(a));
            assert_eq!(unpack_group(k), (PopId(p), AsnId(a)));
        }
    }

    #[test]
    fn intern_event_preserves_structure() {
        let mut interner = Interner::new();
        let ev = RouteEvent::Update {
            key: key(1),
            crossings: vec![
                PopCrossing {
                    pop: LocationTag::Facility(FacilityId(1)),
                    near: Asn(5),
                    far: Asn(6),
                },
                PopCrossing { pop: LocationTag::Ixp(IxpId(2)), near: Asn(5), far: Asn(7) },
            ],
            hops: vec![Asn(9), Asn(5), Asn(6)],
        };
        match interner.intern_event(&ev) {
            DenseRouteEvent::Update { route, crossings } => {
                assert_eq!(interner.route_key(route), key(1));
                assert_eq!(crossings.len(), 2);
                let back: Vec<PopCrossing> =
                    crossings.iter().map(|&c| interner.resolve_crossing(c)).collect();
                assert_eq!(
                    back[0],
                    PopCrossing {
                        pop: LocationTag::Facility(FacilityId(1)),
                        near: Asn(5),
                        far: Asn(6)
                    }
                );
                assert_eq!(back[1].far, Asn(7));
                // `near` interned once, shared.
                assert_eq!(crossings[0].near, crossings[1].near);
            }
            _ => panic!("expected update"),
        }
        match interner.intern_event(&RouteEvent::Withdraw { key: key(1) }) {
            DenseRouteEvent::Withdraw { route } => assert_eq!(route, RouteId(0)),
            _ => panic!("expected withdraw"),
        }
    }
}

//! N-way sharded monitor: fan [`DenseRouteEvent`]s to per-shard
//! [`MonitorCore`]s on worker threads and merge per-shard deviation counts
//! into one [`DenseBinOutcome`] at bin close.
//!
//! Routes are partitioned by `RouteId % shards`, so each route's entire
//! history lives on exactly one shard and per-(PoP, near-AS) group
//! fractions are *additive*: the merged numerator is the concatenation of
//! per-shard deviated route sets (disjoint by construction) and the merged
//! denominator is the sum of per-shard stable counts. The merge is
//! therefore exact — a [`ShardedMonitor`] produces bit-identical resolved
//! [`BinOutcome`](crate::monitor::BinOutcome)s to a single [`Monitor`] fed
//! the same stream (property-tested in `tests/differential.rs`).
//!
//! Bin closes ride the event stream as **in-stream markers** instead of
//! lockstep phase round-trips: the coordinator enqueues one
//! `CloseBin` marker per shard, and each shard — on reaching
//! the marker at its exact stream position — reports the bin's groups and
//! watched counts, captures the pre-finish denominators it may still be
//! asked about ([`MonitorCore::close_bin_eager`]), and prunes + promotes
//! *immediately*. Later-bin events may therefore be streamed right behind
//! the marker. When the merged groups need cross-shard denominators or
//! snapshot denominators, the coordinator issues one combined deferred
//! read-only query answered from the captured pre-state (live state for
//! anything the finish did not touch — `apply` never mutates the stable
//! index). Shards retain pre-states until the coordinator's next marker
//! declares the bin finalized (`drop_upto`).
//!
//! **The close handshake is lock-free on the shard side.** Replies don't
//! travel back over the mpsc channel: each close marker carries an
//! `Arc<CloseBoard>` — one single-writer publication slot
//! per shard plus an atomic countdown. A shard reaching the marker
//! publishes its report with one store and immediately continues with the
//! events queued *behind* the marker; it never waits on the coordinator
//! or on sibling shards. Only the coordinator spins (with
//! `thread::yield_now`) until the countdown hits zero, then merges the
//! slots in shard-index order — the merge order, and therefore the
//! resolved outcome, is deterministic and bit-identical to the single
//! monitor (property-tested in `tests/differential.rs`).
//!
//! Events are batched per shard (`BATCH` events per channel send) so the
//! per-event cost is one `Vec` push; the channel hop is amortized.

use crate::config::KeplerConfig;
use crate::fx::{FxHashMap, FxHashSet};
use crate::intern::{AsnId, DenseRouteEvent, GroupKey, PopId, RouteId};
use crate::monitor::{
    finalize_bin, BinPreState, DenseBinOutcome, GroupStat, Monitor, MonitorCore, SnapshotPair,
};
use kepler_bgpstream::Timestamp;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Events buffered per shard before a channel send.
const BATCH: usize = 1024;

/// A single-writer, single-reader publication slot.
///
/// Exactly one shard writes the slot (once per board) via
/// [`publish`](Self::publish); the coordinator reads it via
/// [`take`](Self::take) only after observing the ready flag (or the
/// board countdown) with `Acquire` ordering, which synchronizes with the
/// writer's `Release` store — so the plain cell write is always visible
/// before the read.
struct Slot<T> {
    ready: AtomicBool,
    cell: UnsafeCell<Option<T>>,
}

// SAFETY: the cell is only written before the `Release` store of `ready`
// and only read after an `Acquire` load observes it (see `publish` /
// `take`), so cross-thread access to the cell is data-race free.
unsafe impl<T: Send> Sync for Slot<T> {}

impl<T> Slot<T> {
    fn new() -> Self {
        Slot { ready: AtomicBool::new(false), cell: UnsafeCell::new(None) }
    }

    /// Publishes the value. Must be called at most once per slot.
    fn publish(&self, value: T) {
        // SAFETY: single writer (the owning shard), and the coordinator
        // does not read until `ready` is observed true.
        unsafe { *self.cell.get() = Some(value) };
        self.ready.store(true, Ordering::Release);
    }

    /// Takes the published value, if the publication is visible.
    fn take(&self) -> Option<T> {
        if self.ready.load(Ordering::Acquire) {
            // SAFETY: `Acquire` above synchronizes with the writer's
            // `Release`; the writer never touches the cell again.
            unsafe { (*self.cell.get()).take() }
        } else {
            None
        }
    }
}

/// One bin close's reply board: a publication slot per shard plus an
/// atomic countdown of outstanding publications. Allocated fresh per
/// close and shared via `Arc` with every shard's marker, so closes can
/// never cross-talk.
struct CloseBoard<T> {
    remaining: AtomicUsize,
    slots: Vec<Slot<T>>,
}

impl<T> CloseBoard<T> {
    fn new(shards: usize) -> Arc<Self> {
        Arc::new(CloseBoard {
            remaining: AtomicUsize::new(shards),
            slots: (0..shards).map(|_| Slot::new()).collect(),
        })
    }

    /// Wait-free publish from shard `idx`; never blocks the shard.
    fn publish(&self, idx: usize, value: T) {
        self.slots[idx].publish(value);
        // `Release` RMWs on one atomic form a release sequence: the
        // coordinator's `Acquire` read of the final zero synchronizes
        // with every shard's publication.
        self.remaining.fetch_sub(1, Ordering::Release);
    }

    /// Coordinator-side: spin until every shard has published.
    fn wait(&self) {
        while self.remaining.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Coordinator-side: take shard `idx`'s report (must be published).
    fn take(&self, idx: usize) -> T {
        self.slots[idx].take().expect("shard published its close report")
    }
}

/// A shard's phase-1 close report, published on the close marker.
struct ShardBinReport {
    groups: Vec<GroupStat>,
    stable_counts: Vec<usize>,
    presence_counts: Vec<u64>,
}

/// A shard's phase-2 report: pre-finish denominators for the merged
/// group keys plus snapshot denominators for the candidate pops.
struct ShardResolveReport {
    totals: Vec<usize>,
    snapshots: Vec<(PopId, SnapshotPair)>,
}

enum ToShard {
    Events(Vec<(Timestamp, DenseRouteEvent)>),
    /// In-stream bin-close marker: publish bin groups plus stable counts
    /// for the given pops to the board, capture pre-finish state, then
    /// prune + promote eagerly. Pre-states of bins at or before
    /// `drop_upto` are released.
    CloseBin {
        /// End of the closing bin (prune/promote horizon).
        bin_end: Timestamp,
        /// Watched PoPs whose stable counts the report must carry.
        watched: Vec<PopId>,
        /// Presence-watched PoPs whose announced-crossing counts the
        /// report must carry (sampled at the marker's stream position).
        presence: Vec<PopId>,
        /// Every retained pre-state with `bin_end <=` this is dropped.
        drop_upto: Timestamp,
        /// Where the report is published (lock-free, one slot per shard).
        board: Arc<CloseBoard<ShardBinReport>>,
    },
    /// Deferred combined query: pre-finish stable-route counts of the
    /// given groups plus `stable_fars`/`stable_nears` snapshots of the
    /// given pops, for the bin that ended at the timestamp.
    ResolveBin {
        /// End of the bin whose retained pre-state answers the query.
        bin_end: Timestamp,
        /// Merged group keys needing all-shard denominators.
        keys: Vec<GroupKey>,
        /// Candidate pops needing snapshot denominators.
        pops: Vec<PopId>,
        /// Where the report is published.
        board: Arc<CloseBoard<ShardResolveReport>>,
    },
    /// Promotions only (empty-stretch skip).
    RunPromotions(Timestamp),
    QueryCrossings(Vec<(RouteId, PopId, AsnId)>),
    QueryBaselineSize,
    QueryStableCount(PopId),
    QueryCoverage(PopId),
}

enum FromShard {
    Bools(Vec<bool>),
    Count(usize),
    Coverage(Vec<AsnId>, Vec<AsnId>),
}

fn shard_loop(idx: usize, mut core: MonitorCore, rx: Receiver<ToShard>, tx: Sender<FromShard>) {
    // Pre-finish states of eagerly-closed bins the coordinator may still
    // query, keyed by bin end. Bounded by the coordinator's `drop_upto`
    // acknowledgements (in practice: the bin being finalized plus one).
    let mut prestates: VecDeque<(Timestamp, BinPreState)> = VecDeque::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Events(batch) => {
                for (t, ev) in &batch {
                    core.apply(*t, ev);
                }
            }
            ToShard::CloseBin { bin_end, watched, presence, drop_upto, board } => {
                while prestates.front().map(|(end, _)| *end <= drop_upto).unwrap_or(false) {
                    prestates.pop_front();
                }
                let eager = core.close_bin_eager(bin_end, &watched, &presence);
                prestates.push_back((bin_end, eager.pre));
                // Wait-free publish: the shard proceeds straight to the
                // events queued behind the marker.
                board.publish(
                    idx,
                    ShardBinReport {
                        groups: eager.groups,
                        stable_counts: eager.watch_stables,
                        presence_counts: eager.presence,
                    },
                );
            }
            ToShard::ResolveBin { bin_end, keys, pops, board } => {
                let pre = prestates
                    .iter()
                    .find(|(end, _)| *end == bin_end)
                    .map(|(_, pre)| pre)
                    .expect("queried bin's pre-state retained");
                let totals = core.group_totals_pre(pre, &keys);
                let snapshots = pops.iter().map(|&p| (p, core.snapshot_pre(pre, p))).collect();
                board.publish(idx, ShardResolveReport { totals, snapshots });
            }
            ToShard::RunPromotions(now) => core.run_promotions(now),
            ToShard::QueryCrossings(items) => {
                let bools =
                    items.iter().map(|&(r, p, a)| core.route_has_crossing(r, p, a)).collect();
                if tx.send(FromShard::Bools(bools)).is_err() {
                    return;
                }
            }
            ToShard::QueryBaselineSize => {
                if tx.send(FromShard::Count(core.baseline_size())).is_err() {
                    return;
                }
            }
            ToShard::QueryStableCount(pop) => {
                if tx.send(FromShard::Count(core.stable_count(pop))).is_err() {
                    return;
                }
            }
            ToShard::QueryCoverage(pop) => {
                let (n, f) = core.coverage_sets(pop);
                if tx.send(FromShard::Coverage(n, f)).is_err() {
                    return;
                }
            }
        }
    }
}

/// The sharded monitoring module. API mirrors [`Monitor`].
pub struct ShardedMonitor {
    config: KeplerConfig,
    txs: Vec<Sender<ToShard>>,
    rxs: Vec<Receiver<FromShard>>,
    handles: Vec<JoinHandle<()>>,
    bin_start: Option<Timestamp>,
    watches: FxHashMap<PopId, Vec<(Timestamp, f64)>>,
    /// Presence-watched PoPs, sorted (mirrors [`Monitor`]'s list; the
    /// merged per-bin sample is the element-wise sum across shards).
    presence_watch: Vec<PopId>,
    buffers: Vec<Vec<(Timestamp, DenseRouteEvent)>>,
    buffered: usize,
    /// End of the last fully finalized bin — shards may drop pre-states
    /// up to here (sent with the next close marker).
    finalized_upto: Timestamp,
}

impl ShardedMonitor {
    /// A monitor with `shards` worker shards.
    pub fn new(config: KeplerConfig, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        let mut txs = Vec::with_capacity(shards);
        let mut rxs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for idx in 0..shards {
            let (tx, shard_rx) = channel::<ToShard>();
            let (shard_tx, rx) = channel::<FromShard>();
            let core = MonitorCore::new(config.clone(), shards as u32);
            handles.push(std::thread::spawn(move || shard_loop(idx, core, shard_rx, shard_tx)));
            txs.push(tx);
            rxs.push(rx);
        }
        ShardedMonitor {
            config,
            txs,
            rxs,
            handles,
            bin_start: None,
            watches: FxHashMap::default(),
            presence_watch: Vec::new(),
            buffers: vec![Vec::new(); shards],
            buffered: 0,
            finalized_upto: 0,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Registers a PoP whose per-bin aggregate change fraction should be
    /// recorded.
    pub fn watch(&mut self, pop: PopId) {
        self.watches.entry(pop).or_default();
    }

    /// The recorded (bin start, change fraction) series of a watched PoP.
    pub fn watch_series(&self, pop: PopId) -> Option<&[(Timestamp, f64)]> {
        self.watches.get(&pop).map(Vec::as_slice)
    }

    /// All registered watch PoPs.
    pub fn watched_pops(&self) -> Vec<PopId> {
        self.watches.keys().copied().collect()
    }

    /// Registers a PoP whose per-bin presence count (announced crossings)
    /// should be sampled, mirroring [`Monitor::watch_presence`]. Disables
    /// the empty-stretch skip so every bin is sampled.
    pub fn watch_presence(&mut self, pop: PopId) {
        if !self.presence_watch.contains(&pop) {
            self.presence_watch.push(pop);
            self.presence_watch.sort_unstable();
        }
    }

    /// All presence-watched PoPs, sorted.
    pub fn presence_watched(&self) -> &[PopId] {
        &self.presence_watch
    }

    fn send(&self, shard: usize, msg: ToShard) {
        self.txs[shard].send(msg).expect("shard thread alive");
    }

    fn flush(&mut self) {
        if self.buffered == 0 {
            return;
        }
        for shard in 0..self.buffers.len() {
            if !self.buffers[shard].is_empty() {
                let batch = std::mem::take(&mut self.buffers[shard]);
                self.send(shard, ToShard::Events(batch));
            }
        }
        self.buffered = 0;
    }

    /// Feeds one event, returning any bins closed by time advancing.
    pub fn observe(&mut self, t: Timestamp, event: &DenseRouteEvent) -> Vec<DenseBinOutcome> {
        let closed = self.advance_to(t);
        let shard = (event.route().0 as usize) % self.buffers.len();
        self.buffers[shard].push((t, event.clone()));
        self.buffered += 1;
        if self.buffered >= BATCH {
            self.flush();
        }
        closed
    }

    /// Advances virtual time to `t`, closing every bin that ends at or
    /// before it (same clock logic as [`Monitor::advance_to`]).
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<DenseBinOutcome> {
        let bin_secs = self.config.bin_secs;
        let mut out = Vec::new();
        match self.bin_start {
            None => {
                self.bin_start = Some(t - t % bin_secs);
            }
            Some(start) => {
                let mut bin_start = start;
                // Checked bin-end arithmetic, mirroring
                // [`Monitor::advance_to`]'s `u64::MAX` guard.
                while bin_start.checked_add(bin_secs).is_some_and(|end| t >= end) {
                    out.push(self.close_bin(bin_start));
                    let next = bin_start + bin_secs;
                    // Post-close, shard deviation state is always empty, so
                    // the skip condition matches the single monitor's.
                    if out.last().map(|o| o.signals.is_empty()).unwrap_or(false)
                        && self.watches.is_empty()
                        && self.presence_watch.is_empty()
                        && next.checked_add(bin_secs).is_some_and(|end| t >= end)
                    {
                        bin_start = t - t % bin_secs;
                        for shard in 0..self.txs.len() {
                            self.send(shard, ToShard::RunPromotions(bin_start));
                        }
                    } else {
                        bin_start = next;
                    }
                }
                self.bin_start = Some(bin_start);
            }
        }
        out
    }

    fn close_bin(&mut self, bin_start: Timestamp) -> DenseBinOutcome {
        let bin_end = bin_start + self.config.bin_secs;
        self.flush();
        // One in-stream marker per shard: each reports its groups and
        // watched counts, captures pre-finish state, and prunes +
        // promotes eagerly — no separate finish round-trip.
        let watched: Vec<PopId> = self.watches.keys().copied().collect();
        let board = CloseBoard::new(self.txs.len());
        for shard in 0..self.txs.len() {
            let marker = ToShard::CloseBin {
                bin_end,
                watched: watched.clone(),
                presence: self.presence_watch.clone(),
                drop_upto: self.finalized_upto,
                board: Arc::clone(&board),
            };
            self.send(shard, marker);
        }
        // Only the coordinator waits; shards publish and stream on.
        board.wait();
        let mut merged: FxHashMap<GroupKey, GroupStat> = FxHashMap::default();
        let mut watch_stables = vec![0usize; watched.len()];
        let mut presence_sums = vec![0u64; self.presence_watch.len()];
        // Merge in shard-index order: deterministic, so group route lists
        // and far sets come out bit-identical run to run.
        for shard in 0..self.txs.len() {
            let ShardBinReport { groups, stable_counts, presence_counts } = board.take(shard);
            for g in groups {
                match merged.get_mut(&g.key) {
                    None => {
                        merged.insert(g.key, g);
                    }
                    Some(m) => {
                        // Numerators and far sets merge here; denominators
                        // come from the resolve phase, which overwrites
                        // `stable_total` with the all-shard count.
                        m.deviated.extend(g.deviated);
                        m.fars.extend(g.fars);
                    }
                }
            }
            for (acc, n) in watch_stables.iter_mut().zip(stable_counts) {
                *acc += n;
            }
            // Routes live on exactly one shard, so per-shard presence
            // counts are disjoint and sum exactly.
            for (acc, n) in presence_sums.iter_mut().zip(presence_counts) {
                *acc += n;
            }
        }
        // Watched series from merged counts (same pre-pruning view as the
        // single monitor).
        let mut watch_devs = vec![0usize; watched.len()];
        for g in merged.values() {
            let (pop, _) = crate::intern::unpack_group(g.key);
            if let Some(i) = watched.iter().position(|&p| p == pop) {
                watch_devs[i] += g.deviated.len();
            }
        }
        for ((pop, stable), deviated) in watched.iter().zip(watch_stables).zip(watch_devs) {
            let frac = if stable == 0 { 0.0 } else { deviated as f64 / stable as f64 };
            self.watches.get_mut(pop).expect("watched").push((bin_start, frac));
        }
        // Dedup merged far sets (unioned across shards).
        let mut groups: Vec<GroupStat> = merged.into_values().collect();
        for g in &mut groups {
            let set: FxHashSet<AsnId> = g.fars.iter().copied().collect();
            g.fars = set.into_iter().collect();
        }
        // Combined deferred query: a group's denominator must count
        // *every* shard's stable routes, including shards that saw no
        // deviation for it this bin — gather pre-finish totals for the
        // merged group keys, plus snapshot denominators for every group
        // PoP. The PoP list is a superset of the pops `finalize_bin` will
        // actually consume (it only asks for signaled ones); snapshots are
        // read-only pre-state lookups, so over-asking is harmless and
        // keeps the close at one resolve round instead of two.
        let mut snapshots: FxHashMap<PopId, SnapshotPair> = FxHashMap::default();
        if !groups.is_empty() {
            let keys: Vec<GroupKey> = groups.iter().map(|g| g.key).collect();
            let mut pops: Vec<PopId> =
                groups.iter().map(|g| crate::intern::unpack_group(g.key).0).collect();
            pops.sort_unstable();
            pops.dedup();
            let board = CloseBoard::new(self.txs.len());
            for shard in 0..self.txs.len() {
                let query = ToShard::ResolveBin {
                    bin_end,
                    keys: keys.clone(),
                    pops: pops.clone(),
                    board: Arc::clone(&board),
                };
                self.send(shard, query);
            }
            board.wait();
            let mut totals = vec![0usize; keys.len()];
            for shard in 0..self.txs.len() {
                let ShardResolveReport { totals: t, snapshots: snap } = board.take(shard);
                for (acc, n) in totals.iter_mut().zip(t) {
                    *acc += n;
                }
                for (pop, (fars, nears)) in snap {
                    let entry = snapshots.entry(pop).or_default();
                    merge_fars(&mut entry.0, fars);
                    merge_nears(&mut entry.1, nears);
                }
            }
            for (g, total) in groups.iter_mut().zip(totals) {
                g.stable_total = total;
            }
        }
        let mut outcome = finalize_bin(&self.config, bin_start, groups, |pop| {
            snapshots.remove(&pop).unwrap_or_default()
        });
        if !self.presence_watch.is_empty() {
            outcome.watch_presence =
                self.presence_watch.iter().copied().zip(presence_sums).collect();
        }
        // Shards already pruned + promoted at the marker; the bin is now
        // fully finalized and its pre-states can be released.
        self.finalized_upto = bin_end;
        outcome
    }

    /// Total stable routes across shards.
    pub fn baseline_size(&mut self) -> usize {
        self.flush();
        for shard in 0..self.txs.len() {
            self.send(shard, ToShard::QueryBaselineSize);
        }
        self.gather_counts()
    }

    /// Number of stable routes currently indexed at `pop`, across shards.
    pub fn stable_count(&mut self, pop: PopId) -> usize {
        self.flush();
        for shard in 0..self.txs.len() {
            self.send(shard, ToShard::QueryStableCount(pop));
        }
        self.gather_counts()
    }

    fn gather_counts(&self) -> usize {
        self.rxs
            .iter()
            .map(|rx| match rx.recv().expect("shard reply") {
                FromShard::Count(n) => n,
                _ => unreachable!("protocol: expected Count"),
            })
            .sum()
    }

    /// Bulk crossing-presence query, answered with one round-trip per
    /// shard (used by the tracker's restoration checks).
    pub fn crossings_present(&mut self, items: &[(RouteId, PopId, AsnId)]) -> Vec<bool> {
        self.flush();
        let shards = self.txs.len();
        let mut per_shard: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut queries: Vec<Vec<(RouteId, PopId, AsnId)>> = vec![Vec::new(); shards];
        for (i, item) in items.iter().enumerate() {
            let s = (item.0 .0 as usize) % shards;
            per_shard[s].push(i);
            queries[s].push(*item);
        }
        for (shard, q) in queries.into_iter().enumerate() {
            if !per_shard[shard].is_empty() {
                self.send(shard, ToShard::QueryCrossings(q));
            }
        }
        let mut out = vec![false; items.len()];
        for (shard, idxs) in per_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            match self.rxs[shard].recv().expect("shard reply") {
                FromShard::Bools(bools) => {
                    for (&i, b) in idxs.iter().zip(bools) {
                        out[i] = b;
                    }
                }
                _ => unreachable!("protocol: expected Bools"),
            }
        }
        out
    }

    /// High-water observability of a PoP: distinct near/far ASes across
    /// all shards' stable crossings.
    pub fn pop_coverage(&mut self, pop: PopId) -> (usize, usize) {
        self.flush();
        for shard in 0..self.txs.len() {
            self.send(shard, ToShard::QueryCoverage(pop));
        }
        let mut nears: FxHashSet<AsnId> = FxHashSet::default();
        let mut fars: FxHashSet<AsnId> = FxHashSet::default();
        for rx in &self.rxs {
            match rx.recv().expect("shard reply") {
                FromShard::Coverage(n, f) => {
                    nears.extend(n);
                    fars.extend(f);
                }
                _ => unreachable!("protocol: expected Coverage"),
            }
        }
        (nears.len(), fars.len())
    }
}

fn merge_fars(acc: &mut Vec<(AsnId, Vec<(AsnId, usize)>)>, add: Vec<(AsnId, Vec<(AsnId, usize)>)>) {
    for (near, fars) in add {
        match acc.iter_mut().find(|(n, _)| *n == near) {
            None => acc.push((near, fars)),
            Some((_, existing)) => {
                for (far, count) in fars {
                    match existing.iter_mut().find(|(f, _)| *f == far) {
                        None => existing.push((far, count)),
                        Some((_, c)) => *c += count,
                    }
                }
            }
        }
    }
}

fn merge_nears(acc: &mut Vec<(AsnId, usize)>, add: Vec<(AsnId, usize)>) {
    for (near, count) in add {
        match acc.iter_mut().find(|(n, _)| *n == near) {
            None => acc.push((near, count)),
            Some((_, c)) => *c += count,
        }
    }
}

impl Drop for ShardedMonitor {
    fn drop(&mut self) {
        // Hang up the command channels; workers exit their recv loops.
        self.txs.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Either monitor behind one dispatching surface, so the system pipeline
/// ([`crate::system::Kepler`]) and the tracker work with both.
#[allow(clippy::large_enum_variant)] // one long-lived instance per system
pub enum AnyMonitor {
    /// Single-threaded monitor.
    Single(Monitor),
    /// Sharded monitor on worker threads.
    Sharded(ShardedMonitor),
}

impl AnyMonitor {
    /// Feeds one event.
    pub fn observe(&mut self, t: Timestamp, event: &DenseRouteEvent) -> Vec<DenseBinOutcome> {
        match self {
            AnyMonitor::Single(m) => m.observe(t, event),
            AnyMonitor::Sharded(m) => m.observe(t, event),
        }
    }

    /// Advances virtual time.
    pub fn advance_to(&mut self, t: Timestamp) -> Vec<DenseBinOutcome> {
        match self {
            AnyMonitor::Single(m) => m.advance_to(t),
            AnyMonitor::Sharded(m) => m.advance_to(t),
        }
    }

    /// Registers a watched PoP.
    pub fn watch(&mut self, pop: PopId) {
        match self {
            AnyMonitor::Single(m) => m.watch(pop),
            AnyMonitor::Sharded(m) => m.watch(pop),
        }
    }

    /// The recorded series of a watched PoP.
    pub fn watch_series(&self, pop: PopId) -> Option<&[(Timestamp, f64)]> {
        match self {
            AnyMonitor::Single(m) => m.watch_series(pop),
            AnyMonitor::Sharded(m) => m.watch_series(pop),
        }
    }

    /// All registered watch PoPs.
    pub fn watched_pops(&self) -> Vec<PopId> {
        match self {
            AnyMonitor::Single(m) => m.watched_pops(),
            AnyMonitor::Sharded(m) => m.watched_pops(),
        }
    }

    /// Registers a presence-watched PoP (forecast-detector input).
    pub fn watch_presence(&mut self, pop: PopId) {
        match self {
            AnyMonitor::Single(m) => m.watch_presence(pop),
            AnyMonitor::Sharded(m) => m.watch_presence(pop),
        }
    }

    /// All presence-watched PoPs, sorted.
    pub fn presence_watched(&self) -> &[PopId] {
        match self {
            AnyMonitor::Single(m) => m.presence_watched(),
            AnyMonitor::Sharded(m) => m.presence_watched(),
        }
    }

    /// Total stable routes.
    pub fn baseline_size(&mut self) -> usize {
        match self {
            AnyMonitor::Single(m) => m.baseline_size(),
            AnyMonitor::Sharded(m) => m.baseline_size(),
        }
    }

    /// Stable routes currently indexed at `pop`.
    pub fn stable_count(&mut self, pop: PopId) -> usize {
        match self {
            AnyMonitor::Single(m) => m.stable_count(pop),
            AnyMonitor::Sharded(m) => m.stable_count(pop),
        }
    }

    /// Bulk crossing-presence query.
    pub fn crossings_present(&mut self, items: &[(RouteId, PopId, AsnId)]) -> Vec<bool> {
        match self {
            AnyMonitor::Single(m) => m.crossings_present(items),
            AnyMonitor::Sharded(m) => m.crossings_present(items),
        }
    }

    /// High-water observability of a PoP.
    pub fn pop_coverage(&mut self, pop: PopId) -> (usize, usize) {
        match self {
            AnyMonitor::Single(m) => m.pop_coverage(pop),
            AnyMonitor::Sharded(m) => m.pop_coverage(pop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RouteKey;
    use crate::input::{PopCrossing, RouteEvent};
    use crate::intern::Interner;
    use kepler_bgp::{Asn, Prefix};
    use kepler_bgpstream::{CollectorId, PeerId};
    use kepler_docmine::LocationTag;
    use kepler_topology::FacilityId;

    const DAY: u64 = 86_400;

    fn cfg() -> KeplerConfig {
        KeplerConfig { min_stable_paths: 2, ..KeplerConfig::default() }
    }

    fn key(i: u8) -> RouteKey {
        RouteKey {
            collector: CollectorId(0),
            peer: PeerId { asn: Asn(100 + i as u32), addr: "10.0.0.9".parse().unwrap() },
            prefix: Prefix::v4(20, i, 0, 0, 16),
        }
    }

    fn fac(pop: u32, near: u32, far: u32) -> PopCrossing {
        PopCrossing { pop: LocationTag::Facility(FacilityId(pop)), near: Asn(near), far: Asn(far) }
    }

    #[test]
    fn sharded_matches_single_on_simple_outage() {
        for shards in [1usize, 2, 3, 8] {
            let mut interner = Interner::new();
            let mut single = Monitor::new(cfg());
            let mut sharded = ShardedMonitor::new(cfg(), shards);
            let t0 = 1_000_000u64;
            for i in 0..8u8 {
                let ev = interner.intern_event(&RouteEvent::Update {
                    key: key(i),
                    crossings: vec![fac(1, 50, 60 + i as u32)],
                    hops: vec![],
                });
                single.observe(t0, &ev);
                sharded.observe(t0, &ev);
            }
            let t1 = t0 + 2 * DAY + 300;
            single.advance_to(t1);
            sharded.advance_to(t1);
            for i in 0..6u8 {
                let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
                single.observe(t1 + 5, &ev);
                sharded.observe(t1 + 5, &ev);
            }
            let a: Vec<_> =
                single.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
            let b: Vec<_> =
                sharded.advance_to(t1 + 120).iter().map(|o| o.resolve(&interner)).collect();
            assert_eq!(a, b, "shards={shards}");
            assert_eq!(a.iter().map(|o| o.signals.len()).sum::<usize>(), 1);
            assert_eq!(single.baseline_size(), sharded.baseline_size(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_watch_series_matches_single() {
        let mut interner = Interner::new();
        let pop = interner.pop_id(LocationTag::Facility(FacilityId(1)));
        let mut single = Monitor::new(cfg());
        let mut sharded = ShardedMonitor::new(cfg(), 4);
        single.watch(pop);
        sharded.watch(pop);
        let t0 = 1_000_000u64;
        for i in 0..8u8 {
            let ev = interner.intern_event(&RouteEvent::Update {
                key: key(i),
                crossings: vec![fac(1, 50, 60)],
                hops: vec![],
            });
            single.observe(t0, &ev);
            sharded.observe(t0, &ev);
        }
        let t1 = t0 + 2 * DAY + 300;
        single.advance_to(t1);
        sharded.advance_to(t1);
        for i in 0..4u8 {
            let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
            single.observe(t1 + 1, &ev);
            sharded.observe(t1 + 1, &ev);
        }
        single.advance_to(t1 + 180);
        sharded.advance_to(t1 + 180);
        assert_eq!(single.watch_series(pop), sharded.watch_series(pop));
    }

    #[test]
    fn sharded_presence_matches_single() {
        for shards in [1usize, 3, 4] {
            let mut interner = Interner::new();
            let pop = interner.pop_id(LocationTag::Facility(FacilityId(1)));
            let mut single = Monitor::new(cfg());
            let mut sharded = ShardedMonitor::new(cfg(), shards);
            single.watch_presence(pop);
            sharded.watch_presence(pop);
            assert_eq!(single.presence_watched(), sharded.presence_watched());
            let t0 = 1_000_000u64;
            for i in 0..9u8 {
                let ev = interner.intern_event(&RouteEvent::Update {
                    key: key(i),
                    crossings: vec![fac(1, 50, 60 + i as u32)],
                    hops: vec![],
                });
                single.observe(t0, &ev);
                sharded.observe(t0, &ev);
            }
            let t1 = t0 + 2 * DAY + 300;
            single.advance_to(t1);
            sharded.advance_to(t1);
            // Drain routes one per bin; the per-bin presence series must
            // agree step for step between the two implementations.
            for i in 0..6u8 {
                let ev = interner.intern_event(&RouteEvent::Withdraw { key: key(i) });
                let t = t1 + 60 * (i as u64 + 1);
                single.observe(t, &ev);
                sharded.observe(t, &ev);
            }
            let a: Vec<Vec<(PopId, u64)>> =
                single.advance_to(t1 + 900).iter().map(|o| o.watch_presence.clone()).collect();
            let b: Vec<Vec<(PopId, u64)>> =
                sharded.advance_to(t1 + 900).iter().map(|o| o.watch_presence.clone()).collect();
            assert_eq!(a, b, "shards={shards}");
            assert!(a.iter().all(|s| s.len() == 1), "{a:?}");
            assert_eq!(a.last().unwrap()[0], (pop, 3), "{a:?}");
        }
    }

    #[test]
    fn crossings_present_routes_to_right_shard() {
        let mut interner = Interner::new();
        let mut sharded = ShardedMonitor::new(cfg(), 3);
        let t0 = 1_000_000u64;
        let mut items = Vec::new();
        for i in 0..9u8 {
            let ev = interner.intern_event(&RouteEvent::Update {
                key: key(i),
                crossings: vec![fac(1, 50, 60)],
                hops: vec![],
            });
            sharded.observe(t0, &ev);
            items.push((
                ev.route(),
                interner.pop_id(LocationTag::Facility(FacilityId(1))),
                interner.asn_id(Asn(50)),
            ));
        }
        let present = sharded.crossings_present(&items);
        assert!(present.iter().all(|&b| b), "{present:?}");
        // A route that was never announced is absent.
        let ghost = interner.route_id(&key(200));
        let absent = sharded.crossings_present(&[(ghost, items[0].1, items[0].2)]);
        assert_eq!(absent, vec![false]);
    }
}

//! A multiply-xor hasher for small integer keys (the Firefox/rustc "Fx"
//! construction), used on the monitor hot path.
//!
//! The detector's inner maps are keyed by dense `u32`/`u64` identifiers
//! (see [`crate::intern`]); SipHash's per-call setup cost dominates lookups
//! at that key size, while this hasher folds a word in two multiplies. It
//! is *not* DoS-resistant and must only be used for keys derived from
//! interned ids, never for attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Default-constructible builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher state: one word, rotated and multiplied per input word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributes_small_ints() {
        let mut buckets = [0usize; 16];
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 16) as usize] += 1;
        }
        // Roughly uniform: no bucket more than 2x the mean.
        assert!(buckets.iter().all(|&b| b < 1250), "{buckets:?}");
    }

    #[test]
    fn maps_work() {
        let mut m: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&37], 74);
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(5);
        assert!(s.contains(&5));
    }
}

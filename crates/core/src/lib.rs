//! Kepler — detecting peering infrastructure outages from BGP communities.
//!
//! This crate is the paper's contribution: a passive monitoring system that
//! localizes colocation-facility and IXP outages to the level of a building
//! from public BGP data. The pipeline (paper Figures 6 and Algorithm 1):
//!
//! 1. [`input`] — sanitize updates, map location-encoding communities to
//!    the PoPs (facility / IXP / city) each route traverses.
//! 2. [`monitor`] — maintain a stable-path baseline (routes unchanged for
//!    2 days), bin updates at 60 s, and raise an **outage signal** when,
//!    for some (PoP, near-end AS), more than `T_fail` of the stable paths
//!    deviate within a bin.
//! 3. [`investigate`] — classify concurrent signals as link-level,
//!    AS-level, operator-level or PoP-level, then disambiguate the true
//!    epicenter with the colocation map (the 95% co-location rule,
//!    facility↔IXP resolution escalation, city abstraction). Members
//!    flagged remote at an exchange by the latency heuristic
//!    ([`remote`]) never vote for that metro's buildings.
//! 4. [`dataplane`] — optionally confirm incidents and their durations
//!    against traceroute measurements, eliminating false positives
//!    (low-confidence localizations additionally go to the `kepler-probe`
//!    engine for facility-level disambiguation).
//! 5. [`tracker`] — the incident lifecycle (`Open` → `Recovering` →
//!    `Closed`): oscillation merging (<12 h), control-plane restoration
//!    (>50% of paths return), probe-driven restoration (backoff
//!    re-probes of the epicenter), cross-bin evidence accumulation with
//!    decaying confidence, duration accounting.
//! 6. [`metrics`] — evaluation against ground truth (TP/FP/FN).
//!
//! The [`system::Kepler`] type wires all of it together behind a
//! feed-records-in, get-outages-out API. Scaling layers sit beside the
//! pipeline: [`intern`] (dense ids for every hot-path identity),
//! [`shard`] (N-way sharded monitor), [`ingest`] (parallel decode).
//!
//! # Key types
//!
//! [`KeplerConfig`] (the paper's calibrated §5.1 defaults),
//! [`system::Kepler`], [`OutageReport`] with [`OutageScope`],
//! [`IncidentState`] and [`ValidationStatus`], and the dense-id
//! vocabulary [`RouteId`]/[`PopId`]/[`AsnId`].
//!
//! # Invariants
//!
//! * **Dense hot path.** Display identities are interned once at input
//!   time; monitor, shards and tracker work on `u32` ids and resolve
//!   back only at report time ([`monitor::DenseBinOutcome::resolve`]).
//! * **Parallelism is exact.** Sharded monitoring and parallel ingest
//!   produce bit-identical resolved outcomes to their serial
//!   counterparts (differential property tests in `crates/core/tests/`).
//! * **Probing is monotone.** Attaching a prober never changes outcomes
//!   for events it does not probe; confident localizations bypass it.
//! * **Closes are evidence-driven.** An incident ends only when the
//!   control plane restores (>`restore_fraction` of watched crossings
//!   back) or two consecutive restoration re-probes observe the
//!   epicenter forwarding again — never on a timer.

pub mod config;
pub mod dataplane;
pub mod events;
pub mod fx;
pub mod ingest;
pub mod input;
pub mod intern;
pub mod investigate;
pub mod metrics;
pub mod monitor;
pub mod remote;
pub mod shard;
pub mod signal;
pub mod system;
pub mod tracker;

pub use config::KeplerConfig;
pub use events::{
    IncidentState, OutageReport, OutageScope, RouteKey, SignalClass, ValidationStatus,
};
pub use ingest::ParallelIngest;
pub use intern::{AsnId, DenseCrossing, DenseRouteEvent, Interner, PopId, RouteId};
pub use investigate::{FacilityCandidate, Localization, PendingIncident};
pub use remote::RemotenessMap;
pub use shard::{AnyMonitor, ShardedMonitor};
pub use signal::{
    BinView, CanaryPair, DelayDetector, ForecastDetector, SignalKind, SignalSource,
    SourceContribution, SourceSignal,
};
pub use system::{Kepler, KeplerInputs};
pub use tracker::{OngoingExport, TrackerState};

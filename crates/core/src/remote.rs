//! Remote-peering detection ("O Peer, Where Art Thou?", arXiv:1911.04924).
//!
//! A remote peer joins an IXP through a layer-2 reseller: it appears on
//! the peering LAN and in the IXP's member list, but has no router in any
//! facility hosting the fabric. The localization inference (membership →
//! building) is blind to this — a remote member affected by a fabric
//! outage would vote for the facilities of its *distant home metro*,
//! mislocalizing the epicenter.
//!
//! The classical detection heuristic is latency-based: on a traceroute
//! entering the peering LAN, the RTT step from the previous hop to the
//! member's LAN interface approximates the propagation delay between the
//! exchange and the member's router. Colocated members answer from the
//! same building (sub-millisecond step); remote members answer from the
//! far end of their reseller circuit (≥ ~10 ms for a different metro).
//! [`RemotenessMap`] accumulates the **minimum** observed step per
//! (IXP, member) — the minimum over repeated measurements converges on
//! propagation delay, discarding queueing jitter — and flags a member as
//! remote when it stays above a threshold.
//!
//! The map is built offline from quiet-time measurement campaigns and
//! attached to the investigator
//! ([`crate::investigate::Investigator::with_remoteness`]); an empty map
//! (the default) changes nothing.

use kepler_bgp::Asn;
use kepler_probe::{IfaceOwner, TraceHop};
use kepler_topology::IxpId;
use std::collections::BTreeMap;

/// Minimum LAN-entry RTT step, in milliseconds, at which a member is
/// considered remote. Colocated members step <1 ms (intra-building),
/// remote ones ≥10 ms (inter-metro circuits); 5 ms splits the bimodal
/// distribution with slack on both sides.
pub const DEFAULT_REMOTE_THRESHOLD_MS: f64 = 5.0;

/// Per-(IXP, member) remoteness evidence from traceroute observations.
#[derive(Debug, Clone)]
pub struct RemotenessMap {
    /// (ixp, asn) → minimum observed RTT step onto the peering LAN (ms).
    min_step_ms: BTreeMap<(u32, u32), f64>,
    threshold_ms: f64,
}

impl Default for RemotenessMap {
    fn default() -> Self {
        RemotenessMap { min_step_ms: BTreeMap::new(), threshold_ms: DEFAULT_REMOTE_THRESHOLD_MS }
    }
}

impl RemotenessMap {
    /// An empty map with the default threshold. Until observations are
    /// fed in, every membership looks colocated (nothing is skipped).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the remoteness threshold (milliseconds).
    pub fn with_threshold_ms(mut self, ms: f64) -> Self {
        self.threshold_ms = ms;
        self
    }

    /// Folds one traceroute into the evidence: every hop owned by an IXP
    /// LAN interface contributes its RTT step from the previous hop
    /// (clamped at zero) to the (IXP, member) minimum. A LAN hop with no
    /// predecessor is skipped — there is no step to measure.
    pub fn observe_trace(&mut self, hops: &[TraceHop]) {
        for w in hops.windows(2) {
            let IfaceOwner::IxpLan { asn, ixp } = w[1].owner else { continue };
            let step = (w[1].rtt_ms - w[0].rtt_ms).max(0.0);
            self.min_step_ms.entry((ixp.0, asn.0)).and_modify(|m| *m = m.min(step)).or_insert(step);
        }
    }

    /// The minimum observed LAN-entry step for this membership, if any.
    pub fn step_ms(&self, ixp: IxpId, asn: Asn) -> Option<f64> {
        self.min_step_ms.get(&(ixp.0, asn.0)).copied()
    }

    /// Whether the member looks remote at this exchange: its minimum
    /// observed step stays at or above the threshold. Unobserved
    /// memberships are never remote (the inference stays conservative).
    pub fn is_remote(&self, ixp: IxpId, asn: Asn) -> bool {
        self.step_ms(ixp, asn).map(|s| s >= self.threshold_ms).unwrap_or(false)
    }

    /// Whether the member looks remote at *any* observed exchange.
    pub fn is_remote_anywhere(&self, asn: Asn) -> bool {
        self.min_step_ms.iter().any(|(&(_, a), &s)| a == asn.0 && s >= self.threshold_ms)
    }

    /// Number of (IXP, member) pairs with at least one observation.
    pub fn len(&self) -> usize {
        self.min_step_ms.len()
    }

    /// Whether no membership has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.min_step_ms.is_empty()
    }

    /// Observed memberships flagged remote, sorted.
    pub fn remote_members(&self) -> Vec<(IxpId, Asn)> {
        self.min_step_ms
            .iter()
            .filter(|(_, &s)| s >= self.threshold_ms)
            .map(|(&(x, a), _)| (IxpId(x), Asn(a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::IpAddr;

    fn hop(addr: u8, owner: IfaceOwner, rtt_ms: f64) -> TraceHop {
        TraceHop { addr: IpAddr::from([10, 0, 0, addr]), owner, rtt_ms }
    }

    fn fac(asn: u32, f: u32) -> IfaceOwner {
        IfaceOwner::FacilityPort { asn: Asn(asn), facility: kepler_topology::FacilityId(f) }
    }

    fn lan(asn: u32, x: u32) -> IfaceOwner {
        IfaceOwner::IxpLan { asn: Asn(asn), ixp: kepler_topology::IxpId(x) }
    }

    #[test]
    fn colocated_vs_remote_steps() {
        let mut m = RemotenessMap::new();
        // Colocated member: sub-millisecond step onto the LAN.
        m.observe_trace(&[hop(1, fac(10, 0), 4.0), hop(2, lan(20, 7), 4.6)]);
        // Remote member: an inter-metro reseller tail.
        m.observe_trace(&[hop(1, fac(10, 0), 4.0), hop(3, lan(30, 7), 22.0)]);
        assert!(!m.is_remote(IxpId(7), Asn(20)));
        assert!(m.is_remote(IxpId(7), Asn(30)));
        assert!(m.is_remote_anywhere(Asn(30)));
        assert!(!m.is_remote_anywhere(Asn(20)));
        assert_eq!(m.remote_members(), vec![(IxpId(7), Asn(30))]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn minimum_wins_over_jitter_spikes() {
        let mut m = RemotenessMap::new();
        // A queueing spike makes a colocated member look remote once...
        m.observe_trace(&[hop(1, fac(10, 0), 4.0), hop(2, lan(20, 7), 19.0)]);
        assert!(m.is_remote(IxpId(7), Asn(20)));
        // ...but the minimum over later quiet measurements recovers the
        // propagation delay.
        m.observe_trace(&[hop(1, fac(10, 0), 4.0), hop(2, lan(20, 7), 4.5)]);
        assert!(!m.is_remote(IxpId(7), Asn(20)));
        assert!(m.step_ms(IxpId(7), Asn(20)).unwrap() < 1.0);
    }

    #[test]
    fn empty_map_flags_nothing() {
        let m = RemotenessMap::new();
        assert!(m.is_empty());
        assert!(!m.is_remote(IxpId(0), Asn(1)));
        assert!(!m.is_remote_anywhere(Asn(1)));
        assert!(m.remote_members().is_empty());
    }

    #[test]
    fn leading_lan_hop_and_negative_steps_are_safe() {
        let mut m = RemotenessMap::new();
        // A trace *starting* on the LAN has no step to measure.
        m.observe_trace(&[hop(2, lan(20, 7), 3.0)]);
        assert!(m.is_empty());
        // Clock skew producing a negative step clamps to zero.
        m.observe_trace(&[hop(1, fac(10, 0), 9.0), hop(2, lan(20, 7), 8.0)]);
        assert_eq!(m.step_ms(IxpId(7), Asn(20)), Some(0.0));
        assert!(!m.is_remote(IxpId(7), Asn(20)));
    }

    #[test]
    fn threshold_boundary_is_inclusive() {
        let mut m = RemotenessMap::new().with_threshold_ms(5.0);
        m.observe_trace(&[hop(1, fac(10, 0), 0.0), hop(2, lan(20, 7), 5.0)]);
        assert!(m.is_remote(IxpId(7), Asn(20)), "exactly at threshold counts as remote");
        let mut m = RemotenessMap::new().with_threshold_ms(5.0);
        m.observe_trace(&[hop(1, fac(10, 0), 0.0), hop(2, lan(20, 7), 4.999)]);
        assert!(!m.is_remote(IxpId(7), Asn(20)));
    }
}

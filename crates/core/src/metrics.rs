//! Evaluation against ground truth (paper §5.3 semantics).
//!
//! * **true positive** — a detected outage matching a real infrastructure
//!   outage at the same facility/IXP and overlapping time;
//! * **false positive** — a detection with no such counterpart, *including*
//!   detections whose location is right but whose ground-truth cause is not
//!   an infrastructure outage (the paper's six fiber-cut cases);
//! * **false negative** — a real outage at a *trackable* PoP with no
//!   matching detection.

use crate::events::{OutageReport, OutageScope};
use kepler_bgpstream::Timestamp;
use kepler_topology::CityId;
use serde::{Deserialize, Serialize};

/// Ground truth for one event, detector-agnostic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthOutage {
    /// Stable id for bookkeeping.
    pub id: usize,
    /// Epicenter.
    pub scope: OutageScope,
    /// The epicenter's city, when known: a city-level detection of an
    /// incident in that city counts as correct localization (the paper's
    /// city abstraction).
    pub city: Option<CityId>,
    /// Scopes observationally equivalent to the epicenter: for an IXP
    /// outage, the buildings hosting its fabric (when every visible path
    /// crosses both, control-plane data cannot tell them apart — the
    /// facility/IXP interdependency confusion of the paper's [3, 87]);
    /// for a facility outage, IXPs whose entire fabric sits inside it.
    pub aliases: Vec<OutageScope>,
    /// Start time.
    pub start: Timestamp,
    /// Duration in seconds.
    pub duration: u64,
    /// Whether this is a *real* peering-infrastructure outage. Fiber cuts
    /// and similar look-alikes carry `false`: detecting them at the right
    /// place still counts as a false positive, per the paper.
    pub is_infrastructure: bool,
    /// Whether the PoP is trackable (≥6 locatable members); untrackable
    /// misses are excluded from false negatives.
    pub trackable: bool,
}

impl TruthOutage {
    fn end(&self) -> Timestamp {
        self.start + self.duration
    }
}

/// One detection ↔ truth match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Match {
    /// Index into the reports slice.
    pub report: usize,
    /// Ground-truth id.
    pub truth: usize,
}

/// Evaluation outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Correct detections.
    pub true_positives: usize,
    /// Spurious or wrongly-caused detections.
    pub false_positives: usize,
    /// Missed trackable infrastructure outages.
    pub false_negatives: usize,
    /// The matches behind the TP count.
    pub matches: Vec<Match>,
    /// Ids of missed outages.
    pub missed: Vec<usize>,
    /// Report indices counted as FPs.
    pub spurious: Vec<usize>,
}

impl Evaluation {
    /// Precision over detections.
    pub fn precision(&self) -> f64 {
        let n = self.true_positives + self.false_positives;
        if n == 0 {
            1.0
        } else {
            self.true_positives as f64 / n as f64
        }
    }

    /// Recall over trackable infrastructure outages.
    pub fn recall(&self) -> f64 {
        let n = self.true_positives + self.false_negatives;
        if n == 0 {
            1.0
        } else {
            self.true_positives as f64 / n as f64
        }
    }
}

fn scope_matches(report: &OutageScope, truth: &TruthOutage) -> bool {
    if *report == truth.scope || truth.aliases.contains(report) {
        return true;
    }
    // City-level localization of an incident in that city is correct.
    matches!(report, OutageScope::City(c) if truth.city == Some(*c))
}

fn time_matches(report: &OutageReport, truth: &TruthOutage, slack: u64) -> bool {
    let r_start = report.start.saturating_sub(slack);
    let r_end = report.end.unwrap_or(u64::MAX).saturating_add(slack);
    // Overlap of [r_start, r_end] with [truth.start, truth.end()].
    r_start <= truth.end() && truth.start <= r_end
}

/// Evaluates detections against ground truth. `slack` tolerates binning
/// and propagation delays (e.g. 900 s).
pub fn evaluate(reports: &[OutageReport], truth: &[TruthOutage], slack: u64) -> Evaluation {
    let mut eval = Evaluation::default();
    let mut truth_used = vec![false; truth.len()];
    for (ri, report) in reports.iter().enumerate() {
        // Find the best unused matching truth record.
        let mut matched: Option<usize> = None;
        for (ti, t) in truth.iter().enumerate() {
            if truth_used[ti] || !scope_matches(&report.scope, t) || !time_matches(report, t, slack)
            {
                continue;
            }
            matched = Some(ti);
            break;
        }
        match matched {
            Some(ti) if truth[ti].is_infrastructure => {
                truth_used[ti] = true;
                eval.true_positives += 1;
                eval.matches.push(Match { report: ri, truth: truth[ti].id });
            }
            Some(ti) => {
                // Right place, wrong cause (fiber cut): FP per the paper.
                truth_used[ti] = true;
                eval.false_positives += 1;
                eval.spurious.push(ri);
            }
            None => {
                eval.false_positives += 1;
                eval.spurious.push(ri);
            }
        }
    }
    for (ti, t) in truth.iter().enumerate() {
        if t.is_infrastructure && t.trackable && !truth_used[ti] {
            eval.false_negatives += 1;
            eval.missed.push(t.id);
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use kepler_bgp::Asn;
    use kepler_topology::{FacilityId, IxpId};
    use std::collections::BTreeSet;

    fn report(scope: OutageScope, start: u64, end: u64) -> OutageReport {
        OutageReport {
            scope,
            start,
            end: Some(end),
            affected_near: BTreeSet::from([Asn(1)]),
            affected_far: BTreeSet::from([Asn(2)]),
            affected_paths: 5,
            oscillations: 1,
            dataplane_confirmed: None,
            validation: crate::events::ValidationStatus::Unvalidated,
            probe_evidence: Vec::new(),
            probe_completeness: 1.0,
            state: crate::events::IncidentState::Closed,
            sources: Vec::new(),
        }
    }

    fn truth(id: usize, scope: OutageScope, start: u64, dur: u64, infra: bool) -> TruthOutage {
        TruthOutage {
            id,
            scope,
            city: Some(CityId(0)),
            aliases: Vec::new(),
            start,
            duration: dur,
            is_infrastructure: infra,
            trackable: true,
        }
    }

    #[test]
    fn tp_fp_fn_accounting() {
        let fac = OutageScope::Facility(FacilityId(1));
        let ixp = OutageScope::Ixp(IxpId(2));
        let reports = vec![
            report(fac, 1000, 2000),                                        // TP
            report(ixp, 50_000, 51_000),                                    // FP (no truth)
            report(OutageScope::Facility(FacilityId(9)), 100_000, 101_000), // FP: fiber cut
        ];
        let truths = vec![
            truth(0, fac, 900, 1200, true),
            truth(1, OutageScope::Facility(FacilityId(3)), 70_000, 600, true), // missed
            truth(2, OutageScope::Facility(FacilityId(9)), 100_000, 1200, false), // fiber cut
        ];
        let eval = evaluate(&reports, &truths, 300);
        assert_eq!(eval.true_positives, 1);
        assert_eq!(eval.false_positives, 2);
        assert_eq!(eval.false_negatives, 1);
        assert_eq!(eval.missed, vec![1]);
        assert!((eval.precision() - 1.0 / 3.0).abs() < 1e-9);
        assert!((eval.recall() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn untrackable_misses_are_not_false_negatives() {
        let truths = vec![TruthOutage {
            id: 0,
            scope: OutageScope::Facility(FacilityId(1)),
            city: None,
            aliases: Vec::new(),
            start: 0,
            duration: 100,
            is_infrastructure: true,
            trackable: false,
        }];
        let eval = evaluate(&[], &truths, 0);
        assert_eq!(eval.false_negatives, 0);
        assert_eq!(eval.recall(), 1.0);
    }

    #[test]
    fn time_slack_matters() {
        let fac = OutageScope::Facility(FacilityId(1));
        let reports = vec![report(fac, 2000, 3000)];
        let truths = vec![truth(0, fac, 500, 1000, true)]; // ends at 1500
        let strict = evaluate(&reports, &truths, 0);
        assert_eq!(strict.true_positives, 0);
        let lax = evaluate(&reports, &truths, 600);
        assert_eq!(lax.true_positives, 1);
    }

    #[test]
    fn ongoing_reports_match_on_start_overlap() {
        let fac = OutageScope::Facility(FacilityId(1));
        let mut r = report(fac, 1000, 0);
        r.end = None;
        let truths = vec![truth(0, fac, 900, 10_000, true)];
        let eval = evaluate(&[r], &truths, 0);
        assert_eq!(eval.true_positives, 1);
    }
}

//! Output types of the detection pipeline.

use crate::signal::{SignalKind, SourceContribution};
use kepler_bgp::{Asn, Prefix};
use kepler_bgpstream::{CollectorId, PeerId, Timestamp};
use kepler_docmine::LocationTag;
use kepler_probe::HopEvidence;
use kepler_topology::{CityId, FacilityId, IxpId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Identity of one monitored route: a prefix as seen by one collector peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouteKey {
    /// The collector.
    pub collector: CollectorId,
    /// The peer feeding it.
    pub peer: PeerId,
    /// The prefix.
    pub prefix: Prefix,
}

/// Where an outage is localized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OutageScope {
    /// A single building.
    Facility(FacilityId),
    /// An exchange fabric.
    Ixp(IxpId),
    /// A metropolitan area (several facilities/IXPs failed together).
    City(CityId),
}

impl OutageScope {
    /// Converts a monitoring tag into a scope.
    pub fn from_tag(tag: LocationTag) -> Self {
        match tag {
            LocationTag::Facility(f) => OutageScope::Facility(f),
            LocationTag::Ixp(x) => OutageScope::Ixp(x),
            LocationTag::City(c) => OutageScope::City(c),
        }
    }
}

impl fmt::Display for OutageScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutageScope::Facility(x) => write!(f, "facility {}", x.0),
            OutageScope::Ixp(x) => write!(f, "ixp {}", x.0),
            OutageScope::City(x) => write!(f, "city {}", x.0),
        }
    }
}

/// How a bin's signals were classified (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalClass {
    /// One AS link changed (de-peering, MED change).
    LinkLevel,
    /// One AS changed (member left an IXP, network-wide policy).
    AsLevel,
    /// Sibling ASes of one operator changed together.
    OperatorLevel,
    /// Many disjoint organizations changed at one PoP — an infrastructure
    /// incident.
    PopLevel,
}

impl fmt::Display for SignalClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SignalClass::LinkLevel => "link-level",
            SignalClass::AsLevel => "AS-level",
            SignalClass::OperatorLevel => "operator-level",
            SignalClass::PopLevel => "PoP-level",
        };
        f.write_str(s)
    }
}

/// Active-measurement validation status of a reported outage (verdict of
/// the `kepler-probe` engine for the incident's epicenter).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ValidationStatus {
    /// No probing was needed or attached: the passive localization was
    /// confident on its own.
    #[default]
    Unvalidated,
    /// Targeted probes confirmed the epicenter dark.
    Confirmed,
    /// Targeted probes contradicted the suspicion.
    Refuted,
    /// Probing ran but could not decide.
    Inconclusive,
}

impl fmt::Display for ValidationStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValidationStatus::Unvalidated => "unvalidated",
            ValidationStatus::Confirmed => "probe-confirmed",
            ValidationStatus::Refuted => "probe-refuted",
            ValidationStatus::Inconclusive => "probe-inconclusive",
        };
        f.write_str(s)
    }
}

/// Lifecycle state of a tracked incident.
///
/// Incidents open when the investigator localizes them and move forward
/// only — `Open → Recovering → Closed` — driven by two independent
/// restoration signals: the control plane (more than `restore_fraction`
/// of the affected paths back on their baseline PoP) and, when a
/// restoration prober is attached, the data plane (re-probes of the
/// epicenter crossing it again, typically well before BGP reconverges).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum IncidentState {
    /// The epicenter is still dark; the incident accumulates evidence.
    #[default]
    Open,
    /// Restoration has been observed (by probes or by path return) but
    /// the incident is still inside the oscillation merge window — it may
    /// reopen and merge.
    Recovering,
    /// Final: the merge window elapsed without a reopen (or the feed
    /// ended after restoration).
    Closed,
}

impl fmt::Display for IncidentState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IncidentState::Open => "open",
            IncidentState::Recovering => "recovering",
            IncidentState::Closed => "closed",
        };
        f.write_str(s)
    }
}

/// A detected infrastructure outage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutageReport {
    /// Localized epicenter.
    pub scope: OutageScope,
    /// When the outage signal first crossed the threshold.
    pub start: Timestamp,
    /// When it was considered restored (`None` = ongoing at end of feed).
    pub end: Option<Timestamp>,
    /// Near-end ASes whose paths deviated.
    pub affected_near: BTreeSet<Asn>,
    /// Far-end ASes behind the failed interconnections.
    pub affected_far: BTreeSet<Asn>,
    /// Number of stable paths that deviated.
    pub affected_paths: usize,
    /// Merged sub-outages (oscillation count; 1 = single clean outage).
    pub oscillations: usize,
    /// Whether a data-plane probe confirmed the incident.
    pub dataplane_confirmed: Option<bool>,
    /// Verdict of targeted active-measurement validation
    /// ([`ValidationStatus::Unvalidated`] when localization never needed
    /// probes).
    pub validation: ValidationStatus,
    /// Hop-level evidence behind the validation verdict (empty when
    /// unvalidated).
    pub probe_evidence: Vec<HopEvidence>,
    /// Completeness of the probe campaigns behind the verdict: completed
    /// measurement pairs over planned pairs, minimized across every bin
    /// that touched the incident. `1.0` when no probing was attempted (a
    /// purely passive verdict is "complete" for what it claims); below
    /// the engine's quorum the verdict was settled in degraded mode.
    pub probe_completeness: f64,
    /// Lifecycle state when the report was emitted: `Open` incidents ran
    /// past the end of the feed, `Recovering` ones restored but were
    /// still inside the merge window, `Closed` ones are final.
    pub state: IncidentState,
    /// Per-source detection contributions: every fused signal source
    /// that saw this incident, with its peak confidence and the first
    /// bin it fired in ([`SignalKind::Deviation`] alone for incidents
    /// born purely from the paper's deviation test).
    pub sources: Vec<SourceContribution>,
}

impl OutageReport {
    /// Outage duration in seconds (up to feed end for ongoing outages is
    /// not counted; `None` end yields `None`).
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|e| e.saturating_sub(self.start))
    }

    /// All affected ASes.
    pub fn affected_ases(&self) -> BTreeSet<Asn> {
        self.affected_near.union(&self.affected_far).copied().collect()
    }
}

impl fmt::Display for OutageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "outage at {} start={} dur={} ases={} paths={}{}",
            self.scope,
            self.start,
            self.duration().map(|d| format!("{d}s")).unwrap_or_else(|| "ongoing".into()),
            self.affected_ases().len(),
            self.affected_paths,
            match self.dataplane_confirmed {
                Some(true) => " [confirmed]",
                Some(false) => " [unconfirmed]",
                None => "",
            },
        )?;
        if self.validation != ValidationStatus::Unvalidated {
            write!(f, " [{}]", self.validation)?;
        }
        if self.state != IncidentState::Closed {
            write!(f, " [{}]", self.state)?;
        }
        // Per-source attribution only when fusion added anything beyond
        // the default deviation signal.
        if self.sources.iter().any(|s| s.kind != SignalKind::Deviation) {
            write!(f, " [signals:")?;
            for (i, s) in self.sources.iter().enumerate() {
                write!(f, "{}{}", if i == 0 { " " } else { "+" }, s.kind)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_from_tag() {
        assert_eq!(
            OutageScope::from_tag(LocationTag::Facility(FacilityId(3))),
            OutageScope::Facility(FacilityId(3))
        );
        assert_eq!(OutageScope::from_tag(LocationTag::Ixp(IxpId(1))), OutageScope::Ixp(IxpId(1)));
        assert_eq!(
            OutageScope::from_tag(LocationTag::City(CityId(9))),
            OutageScope::City(CityId(9))
        );
    }

    #[test]
    fn report_accessors() {
        let r = OutageReport {
            scope: OutageScope::Facility(FacilityId(1)),
            start: 1000,
            end: Some(2500),
            affected_near: [Asn(1), Asn(2)].into(),
            affected_far: [Asn(2), Asn(3)].into(),
            affected_paths: 10,
            oscillations: 1,
            dataplane_confirmed: Some(true),
            validation: ValidationStatus::Confirmed,
            probe_evidence: Vec::new(),
            probe_completeness: 1.0,
            state: IncidentState::Closed,
            sources: vec![SourceContribution {
                kind: SignalKind::Deviation,
                confidence: 1.0,
                first_bin: 1000,
            }],
        };
        assert_eq!(r.duration(), Some(1500));
        assert_eq!(r.affected_ases().len(), 3);
        let s = r.to_string();
        assert!(s.contains("facility 1") && s.contains("confirmed"), "{s}");
        assert!(s.contains("probe-confirmed"), "{s}");
        assert!(!s.contains("[signals:"), "deviation-only reports stay terse");
        let fused = OutageReport {
            sources: vec![
                SourceContribution {
                    kind: SignalKind::Deviation,
                    confidence: 1.0,
                    first_bin: 1000,
                },
                SourceContribution { kind: SignalKind::Forecast, confidence: 0.8, first_bin: 940 },
            ],
            ..r.clone()
        };
        assert!(fused.to_string().contains("[signals: deviation+forecast]"), "{fused}");
        let ongoing = OutageReport { end: None, state: IncidentState::Open, ..r };
        assert_eq!(ongoing.duration(), None);
        assert!(ongoing.to_string().contains("ongoing"));
        assert!(ongoing.to_string().contains("[open]"), "{ongoing}");
        let recovering = OutageReport { state: IncidentState::Recovering, ..ongoing.clone() };
        assert!(recovering.to_string().contains("[recovering]"), "{recovering}");
        let plain = OutageReport { validation: ValidationStatus::Unvalidated, ..ongoing.clone() };
        assert!(!plain.to_string().contains("probe-"), "unvalidated reports stay terse");
    }
}

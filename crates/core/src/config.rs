//! Kepler's tunables, with the paper's calibrated defaults (§5.1).

use serde::{Deserialize, Serialize};

/// Configuration for the whole detection pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeplerConfig {
    /// Deviation fraction that raises an outage signal for a (PoP, AS)
    /// group. The paper sweeps 2–50% and selects **10%** as conservative
    /// while still catching medium-scale partial outages (Figure 7a).
    pub t_fail: f64,
    /// Update binning interval: **60 s** — twice the default MRAI, enough
    /// for correlated updates to land in one bin.
    pub bin_secs: u64,
    /// How long a route must stay unchanged to enter the stable baseline:
    /// **2 days** (1 day admits transients, 5+ days starves coverage).
    pub stable_secs: u64,
    /// Baseline refresh cadence; stable paths are also re-derived every
    /// 2 days to pick up new paths and community values.
    pub refresh_secs: u64,
    /// More than this many distinct ASes must be affected before a signal
    /// is investigated at all (link-level events are below it): **3**.
    pub min_affected_ases: usize,
    /// PoP-level classification needs at least this many *non-sibling*
    /// near-end AND far-end ASes: **3**.
    pub min_disjoint_orgs: usize,
    /// Co-location coverage required to pin an epicenter facility: **95%**
    /// (5% slack absorbs colocation-map inaccuracies).
    pub colo_margin: f64,
    /// An outage is restored once more than this fraction of its affected
    /// paths has returned to the baseline PoP: **50%**.
    pub restore_fraction: f64,
    /// Two outages of the same PoP closer than this merge into one
    /// incident (oscillation handling): **12 h**.
    pub merge_window_secs: u64,
    /// Post-session-recovery quarantine for collector feeds (gap guard).
    pub quarantine_secs: u64,
    /// Minimum stable paths a (PoP, AS) group needs before its deviation
    /// fraction is meaningful.
    pub min_stable_paths: usize,
    /// A facility needs this many community-locatable members to be
    /// *trackable* (3 near-end + 3 far-end): **6**.
    pub trackable_min_members: usize,
    /// Half-life of accumulated probe evidence on an open incident: a
    /// probe-confirmed verdict can be reused for later bins of the same
    /// incident (instead of re-probing from scratch) while its decayed
    /// confidence stays above [`Self::evidence_reuse_confidence`]:
    /// **30 min**.
    pub evidence_half_life_secs: u64,
    /// Minimum decayed confidence at which an open incident's confirmed
    /// verdict is reused for a new pending localization of the same
    /// epicenter: **0.5** (i.e. evidence older than one half-life must be
    /// re-measured).
    pub evidence_reuse_confidence: f64,
    /// First restoration re-probe fires this long after an incident
    /// opens; subsequent delays double ([`kepler_probe::Backoff`]):
    /// **5 min**.
    pub restore_probe_initial_secs: u64,
    /// Ceiling of the restoration re-probe backoff: **1 h**.
    pub restore_probe_max_secs: u64,
    /// Opening hysteresis: a localized signal must recur in this many
    /// consecutive bins before an incident opens. **1** (open on the
    /// first signal — the paper's behavior). Raising it suppresses
    /// single-bin flaps at the cost of detection delay; the incident's
    /// start is backdated to the first bin of the streak.
    pub open_after_consecutive: usize,
    /// Closing hysteresis: the BGP watch list must stay above
    /// [`Self::restore_fraction`] for this many consecutive restoration
    /// checks before the incident closes. **1** (close on the first
    /// restored bin — the paper's behavior). Raising it keeps a flapping
    /// facility in one `Open`↔`Recovering` incident instead of emitting
    /// an open/close train; the close is backdated to the first restored
    /// check of the streak.
    pub close_after_consecutive: usize,
    /// Season length of the forecast detector's seasonal-naive
    /// prediction (Chocolatine-style): **1 day**. The forecaster
    /// predicts this bin's per-facility crossing presence from the same
    /// bin one season earlier.
    pub forecast_season_secs: u64,
    /// EWMA smoothing factor for the forecast residual band (applied to
    /// `|observed - predicted|` each bin while not alarming).
    pub forecast_band_alpha: f64,
    /// The forecast deficit must exceed `band_k × band` (in addition to
    /// the absolute and relative floors) before a bin counts toward an
    /// alarm.
    pub forecast_band_k: f64,
    /// Absolute floor on the forecast deficit (stable crossings lost
    /// below prediction) — guards against alarms on tiny facilities and
    /// the handful of routes that permanently re-home after unrelated
    /// churn elsewhere in the topology.
    pub forecast_abs_floor: f64,
    /// Relative floor: the deficit must also exceed this fraction of the
    /// predicted presence. Reconvergence after a remote event can shift
    /// a facility's level by 10–20% day over day without anything being
    /// wrong locally; an outage drains most of it.
    pub forecast_rel_floor: f64,
    /// Consecutive deficit bins required before the forecast detector
    /// raises a signal (filters 1–2-bin reconvergence edge mismatches).
    pub forecast_confirm_bins: usize,
    /// Differential-RTT step increase (ms over the per-(vantage,
    /// hop-pair) baseline) that counts as a delay anomaly.
    pub delay_threshold_ms: f64,
    /// Distinct anomalous (vantage, hop-pair) measurement keys required
    /// in one bin before the delay detector raises a signal on its own
    /// (self-evidencing floor — one noisy pair never blames a facility).
    pub delay_min_anomalous_pairs: usize,
}

impl Default for KeplerConfig {
    fn default() -> Self {
        KeplerConfig {
            t_fail: 0.10,
            bin_secs: 60,
            stable_secs: 2 * 86_400,
            refresh_secs: 2 * 86_400,
            min_affected_ases: 3,
            min_disjoint_orgs: 3,
            colo_margin: 0.95,
            restore_fraction: 0.5,
            merge_window_secs: 12 * 3600,
            quarantine_secs: 600,
            min_stable_paths: 2,
            trackable_min_members: 6,
            evidence_half_life_secs: 1_800,
            evidence_reuse_confidence: 0.5,
            restore_probe_initial_secs: 300,
            restore_probe_max_secs: 3_600,
            open_after_consecutive: 1,
            close_after_consecutive: 1,
            forecast_season_secs: 86_400,
            forecast_band_alpha: 0.2,
            forecast_band_k: 3.0,
            forecast_abs_floor: 4.0,
            forecast_rel_floor: 0.25,
            forecast_confirm_bins: 5,
            delay_threshold_ms: 15.0,
            delay_min_anomalous_pairs: 3,
        }
    }
}

impl KeplerConfig {
    /// A config with a different detection threshold (for the Figure 7a
    /// sweep).
    pub fn with_t_fail(mut self, t: f64) -> Self {
        self.t_fail = t;
        self
    }

    /// Shrinks the stability requirement — used by tests and scenarios
    /// whose warm-up period is shorter than two days.
    pub fn with_stable_secs(mut self, secs: u64) -> Self {
        self.stable_secs = secs;
        self.refresh_secs = secs;
        self
    }

    /// Sets the open/close hysteresis thresholds (consecutive bins of
    /// signal before an incident opens, consecutive restored checks
    /// before it closes). Both default to 1, which is the paper's
    /// no-hysteresis behavior.
    pub fn with_hysteresis(mut self, open: usize, close: usize) -> Self {
        self.open_after_consecutive = open.max(1);
        self.close_after_consecutive = close.max(1);
        self
    }

    /// Tunes the forecast detector: season length, confirmation streak,
    /// and the band multiplier over the EWMA residual. Scenario sweeps
    /// with compressed clocks shrink the season the same way they shrink
    /// [`Self::stable_secs`].
    pub fn with_forecast(mut self, season_secs: u64, confirm_bins: usize, band_k: f64) -> Self {
        self.forecast_season_secs = season_secs.max(self.bin_secs);
        self.forecast_confirm_bins = confirm_bins.max(1);
        self.forecast_band_k = band_k;
        self
    }

    /// Tunes the delay detector: anomaly threshold (ms over the shared
    /// hop-pair baseline) and the self-evidencing pair floor.
    pub fn with_delay(mut self, threshold_ms: f64, min_anomalous_pairs: usize) -> Self {
        self.delay_threshold_ms = threshold_ms;
        self.delay_min_anomalous_pairs = min_anomalous_pairs.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = KeplerConfig::default();
        assert!((c.t_fail - 0.10).abs() < 1e-9);
        assert_eq!(c.bin_secs, 60);
        assert_eq!(c.stable_secs, 172_800);
        assert!((c.colo_margin - 0.95).abs() < 1e-9);
        assert!((c.restore_fraction - 0.5).abs() < 1e-9);
        assert_eq!(c.merge_window_secs, 43_200);
        assert_eq!(c.trackable_min_members, 6);
        assert_eq!(c.open_after_consecutive, 1, "no opening hysteresis by default");
        assert_eq!(c.close_after_consecutive, 1, "no closing hysteresis by default");
    }

    #[test]
    fn builders() {
        let c = KeplerConfig::default().with_t_fail(0.02).with_stable_secs(100);
        assert!((c.t_fail - 0.02).abs() < 1e-9);
        assert_eq!(c.stable_secs, 100);
        assert_eq!(c.refresh_secs, 100);
        let c = KeplerConfig::default().with_hysteresis(3, 2);
        assert_eq!(c.open_after_consecutive, 3);
        assert_eq!(c.close_after_consecutive, 2);
        // Zero would deadlock the lifecycle; it clamps to 1.
        let c = KeplerConfig::default().with_hysteresis(0, 0);
        assert_eq!(c.open_after_consecutive, 1);
        assert_eq!(c.close_after_consecutive, 1);
    }

    #[test]
    fn fusion_builders() {
        let c = KeplerConfig::default().with_forecast(3_600, 3, 2.5).with_delay(10.0, 2);
        assert_eq!(c.forecast_season_secs, 3_600);
        assert_eq!(c.forecast_confirm_bins, 3);
        assert!((c.forecast_band_k - 2.5).abs() < 1e-9);
        assert!((c.delay_threshold_ms - 10.0).abs() < 1e-9);
        assert_eq!(c.delay_min_anomalous_pairs, 2);
        // A season shorter than one bin clamps up; zero floors clamp to 1.
        let c = KeplerConfig::default().with_forecast(0, 0, 3.0).with_delay(5.0, 0);
        assert_eq!(c.forecast_season_secs, c.bin_secs);
        assert_eq!(c.forecast_confirm_bins, 1);
        assert_eq!(c.delay_min_anomalous_pairs, 1);
    }
}

//! Kepler's tunables, with the paper's calibrated defaults (§5.1).

use serde::{Deserialize, Serialize};

/// Configuration for the whole detection pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeplerConfig {
    /// Deviation fraction that raises an outage signal for a (PoP, AS)
    /// group. The paper sweeps 2–50% and selects **10%** as conservative
    /// while still catching medium-scale partial outages (Figure 7a).
    pub t_fail: f64,
    /// Update binning interval: **60 s** — twice the default MRAI, enough
    /// for correlated updates to land in one bin.
    pub bin_secs: u64,
    /// How long a route must stay unchanged to enter the stable baseline:
    /// **2 days** (1 day admits transients, 5+ days starves coverage).
    pub stable_secs: u64,
    /// Baseline refresh cadence; stable paths are also re-derived every
    /// 2 days to pick up new paths and community values.
    pub refresh_secs: u64,
    /// More than this many distinct ASes must be affected before a signal
    /// is investigated at all (link-level events are below it): **3**.
    pub min_affected_ases: usize,
    /// PoP-level classification needs at least this many *non-sibling*
    /// near-end AND far-end ASes: **3**.
    pub min_disjoint_orgs: usize,
    /// Co-location coverage required to pin an epicenter facility: **95%**
    /// (5% slack absorbs colocation-map inaccuracies).
    pub colo_margin: f64,
    /// An outage is restored once more than this fraction of its affected
    /// paths has returned to the baseline PoP: **50%**.
    pub restore_fraction: f64,
    /// Two outages of the same PoP closer than this merge into one
    /// incident (oscillation handling): **12 h**.
    pub merge_window_secs: u64,
    /// Post-session-recovery quarantine for collector feeds (gap guard).
    pub quarantine_secs: u64,
    /// Minimum stable paths a (PoP, AS) group needs before its deviation
    /// fraction is meaningful.
    pub min_stable_paths: usize,
    /// A facility needs this many community-locatable members to be
    /// *trackable* (3 near-end + 3 far-end): **6**.
    pub trackable_min_members: usize,
    /// Half-life of accumulated probe evidence on an open incident: a
    /// probe-confirmed verdict can be reused for later bins of the same
    /// incident (instead of re-probing from scratch) while its decayed
    /// confidence stays above [`Self::evidence_reuse_confidence`]:
    /// **30 min**.
    pub evidence_half_life_secs: u64,
    /// Minimum decayed confidence at which an open incident's confirmed
    /// verdict is reused for a new pending localization of the same
    /// epicenter: **0.5** (i.e. evidence older than one half-life must be
    /// re-measured).
    pub evidence_reuse_confidence: f64,
    /// First restoration re-probe fires this long after an incident
    /// opens; subsequent delays double ([`kepler_probe::Backoff`]):
    /// **5 min**.
    pub restore_probe_initial_secs: u64,
    /// Ceiling of the restoration re-probe backoff: **1 h**.
    pub restore_probe_max_secs: u64,
    /// Opening hysteresis: a localized signal must recur in this many
    /// consecutive bins before an incident opens. **1** (open on the
    /// first signal — the paper's behavior). Raising it suppresses
    /// single-bin flaps at the cost of detection delay; the incident's
    /// start is backdated to the first bin of the streak.
    pub open_after_consecutive: usize,
    /// Closing hysteresis: the BGP watch list must stay above
    /// [`Self::restore_fraction`] for this many consecutive restoration
    /// checks before the incident closes. **1** (close on the first
    /// restored bin — the paper's behavior). Raising it keeps a flapping
    /// facility in one `Open`↔`Recovering` incident instead of emitting
    /// an open/close train; the close is backdated to the first restored
    /// check of the streak.
    pub close_after_consecutive: usize,
}

impl Default for KeplerConfig {
    fn default() -> Self {
        KeplerConfig {
            t_fail: 0.10,
            bin_secs: 60,
            stable_secs: 2 * 86_400,
            refresh_secs: 2 * 86_400,
            min_affected_ases: 3,
            min_disjoint_orgs: 3,
            colo_margin: 0.95,
            restore_fraction: 0.5,
            merge_window_secs: 12 * 3600,
            quarantine_secs: 600,
            min_stable_paths: 2,
            trackable_min_members: 6,
            evidence_half_life_secs: 1_800,
            evidence_reuse_confidence: 0.5,
            restore_probe_initial_secs: 300,
            restore_probe_max_secs: 3_600,
            open_after_consecutive: 1,
            close_after_consecutive: 1,
        }
    }
}

impl KeplerConfig {
    /// A config with a different detection threshold (for the Figure 7a
    /// sweep).
    pub fn with_t_fail(mut self, t: f64) -> Self {
        self.t_fail = t;
        self
    }

    /// Shrinks the stability requirement — used by tests and scenarios
    /// whose warm-up period is shorter than two days.
    pub fn with_stable_secs(mut self, secs: u64) -> Self {
        self.stable_secs = secs;
        self.refresh_secs = secs;
        self
    }

    /// Sets the open/close hysteresis thresholds (consecutive bins of
    /// signal before an incident opens, consecutive restored checks
    /// before it closes). Both default to 1, which is the paper's
    /// no-hysteresis behavior.
    pub fn with_hysteresis(mut self, open: usize, close: usize) -> Self {
        self.open_after_consecutive = open.max(1);
        self.close_after_consecutive = close.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = KeplerConfig::default();
        assert!((c.t_fail - 0.10).abs() < 1e-9);
        assert_eq!(c.bin_secs, 60);
        assert_eq!(c.stable_secs, 172_800);
        assert!((c.colo_margin - 0.95).abs() < 1e-9);
        assert!((c.restore_fraction - 0.5).abs() < 1e-9);
        assert_eq!(c.merge_window_secs, 43_200);
        assert_eq!(c.trackable_min_members, 6);
        assert_eq!(c.open_after_consecutive, 1, "no opening hysteresis by default");
        assert_eq!(c.close_after_consecutive, 1, "no closing hysteresis by default");
    }

    #[test]
    fn builders() {
        let c = KeplerConfig::default().with_t_fail(0.02).with_stable_secs(100);
        assert!((c.t_fail - 0.02).abs() < 1e-9);
        assert_eq!(c.stable_secs, 100);
        assert_eq!(c.refresh_secs, 100);
        let c = KeplerConfig::default().with_hysteresis(3, 2);
        assert_eq!(c.open_after_consecutive, 3);
        assert_eq!(c.close_after_consecutive, 2);
        // Zero would deadlock the lifecycle; it clamps to 1.
        let c = KeplerConfig::default().with_hysteresis(0, 0);
        assert_eq!(c.open_after_consecutive, 1);
        assert_eq!(c.close_after_consecutive, 1);
    }
}
